#![warn(missing_docs)]

//! Offline drop-in subset of the [`rand`](https://docs.rs/rand/0.8) crate.
//!
//! This workspace builds in environments without a crates.io mirror, so
//! the handful of `rand 0.8` APIs the code actually uses are provided
//! here, dependency-free. The generator behind [`rngs::StdRng`] is
//! xoshiro256\*\* seeded through SplitMix64 — deterministic for a given
//! seed (which is all the callers rely on), but *not* bit-compatible
//! with upstream `StdRng`'s ChaCha12 stream.
//!
//! Supported surface:
//! - [`RngCore`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//!   (half-open and inclusive ranges over the primitive numeric types),
//!   [`Rng::gen_bool`]
//! - [`rngs::StdRng`]
//! - [`seq::SliceRandom::shuffle`] and [`seq::SliceRandom::choose`]

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling of a value of type `Self` from a range, uniformly.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Samples uniformly from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let unit = unit_f64(rng) as $t;
                let v = lo + (hi - lo) * unit;
                // Guard against rounding up to the excluded endpoint.
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                lo + (hi - lo) * (unit_f64_inclusive(rng) as $t)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Uniform `u64` in `[0, bound)` via rejection sampling (no modulo bias).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Uniform `f64` in `[0, 1)` using the top 53 bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `f64` in `[0, 1]`.
fn unit_f64_inclusive<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing random sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256\*\*.
    ///
    /// Statistically strong and fast; seeded from a `u64` through
    /// SplitMix64 as recommended by the xoshiro authors.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension methods for slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f32 = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&v));
            let i: i32 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&i));
            let u: usize = rng.gen_range(0..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_range_covers_inclusive_endpoints() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn uniform_mean_reasonable() {
        let mut rng = StdRng::seed_from_u64(5);
        let mean: f64 = (0..10_000).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "{mean}");
    }
}
