#![warn(missing_docs)]

//! Offline drop-in subset of the [`criterion`](https://docs.rs/criterion/0.5)
//! benchmark harness.
//!
//! This workspace builds in environments without a crates.io mirror, so
//! the Criterion surface used by the `cap-bench` benches is
//! reimplemented here dependency-free: [`Criterion::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_with_setup`], the
//! [`criterion_group!`] / [`criterion_main!`] macros, and
//! [`black_box`].
//!
//! Measurement model: after a wall-clock warm-up, each of the
//! configured samples times a batch of iterations sized so the whole
//! measurement fits the configured measurement time, then reports the
//! min / median / max per-iteration latency across samples.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Bench runner configuration and registry (subset of upstream).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Upstream defaults are 100 samples / 3 s warm-up / 5 s
        // measurement; the benches here override what matters.
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            filter: std::env::args().skip(1).find(|a| !a.starts_with('-')),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total time budget the samples should roughly fill.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints a one-line summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Times the closure handed to it by a benchmark target.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Benchmarks `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also yields a latency estimate for batch sizing.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);
        let per_sample_ns =
            self.measurement_time.as_nanos() as f64 / self.sample_size.max(1) as f64;
        let batch = ((per_sample_ns / est_ns).round() as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Benchmarks `routine` on a fresh `setup()` value per iteration;
    /// only the routine is timed.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut est_ns = 1.0f64;
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            est_ns = t.elapsed().as_nanos() as f64;
            warm_iters += 1;
        }
        let _ = warm_iters;

        let per_sample_ns =
            self.measurement_time.as_nanos() as f64 / self.sample_size.max(1) as f64;
        let batch = ((per_sample_ns / est_ns.max(1.0)).round() as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    fn report(&self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
        };
        println!(
            "{id:<40} time:   [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        );
    }

    /// Median per-iteration latency in nanoseconds of the last run.
    pub fn median_ns(&self) -> f64 {
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        if sorted.is_empty() {
            return 0.0;
        }
        if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark targets into a named group function, mirroring
/// upstream's two grammars.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` for a bench binary with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench` (and `cargo test --benches`
            // passes `--test`); both are accepted and ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(25));
        let mut medians = Vec::new();
        c.bench_function("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..100 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            });
            medians.push(b.median_ns());
        });
        assert_eq!(medians.len(), 1);
        assert!(medians[0] > 0.0);
    }

    #[test]
    fn iter_with_setup_times_only_routine() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(10));
        c.bench_function("setup", |b| {
            b.iter_with_setup(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            );
            assert!(b.median_ns() > 0.0);
        });
    }

    #[test]
    fn group_macro_compiles() {
        fn target(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| 1u32));
        }
        criterion_group!(
            name = tiny;
            config = Criterion::default()
                .sample_size(2)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(2));
            targets = target
        );
        tiny();
    }
}
