//! The [`Strategy`] trait and combinators.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SampleUniform};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest, strategies here generate values directly
/// (no value trees / shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns
    /// for it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T>
where
    std::ops::RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A / 0);
impl_strategy_for_tuple!(A / 0, B / 1);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
