#![warn(missing_docs)]

//! Offline drop-in subset of the [`proptest`](https://docs.rs/proptest/1)
//! crate.
//!
//! This workspace builds in environments without a crates.io mirror, so
//! the property-testing surface the test suites actually use is
//! reimplemented here on top of the vendored `rand`:
//!
//! - the [`proptest!`] macro (with an optional
//!   `#![proptest_config(...)]` header),
//! - [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, range and
//!   tuple strategies, and [`collection::vec`],
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! deterministic case index so it can be replayed by re-running the
//! test), and generation is driven by xoshiro256\*\* rather than
//! proptest's TestRng.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

/// Runtime configuration of a property test block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Outcome of a single generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// The case was rejected by [`prop_assume!`]; it is skipped.
    Reject,
}

impl TestCaseError {
    /// Constructs a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Drives one property test: runs `config.cases` generated cases and
/// panics on the first failing one, reporting its case index.
///
/// Used by the [`proptest!`] macro; not intended to be called directly.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    // Derive a per-test base seed from the test name so distinct tests
    // explore distinct streams, deterministically across runs.
    let mut base: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        base ^= u64::from(b);
        base = base.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rejected = 0u64;
    for i in 0..config.cases {
        let mut rng = StdRng::seed_from_u64(base ^ (u64::from(i) << 1));
        match case(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest {name}: case {i}/{} failed: {msg}", config.cases)
            }
        }
    }
    // Mirror upstream's global rejection cap (it aborts after too many
    // rejects); here a test that rejects everything is simply reported.
    if rejected == u64::from(config.cases) && config.cases > 0 {
        panic!("proptest {name}: all {rejected} cases were rejected by prop_assume!");
    }
}

/// Collection strategies ([`collection::vec`]).
pub mod collection {
    use crate::strategy::Strategy;

    /// Number-of-elements specification for [`vec`]: a fixed size or a
    /// range of sizes.
    pub trait SizeRange: Clone {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut rand::rngs::StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut rand::rngs::StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut rand::rngs::StdRng) -> usize {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut rand::rngs::StdRng) -> usize {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing a `Vec` whose elements come from `element` and
    /// whose length comes from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut rand::rngs::StdRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig};
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (not panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}

/// Skips the current generated case when the precondition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Supports the subset of the upstream grammar
/// used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn my_property(x in 0usize..10, v in collection::vec(0.0f32..1.0, 1..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg [$crate::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg [$cfg:expr]) => {};
    (@cfg [$cfg:expr]
        $(#[$meta:meta])+
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_impl!{ @cfg [$cfg] $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = usize> {
        (0usize..100).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in -2.0f32..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y = {y}");
        }

        #[test]
        fn mapped_strategies_apply(x in evens()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn flat_map_chains(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0u64..10, n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn assume_skips(x in 0usize..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }

        #[test]
        fn tuples_and_just(pair in (0usize..4, Just(7u8))) {
            prop_assert!(pair.0 < 4);
            prop_assert_eq!(pair.1, 7u8);
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics() {
        crate::run_proptest(&ProptestConfig::with_cases(8), "failing_property", |_rng| {
            Err(crate::TestCaseError::fail("boom"))
        });
    }
}
