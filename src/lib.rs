#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

//! Facade crate re-exporting the class-aware pruning workspace.
//!
//! See the individual crates for detail:
//! [`cap_tensor`], [`cap_nn`], [`cap_data`], [`cap_models`], [`cap_core`],
//! [`cap_baselines`], [`cap_obs`], [`cap_par`].

pub use cap_baselines as baselines;
pub use cap_core as core;
pub use cap_data as data;
pub use cap_models as models;
pub use cap_nn as nn;
pub use cap_obs as obs;
pub use cap_par as par;
pub use cap_tensor as tensor;
