//! `capctl` — command-line driver for `.capn` network checkpoints and
//! crash-safe pruning runs.
//!
//! ```text
//! capctl info  <file>                 print layer-by-layer structure and totals
//! capctl flops <file> <C> <H> <W>     cost analysis at an input size
//! capctl prune --run-dir <dir> [--resume] [--iters N] [--seed S]
//!              [--out <file>] [--csv <file>]
//!              [--fault-policy abort|skip:N|restore:N]
//!                                     run (or resume) a durable pruning run on
//!                                     the built-in synthetic benchmark
//! capctl tail <run-dir>               summarise a run's recorded history:
//!                                     series.capts (verifying seq contiguity),
//!                                     alerts.jsonl, class_attribution.jsonl
//! capctl dash <run-dir> --export <file.html>
//!                                     render the run's history dashboard to a
//!                                     self-contained HTML file
//! capctl flame <run-dir|file.folded> [--export <file.svg>]
//!                                     render a sampled profile (capprof's
//!                                     profile.folded) as a flamegraph SVG
//! capctl flame --diff <A> <B> [--export <file.svg>]
//!                                     differential flamegraph: B relative to A
//! capctl bench trend [--history <file.jsonl>] [--export <file.html>]
//!                                     render per-kernel GFLOP/s trends across
//!                                     recorded bench_baseline runs
//! capctl bench compare <A> <B> [--history <file.jsonl>]
//!                                     compare two recorded runs (selectors:
//!                                     1-based index, negative-from-end, or a
//!                                     commit prefix); within-run interleaved
//!                                     regressions exit 9, cross-run absolute
//!                                     deltas are advisory only
//! ```
//!
//! All commands accept `[--trace <spec>] [--serve-metrics <addr>]`
//! before the subcommand. Tracing: `--trace pretty` narrates events on
//! stderr, `--trace jsonl:<path>` writes machine-readable JSON lines
//! (append `,detail` for per-span events). The `CAP_TRACE` environment
//! variable accepts the same grammar:
//!
//! ```text
//! CAP_TRACE=jsonl:run.jsonl cargo run --bin capctl -- info model.capn
//! ```
//!
//! Live telemetry: `--serve-metrics <addr>` (or `CAP_METRICS_ADDR`)
//! starts the cap-obs HTTP server exposing `/metrics`, `/healthz`,
//! `/report` and `/trace` for the duration of the command.
//!
//! # Exit codes
//!
//! Each failure class maps to a distinct code so scripts and the CI
//! crash-recovery job can tell a usage mistake from a corrupt
//! checkpoint:
//!
//! | code | meaning                                         |
//! |------|-------------------------------------------------|
//! | 0    | success                                         |
//! | 2    | usage error (bad flags/arguments)               |
//! | 3    | file I/O failure                                |
//! | 4    | checkpoint/run-dir failure (corrupt, missing)   |
//! | 5    | pruning/analysis failure                        |
//! | 6    | dataset failure                                 |
//! | 7    | telemetry initialisation failure                |
//! | 8    | training failure (incl. numeric faults)         |
//! | 9    | benchmark regression (`bench compare`)          |

use cap_core::{analyze_network, ClassAwarePruner, PruneConfig, PruneError, PruneStrategy};
use cap_data::{DataError, DatasetSpec, SyntheticDataset};
use cap_nn::layer::{BatchNorm2d, Conv2d, GlobalAvgPool, Layer, Linear, Relu};
use cap_nn::{checkpoint, fit, FaultPolicy, Network, NnError, RunDir, RunDirError, TrainConfig};
use rand::SeedableRng;
use std::error::Error;
use std::fmt;
use std::process::ExitCode;

/// Everything that can fail, with one exit code per class (see the
/// module docs). `Display` prints only this level's context; `main`
/// walks [`Error::source`] for the cause chain.
#[derive(Debug)]
enum CtlError {
    Usage(String),
    Io {
        context: String,
        source: std::io::Error,
    },
    Checkpoint {
        context: String,
        source: checkpoint::CheckpointError,
    },
    RunDir {
        context: String,
        source: RunDirError,
    },
    Prune {
        context: String,
        source: PruneError,
    },
    Data {
        context: String,
        source: DataError,
    },
    Telemetry {
        reason: String,
    },
    Train {
        context: String,
        source: NnError,
    },
    Regression {
        summary: String,
    },
}

impl CtlError {
    fn exit_code(&self) -> u8 {
        match self {
            CtlError::Usage(_) => 2,
            CtlError::Io { .. } => 3,
            CtlError::Checkpoint { .. } | CtlError::RunDir { .. } => 4,
            CtlError::Prune { .. } => 5,
            CtlError::Data { .. } => 6,
            CtlError::Telemetry { .. } => 7,
            CtlError::Train { .. } => 8,
            CtlError::Regression { .. } => 9,
        }
    }
}

impl fmt::Display for CtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtlError::Usage(msg) => write!(f, "{msg}"),
            CtlError::Io { context, .. } => write!(f, "{context}"),
            CtlError::Checkpoint { context, .. } => write!(f, "{context}"),
            CtlError::RunDir { context, .. } => write!(f, "{context}"),
            CtlError::Prune { context, .. } => write!(f, "{context}"),
            CtlError::Data { context, .. } => write!(f, "{context}"),
            CtlError::Telemetry { reason } => write!(f, "telemetry: {reason}"),
            CtlError::Train { context, .. } => write!(f, "{context}"),
            CtlError::Regression { summary } => write!(f, "{summary}"),
        }
    }
}

impl Error for CtlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CtlError::Usage(_) | CtlError::Telemetry { .. } | CtlError::Regression { .. } => None,
            CtlError::Io { source, .. } => Some(source),
            CtlError::Checkpoint { source, .. } => Some(source),
            CtlError::RunDir { source, .. } => Some(source),
            CtlError::Prune { source, .. } => Some(source),
            CtlError::Data { source, .. } => Some(source),
            CtlError::Train { source, .. } => Some(source),
        }
    }
}

const USAGE: &str = "usage: capctl [--trace <spec>] [--serve-metrics <addr>] <command>\n\
     commands:\n\
       info <file>\n\
       flops <file> <C> <H> <W>\n\
       prune --run-dir <dir> [--resume] [--iters N] [--seed S] [--out <file>] [--csv <file>]\n\
             [--fault-policy abort|skip:N|restore:N]\n\
       tail <run-dir>\n\
       dash <run-dir> --export <file.html>\n\
       flame <run-dir|file.folded> [--export <file.svg>]\n\
       flame --diff <A> <B> [--export <file.svg>]\n\
       bench trend [--history <file.jsonl>] [--export <file.html>]\n\
       bench compare <A> <B> [--history <file.jsonl>]";

fn usage_err(detail: impl Into<String>) -> CtlError {
    let detail = detail.into();
    if detail.is_empty() {
        CtlError::Usage(USAGE.to_string())
    } else {
        CtlError::Usage(format!("{detail}\n{USAGE}"))
    }
}

fn describe(net: &Network) {
    println!(
        "{} layers, {} parameters",
        net.layers().len(),
        net.num_params()
    );
    for (i, layer) in net.layers().iter().enumerate() {
        let detail = match layer {
            Layer::Conv(c) => format!(
                "conv {}→{} k{} s{} p{}{}",
                c.in_channels(),
                c.out_channels(),
                c.kernel(),
                c.stride(),
                c.padding(),
                if c.bias().is_some() { " +bias" } else { "" }
            ),
            Layer::BatchNorm(bn) => format!("batchnorm {} channels", bn.channels()),
            Layer::Relu(_) => "relu".to_string(),
            Layer::MaxPool(p) => format!("maxpool k{} s{}", p.kernel(), p.stride()),
            Layer::GlobalAvgPool(_) => "global avg pool".to_string(),
            Layer::Flatten(_) => "flatten".to_string(),
            Layer::Linear(l) => format!("linear {}→{}", l.in_features(), l.out_features()),
            Layer::Residual(b) => format!(
                "residual block {}→{} (internal width {}{})",
                b.conv1().in_channels(),
                b.out_channels(),
                b.conv1().out_channels(),
                if b.shortcut().is_some() {
                    ", projection shortcut"
                } else {
                    ", identity shortcut"
                }
            ),
        };
        println!("  [{i:>3}] {detail}  ({} params)", layer.num_params());
    }
}

/// Strips `--trace <spec>` and `--serve-metrics <addr>` from the
/// argument list and initialises the observability layer: the sink from
/// the spec (or `CAP_TRACE` when absent), the live telemetry server
/// from the flag (or `CAP_METRICS_ADDR` when absent).
fn init_trace(args: &mut Vec<String>) -> Result<(), CtlError> {
    let take =
        |args: &mut Vec<String>, flag: &str, what: &str| -> Result<Option<String>, CtlError> {
            match args.iter().position(|a| a == flag) {
                Some(pos) if pos + 1 < args.len() => {
                    let value = args.remove(pos + 1);
                    args.remove(pos);
                    Ok(Some(value))
                }
                Some(_) => Err(usage_err(format!("{flag} requires {what}"))),
                None => Ok(None),
            }
        };
    let spec = take(args, "--trace", "a spec (pretty | jsonl:<path>[,detail])")?;
    let serve = take(args, "--serve-metrics", "an address (e.g. 127.0.0.1:9184)")?;
    let telemetry = cap_obs::init_telemetry(spec.as_deref())
        .map_err(|reason| CtlError::Telemetry { reason })?;
    let bound = match serve {
        Some(addr) => Some(
            cap_obs::serve::start_global(&addr).map_err(|reason| CtlError::Telemetry { reason })?,
        ),
        None => telemetry.serving,
    };
    if let Some(addr) = bound {
        eprintln!("cap-obs: live telemetry on http://{addr}/metrics");
    }
    Ok(())
}

fn load_net(path: &str) -> Result<Network, CtlError> {
    let file = std::fs::File::open(path).map_err(|source| CtlError::Io {
        context: format!("open {path}"),
        source,
    })?;
    checkpoint::load(std::io::BufReader::new(file)).map_err(|source| CtlError::Checkpoint {
        context: format!("load {path}"),
        source,
    })
}

/// The small CIFAR-like network used by `capctl prune` (matching the
/// framework's test topology so the run finishes in seconds).
fn prune_demo_net(seed: u64) -> Network {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut net = Network::new();
    net.push(Conv2d::new(3, 12, 3, 1, 1, false, &mut rng).expect("valid conv"));
    net.push(BatchNorm2d::new(12).expect("valid bn"));
    net.push(Relu::new());
    net.push(Conv2d::new(12, 12, 3, 1, 1, false, &mut rng).expect("valid conv"));
    net.push(BatchNorm2d::new(12).expect("valid bn"));
    net.push(Relu::new());
    net.push(GlobalAvgPool::new());
    net.push(Linear::new(12, 10, &mut rng).expect("valid linear"));
    net
}

fn cmd_prune(args: &[String]) -> Result<(), CtlError> {
    let mut run_dir: Option<String> = None;
    let mut resume = false;
    let mut iters: usize = 3;
    let mut seed: u64 = 33;
    let mut out: Option<String> = None;
    let mut csv: Option<String> = None;
    let mut fault_policy = FaultPolicy::Abort;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| usage_err(format!("{flag} requires {what}")))
        };
        match flag.as_str() {
            "--run-dir" => run_dir = Some(value("a directory")?),
            "--resume" => resume = true,
            "--iters" => {
                iters = value("a count")?
                    .parse()
                    .map_err(|e| usage_err(format!("bad --iters: {e}")))?;
            }
            "--seed" => {
                seed = value("a seed")?
                    .parse()
                    .map_err(|e| usage_err(format!("bad --seed: {e}")))?;
            }
            "--out" => out = Some(value("a file")?),
            "--csv" => csv = Some(value("a file")?),
            "--fault-policy" => fault_policy = parse_fault_policy(&value("a policy")?)?,
            other => return Err(usage_err(format!("unknown prune flag {other:?}"))),
        }
    }
    let run_dir = run_dir.ok_or_else(|| usage_err("prune requires --run-dir"))?;

    let data = SyntheticDataset::generate(
        &DatasetSpec::cifar10_like()
            .with_image_size(8)
            .with_counts(12, 4),
    )
    .map_err(|source| CtlError::Data {
        context: "generate synthetic dataset".to_string(),
        source,
    })?;
    let train_cfg = TrainConfig {
        epochs: 2,
        batch_size: 20,
        lr: 0.02,
        fault_policy,
        ..TrainConfig::default()
    };
    let pruner = ClassAwarePruner::new(PruneConfig {
        strategy: PruneStrategy::Percentage { fraction: 0.2 },
        finetune: train_cfg,
        max_iterations: iters,
        accuracy_drop_limit: 1.0,
        ..PruneConfig::default()
    })
    .map_err(|source| CtlError::Prune {
        context: "invalid prune configuration".to_string(),
        source,
    })?;

    let (net, outcome) = if resume {
        let dir = RunDir::open(&run_dir).map_err(|source| CtlError::RunDir {
            context: format!("open run dir {run_dir}"),
            source,
        })?;
        eprintln!("resuming run in {run_dir}");
        pruner
            .resume(data.train(), data.test(), &dir)
            .map_err(|source| CtlError::Prune {
                context: format!("resume pruning run in {run_dir}"),
                source,
            })?
    } else {
        let dir = RunDir::create(&run_dir).map_err(|source| CtlError::RunDir {
            context: format!("create run dir {run_dir}"),
            source,
        })?;
        let mut net = prune_demo_net(seed);
        fit(
            &mut net,
            data.train().images(),
            data.train().labels(),
            &train_cfg,
        )
        .map_err(|source| CtlError::Train {
            context: "pre-train demo network".to_string(),
            source,
        })?;
        let outcome = pruner
            .run_with_dir(&mut net, data.train(), data.test(), &dir)
            .map_err(|source| CtlError::Prune {
                context: format!("pruning run in {run_dir}"),
                source,
            })?;
        (net, outcome)
    };

    println!(
        "stop: {:?} after {} iterations",
        outcome.stop_reason,
        outcome.iterations.len()
    );
    println!(
        "accuracy {:.4} -> {:.4}, params {} -> {}, FLOPs {} -> {}",
        outcome.baseline_accuracy,
        outcome.final_accuracy,
        outcome.baseline_cost.total_params,
        outcome.final_cost.total_params,
        outcome.baseline_cost.total_flops,
        outcome.final_cost.total_flops
    );
    if let Some(path) = out {
        let bytes = checkpoint::to_bytes(&net).map_err(|source| CtlError::Checkpoint {
            context: format!("serialise final network for {path}"),
            source,
        })?;
        cap_obs::fsx::atomic_write(std::path::Path::new(&path), &bytes).map_err(|source| {
            CtlError::Io {
                context: format!("write {path}"),
                source,
            }
        })?;
        println!("final network written to {path}");
    }
    if let Some(path) = csv {
        cap_obs::fsx::atomic_write(
            std::path::Path::new(&path),
            outcome.iterations_csv().as_bytes(),
        )
        .map_err(|source| CtlError::Io {
            context: format!("write {path}"),
            source,
        })?;
        println!("iteration trajectory written to {path}");
    }
    Ok(())
}

/// Parses `abort`, `skip:N` or `restore:N` into a [`FaultPolicy`].
fn parse_fault_policy(spec: &str) -> Result<FaultPolicy, CtlError> {
    if spec == "abort" {
        return Ok(FaultPolicy::Abort);
    }
    let budget = |rest: &str| {
        rest.parse::<u32>()
            .map_err(|e| usage_err(format!("bad --fault-policy budget {rest:?}: {e}")))
    };
    if let Some(rest) = spec.strip_prefix("skip:") {
        return Ok(FaultPolicy::SkipBatch {
            budget: budget(rest)?,
        });
    }
    if let Some(rest) = spec.strip_prefix("restore:") {
        return Ok(FaultPolicy::RestoreAndHalveLr {
            budget: budget(rest)?,
        });
    }
    Err(usage_err(format!(
        "bad --fault-policy {spec:?} (want abort | skip:N | restore:N)"
    )))
}

/// Prints the last `n` lines of a JSONL sidecar, if it exists.
fn tail_jsonl(dir: &std::path::Path, name: &str, n: usize) -> Result<usize, CtlError> {
    let path = dir.join(name);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            println!("{name}: none");
            return Ok(0);
        }
        Err(source) => {
            return Err(CtlError::Io {
                context: format!("read {}", path.display()),
                source,
            })
        }
    };
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    println!("{name}: {} records", lines.len());
    for line in lines.iter().rev().take(n).rev() {
        println!("  {line}");
    }
    Ok(lines.len())
}

/// `capctl tail <run-dir>`: summarises the recorded history — sample
/// count and seq contiguity of `series.capts`, the newest sample's
/// points, and the tails of `alerts.jsonl` / `class_attribution.jsonl`.
/// A seq gap (which a correct writer can never produce) is a run-dir
/// error.
fn cmd_tail(run_dir: &str) -> Result<(), CtlError> {
    let dir = std::path::Path::new(run_dir);
    let series = dir.join("series.capts");
    // A run that never recorded history (telemetry disabled, or died
    // before the first flush) is a normal state, not an error.
    if !series.exists() {
        println!("no history recorded ({} has no series.capts)", run_dir);
        tail_jsonl(dir, "alerts.jsonl", 5)?;
        tail_jsonl(dir, "class_attribution.jsonl", 5)?;
        return Ok(());
    }
    let samples = cap_obs::tsdb::read_samples(&series).map_err(|e| CtlError::RunDir {
        context: format!("read {}", series.display()),
        source: RunDirError::Corrupt {
            reason: e.to_string(),
        },
    })?;
    match (samples.first(), samples.last()) {
        (Some(first), Some(last)) => {
            for w in samples.windows(2) {
                if w[1].seq != w[0].seq + 1 {
                    return Err(CtlError::RunDir {
                        context: format!("series.capts seq gap: {} -> {}", w[0].seq, w[1].seq),
                        source: RunDirError::Corrupt {
                            reason: "non-contiguous sample sequence".to_string(),
                        },
                    });
                }
            }
            println!(
                "series.capts: {} samples, seq {}..{} contiguous",
                samples.len(),
                first.seq,
                last.seq
            );
            println!("last sample (t={:.3}s):", last.t);
            for (name, value) in &last.points {
                println!("  {name} = {value}");
            }
        }
        _ => println!("series.capts: 0 samples"),
    }
    tail_jsonl(dir, "alerts.jsonl", 5)?;
    tail_jsonl(dir, "class_attribution.jsonl", 5)?;
    Ok(())
}

/// `capctl dash <run-dir> --export <file.html>`: renders the recorded
/// history to a self-contained HTML dashboard.
fn cmd_dash(args: &[String]) -> Result<(), CtlError> {
    let mut run_dir: Option<String> = None;
    let mut export: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--export" => {
                export = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| usage_err("--export requires a file"))?,
                );
            }
            other if run_dir.is_none() && !other.starts_with('-') => {
                run_dir = Some(other.to_string());
            }
            other => return Err(usage_err(format!("unknown dash argument {other:?}"))),
        }
    }
    let run_dir = run_dir.ok_or_else(|| usage_err("dash requires a run dir"))?;
    let export = export.ok_or_else(|| usage_err("dash requires --export <file.html>"))?;
    let series = std::path::Path::new(&run_dir).join("series.capts");
    if !series.exists() {
        println!("no history recorded ({run_dir} has no series.capts); nothing to export");
        return Ok(());
    }
    let samples = cap_obs::tsdb::read_samples(&series).map_err(|e| CtlError::RunDir {
        context: format!("read {}", series.display()),
        source: RunDirError::Corrupt {
            reason: e.to_string(),
        },
    })?;
    let html = cap_obs::dash::render(&samples, &run_dir);
    cap_obs::fsx::atomic_write(std::path::Path::new(&export), html.as_bytes()).map_err(
        |source| CtlError::Io {
            context: format!("write {export}"),
            source,
        },
    )?;
    println!(
        "dashboard for {} samples written to {export}",
        samples.len()
    );
    Ok(())
}

/// Reads a folded-stack profile. A directory argument resolves to the
/// `profile.folded` capprof writes into every run dir.
fn read_folded(arg: &str) -> Result<Vec<(String, u64)>, CtlError> {
    let mut path = std::path::PathBuf::from(arg);
    if path.is_dir() {
        path.push("profile.folded");
    }
    let text = std::fs::read_to_string(&path).map_err(|source| CtlError::Io {
        context: format!("read {}", path.display()),
        source,
    })?;
    Ok(cap_obs::flame::parse_folded(&text))
}

/// `capctl flame <target> [--export f]` or
/// `capctl flame --diff <A> <B> [--export f]`: renders a sampled
/// profile (or the difference between two) as a self-contained SVG.
fn cmd_flame(args: &[String]) -> Result<(), CtlError> {
    let mut diff = false;
    let mut export: Option<String> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--diff" => diff = true,
            "--export" => {
                export = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| usage_err("--export requires a file"))?,
                );
            }
            other if !other.starts_with("--") => targets.push(other.to_string()),
            other => return Err(usage_err(format!("unknown flame argument {other:?}"))),
        }
    }
    let (svg, default_export) = if diff {
        if targets.len() != 2 {
            return Err(usage_err("flame --diff requires exactly two profiles"));
        }
        let base = read_folded(&targets[0])?;
        let new = read_folded(&targets[1])?;
        let title = format!("diff: {} vs {}", targets[0], targets[1]);
        (
            cap_obs::flame::render_diff_svg(&base, &new, &title),
            "flame-diff.svg",
        )
    } else {
        if targets.len() != 1 {
            return Err(usage_err("flame requires one run dir or .folded file"));
        }
        let stacks = read_folded(&targets[0])?;
        (
            cap_obs::flame::render_svg(&stacks, &targets[0]),
            "flame.svg",
        )
    };
    let export = export.unwrap_or_else(|| default_export.to_string());
    cap_obs::fsx::atomic_write(std::path::Path::new(&export), svg.as_bytes()).map_err(
        |source| CtlError::Io {
            context: format!("write {export}"),
            source,
        },
    )?;
    println!("flamegraph written to {export}");
    Ok(())
}

/// `capctl bench trend|compare`: the cross-run perf-trend observatory
/// over `results/bench_history.jsonl` (see cap-obs `trend`).
fn cmd_bench(args: &[String]) -> Result<(), CtlError> {
    let sub = args.first().map(String::as_str);
    let mut history = cap_obs::trend::DEFAULT_HISTORY_PATH.to_string();
    let mut export: Option<String> = None;
    let mut selectors: Vec<String> = Vec::new();
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--history" => {
                history = it
                    .next()
                    .cloned()
                    .ok_or_else(|| usage_err("--history requires a file"))?;
            }
            "--export" => {
                export = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| usage_err("--export requires a file"))?,
                );
            }
            // Selectors like "-1" (last run) must stay positional, so
            // only "--"-prefixed tokens are treated as flags.
            other if !other.starts_with("--") => selectors.push(other.to_string()),
            other => return Err(usage_err(format!("unknown bench argument {other:?}"))),
        }
    }
    let runs = cap_obs::trend::load_history(std::path::Path::new(&history));
    match sub {
        Some("trend") => {
            if !selectors.is_empty() {
                return Err(usage_err("bench trend takes no positional arguments"));
            }
            let export = export.unwrap_or_else(|| "trend.html".to_string());
            let html = cap_obs::trend::render_trend_html(&runs);
            cap_obs::fsx::atomic_write(std::path::Path::new(&export), html.as_bytes()).map_err(
                |source| CtlError::Io {
                    context: format!("write {export}"),
                    source,
                },
            )?;
            println!(
                "trend over {} runs from {history} written to {export}",
                runs.len()
            );
            Ok(())
        }
        Some("compare") => {
            if selectors.len() != 2 {
                return Err(usage_err("bench compare requires two run selectors"));
            }
            let pick = |sel: &str| {
                cap_obs::trend::select(&runs, sel)
                    .map_err(|e| usage_err(format!("bad selector {sel:?}: {e}")))
            };
            let (ia, a) = pick(&selectors[0])?;
            let (ib, b) = pick(&selectors[1])?;
            println!("baseline  {}", a.describe(ia));
            println!("candidate {}", b.describe(ib));
            let cmp = cap_obs::trend::compare_runs(a, b);
            for note in &cmp.advisories {
                println!("advisory: {note}");
            }
            if cmp.regressions.is_empty() {
                println!("no within-run interleaved regressions");
                Ok(())
            } else {
                for r in &cmp.regressions {
                    eprintln!("regression: {r}");
                }
                Err(CtlError::Regression {
                    summary: format!(
                        "{} within-run interleaved regression(s)",
                        cmp.regressions.len()
                    ),
                })
            }
        }
        _ => Err(usage_err("bench requires a subcommand: trend | compare")),
    }
}

fn run() -> Result<(), CtlError> {
    let mut args: Vec<String> = std::env::args().collect();
    init_trace(&mut args)?;
    let _span = cap_obs::span!("capctl.run");
    if let Some(cmd) = args.get(1) {
        cap_obs::emit(cap_obs::Event::new("capctl").str("command", cmd.clone()));
    }
    match args.get(1).map(String::as_str) {
        Some("info") => {
            let path = args
                .get(2)
                .ok_or_else(|| usage_err("info requires a file"))?;
            let net = load_net(path)?;
            describe(&net);
            Ok(())
        }
        Some("flops") => {
            if args.len() < 6 {
                return Err(usage_err("flops requires <file> <C> <H> <W>"));
            }
            let path = &args[2];
            let parse = |s: &String| {
                s.parse::<usize>()
                    .map_err(|e| usage_err(format!("bad dim {s}: {e}")))
            };
            let (c, h, w) = (parse(&args[3])?, parse(&args[4])?, parse(&args[5])?);
            let net = load_net(path)?;
            let report = analyze_network(&net, c, h, w).map_err(|source| CtlError::Prune {
                context: format!("analyse {path}"),
                source,
            })?;
            println!("input [{c}, {h}, {w}]");
            println!("layer                    | FLOPs        | params");
            println!("-------------------------+--------------+--------");
            for l in &report.layers {
                println!("{:<25}| {:>12} | {:>6}", l.label, l.flops, l.params);
            }
            println!(
                "total: {} FLOPs/sample, {} parameters",
                report.total_flops, report.total_params
            );
            Ok(())
        }
        Some("prune") => cmd_prune(&args[2..]),
        Some("tail") => {
            let dir = args
                .get(2)
                .ok_or_else(|| usage_err("tail requires a run dir"))?;
            cmd_tail(dir)
        }
        Some("dash") => cmd_dash(&args[2..]),
        Some("flame") => cmd_flame(&args[2..]),
        Some("bench") => cmd_bench(&args[2..]),
        _ => Err(usage_err("")),
    }
}

fn main() -> ExitCode {
    let result = run();
    if let Err(e) = cap_obs::finalize_process() {
        eprintln!("capctl: telemetry finalize: {e}");
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("capctl: {e}");
            let mut cause = e.source();
            while let Some(c) = cause {
                eprintln!("  caused by: {c}");
                cause = c.source();
            }
            ExitCode::from(e.exit_code())
        }
    }
}
