//! `capctl` — command-line inspector for `.capn` network checkpoints.
//!
//! ```text
//! capctl info  <file>   print layer-by-layer structure and totals
//! capctl flops <file> <C> <H> <W>   cost analysis at an input size
//! ```

use cap_core::analyze_network;
use cap_nn::layer::Layer;
use cap_nn::{checkpoint, Network};
use std::process::ExitCode;

fn describe(net: &Network) {
    println!(
        "{} layers, {} parameters",
        net.layers().len(),
        net.num_params()
    );
    for (i, layer) in net.layers().iter().enumerate() {
        let detail = match layer {
            Layer::Conv(c) => format!(
                "conv {}→{} k{} s{} p{}{}",
                c.in_channels(),
                c.out_channels(),
                c.kernel(),
                c.stride(),
                c.padding(),
                if c.bias().is_some() { " +bias" } else { "" }
            ),
            Layer::BatchNorm(bn) => format!("batchnorm {} channels", bn.channels()),
            Layer::Relu(_) => "relu".to_string(),
            Layer::MaxPool(p) => format!("maxpool k{} s{}", p.kernel(), p.stride()),
            Layer::GlobalAvgPool(_) => "global avg pool".to_string(),
            Layer::Flatten(_) => "flatten".to_string(),
            Layer::Linear(l) => format!("linear {}→{}", l.in_features(), l.out_features()),
            Layer::Residual(b) => format!(
                "residual block {}→{} (internal width {}{})",
                b.conv1().in_channels(),
                b.out_channels(),
                b.conv1().out_channels(),
                if b.shortcut().is_some() {
                    ", projection shortcut"
                } else {
                    ", identity shortcut"
                }
            ),
        };
        println!("  [{i:>3}] {detail}  ({} params)", layer.num_params());
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().collect();
    let usage = "usage: capctl info <file> | capctl flops <file> <C> <H> <W>";
    match args.get(1).map(String::as_str) {
        Some("info") => {
            let path = args.get(2).ok_or(usage)?;
            let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
            let net = checkpoint::load(std::io::BufReader::new(file))
                .map_err(|e| format!("load {path}: {e}"))?;
            describe(&net);
            Ok(())
        }
        Some("flops") => {
            if args.len() < 6 {
                return Err(usage.to_string());
            }
            let path = &args[2];
            let parse = |s: &String| s.parse::<usize>().map_err(|e| format!("bad dim {s}: {e}"));
            let (c, h, w) = (parse(&args[3])?, parse(&args[4])?, parse(&args[5])?);
            let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
            let net = checkpoint::load(std::io::BufReader::new(file))
                .map_err(|e| format!("load {path}: {e}"))?;
            let report =
                analyze_network(&net, c, h, w).map_err(|e| format!("analysis failed: {e}"))?;
            println!("input [{c}, {h}, {w}]");
            println!("layer                    | FLOPs        | params");
            println!("-------------------------+--------------+--------");
            for l in &report.layers {
                println!("{:<25}| {:>12} | {:>6}", l.label, l.flops, l.params);
            }
            println!(
                "total: {} FLOPs/sample, {} parameters",
                report.total_flops, report.total_params
            );
            Ok(())
        }
        _ => Err(usage.to_string()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
