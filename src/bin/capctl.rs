//! `capctl` — command-line inspector for `.capn` network checkpoints.
//!
//! ```text
//! capctl [--trace <spec>] info  <file>   print layer-by-layer structure and totals
//! capctl [--trace <spec>] flops <file> <C> <H> <W>   cost analysis at an input size
//! ```
//!
//! Tracing: `--trace pretty` narrates events on stderr, `--trace
//! jsonl:<path>` writes machine-readable JSON lines (append `,detail`
//! for per-span events). The `CAP_TRACE` environment variable accepts
//! the same grammar:
//!
//! ```text
//! CAP_TRACE=jsonl:run.jsonl cargo run --bin capctl -- info model.capn
//! ```
//!
//! Live telemetry: `--serve-metrics <addr>` (or `CAP_METRICS_ADDR`)
//! starts the cap-obs HTTP server exposing `/metrics`, `/healthz`,
//! `/report` and `/trace` for the duration of the command.

use cap_core::analyze_network;
use cap_nn::layer::Layer;
use cap_nn::{checkpoint, Network};
use std::process::ExitCode;

fn describe(net: &Network) {
    println!(
        "{} layers, {} parameters",
        net.layers().len(),
        net.num_params()
    );
    for (i, layer) in net.layers().iter().enumerate() {
        let detail = match layer {
            Layer::Conv(c) => format!(
                "conv {}→{} k{} s{} p{}{}",
                c.in_channels(),
                c.out_channels(),
                c.kernel(),
                c.stride(),
                c.padding(),
                if c.bias().is_some() { " +bias" } else { "" }
            ),
            Layer::BatchNorm(bn) => format!("batchnorm {} channels", bn.channels()),
            Layer::Relu(_) => "relu".to_string(),
            Layer::MaxPool(p) => format!("maxpool k{} s{}", p.kernel(), p.stride()),
            Layer::GlobalAvgPool(_) => "global avg pool".to_string(),
            Layer::Flatten(_) => "flatten".to_string(),
            Layer::Linear(l) => format!("linear {}→{}", l.in_features(), l.out_features()),
            Layer::Residual(b) => format!(
                "residual block {}→{} (internal width {}{})",
                b.conv1().in_channels(),
                b.out_channels(),
                b.conv1().out_channels(),
                if b.shortcut().is_some() {
                    ", projection shortcut"
                } else {
                    ", identity shortcut"
                }
            ),
        };
        println!("  [{i:>3}] {detail}  ({} params)", layer.num_params());
    }
}

/// Strips `--trace <spec>` and `--serve-metrics <addr>` from the
/// argument list and initialises the observability layer: the sink from
/// the spec (or `CAP_TRACE` when absent), the live telemetry server
/// from the flag (or `CAP_METRICS_ADDR` when absent).
fn init_trace(args: &mut Vec<String>) -> Result<(), String> {
    let take = |args: &mut Vec<String>, flag: &str, what: &str| -> Result<Option<String>, String> {
        match args.iter().position(|a| a == flag) {
            Some(pos) if pos + 1 < args.len() => {
                let value = args.remove(pos + 1);
                args.remove(pos);
                Ok(Some(value))
            }
            Some(_) => Err(format!("{flag} requires {what}")),
            None => Ok(None),
        }
    };
    let spec = take(args, "--trace", "a spec (pretty | jsonl:<path>[,detail])")?;
    let serve = take(args, "--serve-metrics", "an address (e.g. 127.0.0.1:9184)")?;
    let telemetry = cap_obs::init_telemetry(spec.as_deref())?;
    let bound = match serve {
        Some(addr) => Some(cap_obs::serve::start_global(&addr)?),
        None => telemetry.serving,
    };
    if let Some(addr) = bound {
        eprintln!("cap-obs: live telemetry on http://{addr}/metrics");
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().collect();
    let usage = "usage: capctl [--trace <spec>] [--serve-metrics <addr>] info <file> | capctl [--trace <spec>] [--serve-metrics <addr>] flops <file> <C> <H> <W>";
    init_trace(&mut args)?;
    let _span = cap_obs::span!("capctl.run");
    if let Some(cmd) = args.get(1) {
        cap_obs::emit(cap_obs::Event::new("capctl").str("command", cmd.clone()));
    }
    match args.get(1).map(String::as_str) {
        Some("info") => {
            let path = args.get(2).ok_or(usage)?;
            let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
            let net = checkpoint::load(std::io::BufReader::new(file))
                .map_err(|e| format!("load {path}: {e}"))?;
            describe(&net);
            Ok(())
        }
        Some("flops") => {
            if args.len() < 6 {
                return Err(usage.to_string());
            }
            let path = &args[2];
            let parse = |s: &String| s.parse::<usize>().map_err(|e| format!("bad dim {s}: {e}"));
            let (c, h, w) = (parse(&args[3])?, parse(&args[4])?, parse(&args[5])?);
            let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
            let net = checkpoint::load(std::io::BufReader::new(file))
                .map_err(|e| format!("load {path}: {e}"))?;
            let report =
                analyze_network(&net, c, h, w).map_err(|e| format!("analysis failed: {e}"))?;
            println!("input [{c}, {h}, {w}]");
            println!("layer                    | FLOPs        | params");
            println!("-------------------------+--------------+--------");
            for l in &report.layers {
                println!("{:<25}| {:>12} | {:>6}", l.label, l.flops, l.params);
            }
            println!(
                "total: {} FLOPs/sample, {} parameters",
                report.total_flops, report.total_params
            );
            Ok(())
        }
        _ => Err(usage.to_string()),
    }
}

fn main() -> ExitCode {
    let result = run();
    cap_obs::serve::stop_global();
    cap_obs::flush();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
