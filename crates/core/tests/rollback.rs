//! The framework's rollback guarantee: when fine-tuning cannot recover
//! accuracy, the pre-iteration snapshot is restored **bit-identically**
//! — and the guarantee holds at any thread count, per the cap-par
//! determinism contract.

use cap_core::{ClassAwarePruner, PruneConfig, PruneStrategy, StopReason};
use cap_data::{DatasetSpec, SyntheticDataset};
use cap_nn::layer::{BatchNorm2d, Conv2d, GlobalAvgPool, Linear, Relu};
use cap_nn::{checkpoint, fit, Network, TrainConfig};
use rand::SeedableRng;

fn tiny_data() -> SyntheticDataset {
    SyntheticDataset::generate(
        &DatasetSpec::cifar10_like()
            .with_image_size(8)
            .with_counts(12, 4),
    )
    .unwrap()
}

fn pretrained_net(data: &SyntheticDataset) -> Network {
    let mut rng = rand::rngs::StdRng::seed_from_u64(33);
    let mut net = Network::new();
    net.push(Conv2d::new(3, 12, 3, 1, 1, false, &mut rng).unwrap());
    net.push(BatchNorm2d::new(12).unwrap());
    net.push(Relu::new());
    net.push(Conv2d::new(12, 12, 3, 1, 1, false, &mut rng).unwrap());
    net.push(BatchNorm2d::new(12).unwrap());
    net.push(Relu::new());
    net.push(GlobalAvgPool::new());
    net.push(Linear::new(12, 10, &mut rng).unwrap());
    fit(
        &mut net,
        data.train().images(),
        data.train().labels(),
        &TrainConfig {
            epochs: 4,
            batch_size: 20,
            lr: 0.02,
            ..TrainConfig::default()
        },
    )
    .unwrap();
    net
}

/// One sequential test (not one per thread count) because the thread
/// count is process-global state.
#[test]
fn rollback_restores_network_bit_identically_at_1_and_4_threads() {
    let data = tiny_data();
    for threads in [1usize, 4] {
        cap_par::set_threads(threads);
        let mut net = pretrained_net(&data);
        let before = checkpoint::to_bytes(&net).unwrap();
        // Aggressive pruning, zero drop budget, and a learning rate too
        // small to recover: the first iteration must be rolled back.
        let pruner = ClassAwarePruner::new(PruneConfig {
            strategy: PruneStrategy::Percentage { fraction: 0.8 },
            finetune: TrainConfig {
                epochs: 1,
                batch_size: 120,
                lr: 1e-6,
                ..TrainConfig::default()
            },
            max_iterations: 5,
            accuracy_drop_limit: 0.0,
            ..PruneConfig::default()
        })
        .unwrap();
        let outcome = pruner.run(&mut net, data.train(), data.test()).unwrap();
        assert_eq!(
            outcome.stop_reason,
            StopReason::AccuracyUnrecoverable,
            "setup must force a rollback (threads={threads})"
        );
        let after = checkpoint::to_bytes(&net).unwrap();
        assert_eq!(
            before, after,
            "rollback must restore the pre-iteration weights bit-identically (threads={threads})"
        );
    }
}
