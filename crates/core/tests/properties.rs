//! Property-based tests on the pruning-core invariants.

use cap_core::{select_filters, NetworkScores, PruneStrategy, ScoreHistogram, SiteScores};
use proptest::prelude::*;

fn arb_scores() -> impl Strategy<Value = NetworkScores> {
    proptest::collection::vec(proptest::collection::vec(0.0f64..10.0, 1..12), 1..5).prop_map(
        |sites| NetworkScores {
            sites: sites
                .into_iter()
                .enumerate()
                .map(|(i, scores)| SiteScores {
                    label: format!("site{i}"),
                    scores,
                })
                .collect(),
            classes: 10,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn selection_never_empties_a_site(
        scores in arb_scores(),
        threshold in 0.0f64..12.0,
    ) {
        let sel = select_filters(&scores, &PruneStrategy::Threshold { threshold }).unwrap();
        for (site, removed) in scores.sites.iter().zip(&sel.remove) {
            prop_assert!(removed.len() < site.scores.len().max(1) || site.scores.is_empty());
        }
    }

    #[test]
    fn percentage_cap_is_respected(
        scores in arb_scores(),
        fraction in 0.01f64..0.99,
    ) {
        let sel = select_filters(&scores, &PruneStrategy::Percentage { fraction }).unwrap();
        let total = scores.total_filters();
        let cap = ((total as f64 * fraction).floor() as usize).max(1);
        prop_assert!(sel.total_removed() <= cap);
    }

    #[test]
    fn combined_is_subset_of_threshold(
        scores in arb_scores(),
        threshold in 0.0f64..12.0,
        max_fraction in 0.01f64..0.99,
    ) {
        let thr = select_filters(&scores, &PruneStrategy::Threshold { threshold }).unwrap();
        let comb = select_filters(
            &scores,
            &PruneStrategy::Combined { threshold, max_fraction },
        )
        .unwrap();
        // Everything the combined strategy removes must also be removed by
        // the pure threshold strategy (the cap only shrinks the set).
        prop_assert!(comb.total_removed() <= thr.total_removed());
        for (site_idx, removed) in comb.remove.iter().enumerate() {
            for f in removed {
                prop_assert!(
                    thr.remove[site_idx].contains(f),
                    "combined removed ({site_idx},{f}) that threshold kept"
                );
            }
        }
    }

    #[test]
    fn removed_filters_have_lowest_scores(
        scores in arb_scores(),
        fraction in 0.05f64..0.5,
    ) {
        let sel = select_filters(&scores, &PruneStrategy::Percentage { fraction }).unwrap();
        // Max removed score <= min kept score + epsilon, per site modulo the
        // global ordering: globally, every removed score must be <= every
        // kept score unless keep-1-per-site forced a skip.
        let mut removed_scores: Vec<f64> = Vec::new();
        let mut kept_scores: Vec<f64> = Vec::new();
        for (si, site) in scores.sites.iter().enumerate() {
            for (fi, &v) in site.scores.iter().enumerate() {
                if sel.remove[si].contains(&fi) {
                    removed_scores.push(v);
                } else {
                    kept_scores.push(v);
                }
            }
        }
        if let (Some(max_removed), Some(_)) = (
            removed_scores.iter().cloned().reduce(f64::max),
            kept_scores.iter().cloned().reduce(f64::min),
        ) {
            // Count how many kept scores are strictly below max_removed that
            // were NOT protected by the keep-one rule: at most one per site.
            let violations = kept_scores
                .iter()
                .filter(|&&v| v < max_removed - 1e-12)
                .count();
            prop_assert!(
                violations <= scores.sites.len(),
                "{violations} kept scores below the removal frontier"
            );
        }
    }

    #[test]
    fn keep_for_is_exact_complement(
        scores in arb_scores(),
        fraction in 0.05f64..0.9,
    ) {
        let sel = select_filters(&scores, &PruneStrategy::Percentage { fraction }).unwrap();
        for (si, site) in scores.sites.iter().enumerate() {
            let keep = sel.keep_for(si, site.scores.len());
            prop_assert_eq!(keep.len() + sel.remove[si].len(), site.scores.len());
            for f in &keep {
                prop_assert!(!sel.remove[si].contains(f));
            }
            // Sorted and in range.
            prop_assert!(keep.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(keep.iter().all(|&f| f < site.scores.len()));
        }
    }

    #[test]
    fn histogram_conserves_filter_count(scores in arb_scores()) {
        let h = ScoreHistogram::from_scores(&scores);
        prop_assert_eq!(h.total(), scores.total_filters());
        prop_assert!(h.low_fraction() >= 0.0 && h.low_fraction() <= 1.0);
        prop_assert!(h.polarization() <= 1.0 + 1e-12);
    }
}
