//! End-to-end observability check: a tiny pruning run with the JSONL
//! sink attached must produce a parseable event stream whose
//! `prune_iteration` records mirror the returned [`PruneOutcome`].

use cap_core::{ClassAwarePruner, PruneConfig, PruneStrategy};
use cap_data::{DatasetSpec, SyntheticDataset};
use cap_nn::layer::{BatchNorm2d, Conv2d, GlobalAvgPool, Linear, Relu};
use cap_nn::{fit, Network, TrainConfig};
use cap_obs::json::{parse, Json};
use rand::SeedableRng;

fn f64_field(e: &Json, key: &str) -> f64 {
    e.get(key)
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("missing f64 field {key}: {e:?}"))
}

fn u64_field(e: &Json, key: &str) -> u64 {
    e.get(key)
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("missing u64 field {key}: {e:?}"))
}

#[test]
fn pruning_run_emits_validated_jsonl_stream() {
    let _guard = cap_obs::test_lock();
    cap_obs::reset();
    let path = std::env::temp_dir().join(format!("cap_obs_prune_{}.jsonl", std::process::id()));
    let path_str = path.to_str().unwrap().to_string();
    cap_obs::set_sink(Box::new(
        cap_obs::sink::JsonlSink::create(&path_str).unwrap(),
    ));

    let data = SyntheticDataset::generate(
        &DatasetSpec::cifar10_like()
            .with_image_size(8)
            .with_counts(12, 4),
    )
    .unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(33);
    let mut net = Network::new();
    net.push(Conv2d::new(3, 12, 3, 1, 1, false, &mut rng).unwrap());
    net.push(BatchNorm2d::new(12).unwrap());
    net.push(Relu::new());
    net.push(GlobalAvgPool::new());
    net.push(Linear::new(12, 10, &mut rng).unwrap());
    let quick_train = TrainConfig {
        epochs: 2,
        batch_size: 20,
        lr: 0.02,
        ..TrainConfig::default()
    };
    fit(
        &mut net,
        data.train().images(),
        data.train().labels(),
        &quick_train,
    )
    .unwrap();
    // Only trace the pruning run itself, not the pre-training above.
    cap_obs::enable();
    let pruner = ClassAwarePruner::new(PruneConfig {
        strategy: PruneStrategy::Percentage { fraction: 0.2 },
        finetune: quick_train,
        max_iterations: 2,
        accuracy_drop_limit: 1.0,
        ..PruneConfig::default()
    })
    .unwrap();
    let outcome = pruner.run(&mut net, data.train(), data.test()).unwrap();

    cap_obs::flush();
    cap_obs::disable();
    cap_obs::reset();

    let content = std::fs::read_to_string(&path).unwrap();
    let events: Vec<Json> = content.lines().map(|l| parse(l).unwrap()).collect();
    let _ = std::fs::remove_file(&path);
    assert!(!events.is_empty());

    let kind = |e: &Json| {
        e.get("type")
            .and_then(|t| t.as_str())
            .unwrap_or_default()
            .to_string()
    };
    let starts: Vec<&Json> = events.iter().filter(|e| kind(e) == "prune_start").collect();
    assert_eq!(starts.len(), 1);
    assert!((f64_field(starts[0], "baseline_accuracy") - outcome.baseline_accuracy).abs() < 1e-9);
    assert_eq!(
        u64_field(starts[0], "baseline_params"),
        outcome.baseline_cost.total_params
    );

    // Fine-tuning inside each iteration emits its own epoch events.
    let epochs = events.iter().filter(|e| kind(e) == "epoch").count();
    assert_eq!(epochs, 2 * outcome.iterations.len());

    let iters: Vec<&Json> = events
        .iter()
        .filter(|e| kind(e) == "prune_iteration")
        .collect();
    assert_eq!(iters.len(), outcome.iterations.len());
    assert!(!iters.is_empty(), "pruning must make progress in this test");
    for (e, r) in iters.iter().zip(&outcome.iterations) {
        assert_eq!(u64_field(e, "iteration"), r.iteration as u64);
        assert_eq!(u64_field(e, "removed_filters"), r.removed_filters as u64);
        assert_eq!(
            u64_field(e, "remaining_filters"),
            r.remaining_filters as u64
        );
        assert_eq!(u64_field(e, "flops"), r.flops);
        assert_eq!(u64_field(e, "params"), r.params);
        assert!((f64_field(e, "mean_score") - r.mean_score).abs() < 1e-9);
        assert!((f64_field(e, "accuracy_after_prune") - r.accuracy_after_prune).abs() < 1e-9);
        assert!((f64_field(e, "accuracy_after_finetune") - r.accuracy_after_finetune).abs() < 1e-9);
        // Phase timings: present, non-negative, and the phases that do
        // real work must have measurably non-zero duration.
        for phase in ["secs_score", "secs_surgery", "secs_finetune", "secs_eval"] {
            assert!(f64_field(e, phase) >= 0.0, "{phase} negative");
        }
        assert!(f64_field(e, "secs_score") > 0.0);
        assert!(f64_field(e, "secs_finetune") > 0.0);
        assert!(r.secs_score > 0.0 && r.secs_finetune > 0.0);
    }

    let dones: Vec<&Json> = events.iter().filter(|e| kind(e) == "prune_done").collect();
    assert_eq!(dones.len(), 1);
    assert!((f64_field(dones[0], "final_accuracy") - outcome.final_accuracy).abs() < 1e-9);
    assert_eq!(
        u64_field(dones[0], "final_params"),
        outcome.final_cost.total_params
    );
    // Events arrive in causal order: start before iterations before done.
    let order: Vec<String> = events
        .iter()
        .map(kind)
        .filter(|k| k.starts_with("prune"))
        .collect();
    assert_eq!(order.first().map(String::as_str), Some("prune_start"));
    assert_eq!(order.last().map(String::as_str), Some("prune_done"));
}
