//! Reporting helpers for the paper's figures: score histograms (Fig. 4,
//! Fig. 8) and per-layer mean scores (Fig. 7).

use crate::NetworkScores;

/// A histogram of class-count importance scores with unit-width bins
/// `[0,1), [1,2), …, [classes-1, classes]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoreHistogram {
    counts: Vec<usize>,
}

impl ScoreHistogram {
    /// Builds the histogram over all sites of `scores`.
    pub fn from_scores(scores: &NetworkScores) -> Self {
        Self::from_values(scores.iter_scores().map(|(_, _, v)| v), scores.classes)
    }

    /// Builds the histogram for a single site (a single layer, as in
    /// Fig. 4). Out-of-range site indices produce an empty histogram.
    pub fn from_site(scores: &NetworkScores, site_index: usize) -> Self {
        match scores.sites.get(site_index) {
            Some(site) => Self::from_values(site.scores.iter().copied(), scores.classes),
            None => ScoreHistogram {
                counts: vec![0; scores.classes + 1],
            },
        }
    }

    /// Builds a histogram from raw values with `classes` unit bins plus a
    /// final bin for the exact maximum score.
    pub fn from_values(values: impl Iterator<Item = f64>, classes: usize) -> Self {
        let mut counts = vec![0usize; classes + 1];
        for v in values {
            let bin = (v.floor().max(0.0) as usize).min(classes);
            counts[bin] += 1;
        }
        ScoreHistogram { counts }
    }

    /// Bin counts; index `i` counts scores in `[i, i+1)` (last bin:
    /// exactly the class count).
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total number of scored filters.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Fraction of filters in bin 0 (score `< 1`), the "unimportant"
    /// mass that L1 regularisation grows (Fig. 8).
    pub fn low_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.counts[0] as f64 / t as f64
        }
    }

    /// Fraction of filters in the top bin, the "important for all
    /// classes" mass that orthogonality regularisation grows (Fig. 8).
    pub fn high_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.counts.last().map_or(0.0, |&c| c as f64 / t as f64)
        }
    }

    /// Polarisation: the combined low+high mass. The paper argues the
    /// L1 + L_orth combination maximises this (Fig. 8).
    pub fn polarization(&self) -> f64 {
        self.low_fraction() + self.high_fraction()
    }

    /// Renders an ASCII bar chart, one row per bin.
    pub fn render_ascii(&self, max_width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (bin, &count) in self.counts.iter().enumerate() {
            let bar = "#".repeat(count * max_width.max(1) / max);
            out.push_str(&format!("{bin:>4} | {bar} {count}\n"));
        }
        out
    }
}

/// Per-layer mean scores before and after pruning (Fig. 7).
///
/// Sites are matched by label; sites that disappeared (fully pruned —
/// cannot happen under the default strategies) are skipped.
pub fn layerwise_mean_scores(
    before: &NetworkScores,
    after: &NetworkScores,
) -> Vec<(String, f64, f64)> {
    before
        .sites
        .iter()
        .filter_map(|b| {
            after
                .sites
                .iter()
                .find(|a| a.label == b.label)
                .map(|a| (b.label.clone(), b.mean(), a.mean()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SiteScores;

    fn scores(values: Vec<f64>, classes: usize) -> NetworkScores {
        NetworkScores {
            sites: vec![SiteScores {
                label: "conv1".to_string(),
                scores: values,
            }],
            classes,
        }
    }

    #[test]
    fn binning_is_unit_width() {
        let s = scores(vec![0.0, 0.5, 1.0, 2.7, 10.0], 10);
        let h = ScoreHistogram::from_scores(&s);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[2], 1);
        assert_eq!(h.counts()[10], 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn polarization_fractions() {
        let s = scores(vec![0.0, 0.0, 10.0, 5.0], 10);
        let h = ScoreHistogram::from_scores(&s);
        assert!((h.low_fraction() - 0.5).abs() < 1e-12);
        assert!((h.high_fraction() - 0.25).abs() < 1e-12);
        assert!((h.polarization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ascii_render_contains_all_bins() {
        let s = scores(vec![0.0, 1.0, 1.5], 3);
        let h = ScoreHistogram::from_scores(&s);
        let text = h.render_ascii(20);
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("   0 |"));
    }

    #[test]
    fn layerwise_means_match_labels() {
        let before = NetworkScores {
            sites: vec![
                SiteScores {
                    label: "conv1".to_string(),
                    scores: vec![2.0, 4.0],
                },
                SiteScores {
                    label: "conv2".to_string(),
                    scores: vec![1.0],
                },
            ],
            classes: 10,
        };
        let after = NetworkScores {
            sites: vec![
                SiteScores {
                    label: "conv1".to_string(),
                    scores: vec![6.0],
                },
                SiteScores {
                    label: "conv2".to_string(),
                    scores: vec![3.0],
                },
            ],
            classes: 10,
        };
        let rows = layerwise_mean_scores(&before, &after);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], ("conv1".to_string(), 3.0, 6.0));
        assert_eq!(rows[1], ("conv2".to_string(), 1.0, 3.0));
    }

    #[test]
    fn site_histogram_out_of_range_is_empty() {
        let s = scores(vec![1.0], 4);
        let h = ScoreHistogram::from_site(&s, 7);
        assert_eq!(h.total(), 0);
        assert_eq!(h.low_fraction(), 0.0);
    }
}
