//! Class-aware importance scores for filters (paper Sec. III-B).
//!
//! For a filter `f` and class `n`, the score `s_{f,n} ∈ [0, 1]` is
//! computed from first-order Taylor scores of the filter's activation
//! outputs (Eq. 4): `Θ'(aᵢ, xⱼ) = |aᵢ · ∂L(xⱼ)/∂aᵢ|`, binarised at a
//! threshold `τ` (Eq. 5), averaged over `M` images of the class (Eq. 6)
//! and maximised over the filter's activation outputs (Eq. 7). The
//! *total* score of a filter is the sum of `s_{f,n}` over all classes —
//! "how many classes is this filter important for".

use crate::{PrunableSite, PruneError};
use cap_data::Dataset;
use cap_nn::{CrossEntropyLoss, Network, Reduction};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How the Taylor-score binarisation threshold `τ` (Eq. 5) is chosen.
///
/// The paper uses a fixed `τ = 1e-50`: at its training scale (full-width
/// networks trained to convergence with the modified cost), unimportant
/// activations produce *exactly zero* Taylor scores through ReLU gating,
/// so "strictly non-zero" separates them. On a smaller substrate the
/// zero structure is weaker and a threshold calibrated to the layer's
/// own score magnitude expresses the same "contributes significantly"
/// semantics (the paper's phrasing: "if the Taylor-score of an
/// activation output is near zero, this activation can be considered
/// not to contribute significantly").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TauMode {
    /// Fixed threshold on `Θ'` (the paper's setting, default `1e-50`).
    Absolute(f64),
    /// Threshold at `α ·` (mean `Θ'` over all activations of the site
    /// for the current class batch).
    SiteRelative(f64),
}

impl Default for TauMode {
    fn default() -> Self {
        TauMode::Absolute(1e-50)
    }
}

impl TauMode {
    fn validate(&self) -> Result<(), PruneError> {
        let v = match *self {
            TauMode::Absolute(v) | TauMode::SiteRelative(v) => v,
        };
        if !(v.is_finite() && v >= 0.0) {
            return Err(PruneError::InvalidConfig {
                reason: format!("tau parameter {v} must be finite and non-negative"),
            });
        }
        Ok(())
    }
}

/// Configuration of the importance-score evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreConfig {
    /// Number of images per class (`M`; paper uses 10 and verifies more
    /// images do not change the scores).
    pub images_per_class: usize,
    /// Taylor-score binarisation threshold `τ`.
    pub tau: TauMode,
    /// Seed for the per-class image selection.
    pub seed: u64,
}

impl Default for ScoreConfig {
    fn default() -> Self {
        ScoreConfig {
            images_per_class: 10,
            tau: TauMode::default(),
            seed: 0x5C0E,
        }
    }
}

impl ScoreConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::InvalidConfig`] for a zero image count or a
    /// non-finite / negative `τ` parameter.
    pub fn validate(&self) -> Result<(), PruneError> {
        if self.images_per_class == 0 {
            return Err(PruneError::InvalidConfig {
                reason: "images_per_class must be non-zero".to_string(),
            });
        }
        self.tau.validate()
    }
}

/// Scores of the filters at one prunable site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteScores {
    /// The site's label (mirrors [`PrunableSite::label`]).
    pub label: String,
    /// Class-count score per filter, each in `[0, classes]`.
    pub scores: Vec<f64>,
}

impl SiteScores {
    /// Mean score across the site's filters (0 for an empty site).
    pub fn mean(&self) -> f64 {
        if self.scores.is_empty() {
            return 0.0;
        }
        self.scores.iter().sum::<f64>() / self.scores.len() as f64
    }
}

/// Scores for every prunable site of a network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkScores {
    /// Per-site scores, aligned with the site list used for evaluation.
    pub sites: Vec<SiteScores>,
    /// Number of classes the scores were evaluated against.
    pub classes: usize,
}

impl NetworkScores {
    /// Total number of scored filters.
    pub fn total_filters(&self) -> usize {
        self.sites.iter().map(|s| s.scores.len()).sum()
    }

    /// Iterates over `(site_index, filter_index, score)` triples.
    pub fn iter_scores(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.sites
            .iter()
            .enumerate()
            .flat_map(|(si, s)| s.scores.iter().enumerate().map(move |(fi, &v)| (si, fi, v)))
    }

    /// Mean score over all filters (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.total_filters();
        if n == 0 {
            return 0.0;
        }
        self.iter_scores().map(|(_, _, v)| v).sum::<f64>() / n as f64
    }
}

/// The per-class score breakdown of one site: `per_class[f][n]` is
/// `s_{f,n}` (Eq. 7) for filter `f` and class `n` — the matrix the
/// summed [`SiteScores`] collapse, kept so "which classes made this
/// filter important (or not)" stays answerable after pruning.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteAttribution {
    /// The site's label (mirrors [`PrunableSite::label`]).
    pub label: String,
    /// `s_{f,n}` per `[filter][class]`, each in `[0, 1]`.
    pub per_class: Vec<Vec<f64>>,
}

/// Per-class attribution for every scored site.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassAttribution {
    /// Per-site matrices, aligned with [`NetworkScores::sites`].
    pub sites: Vec<SiteAttribution>,
    /// Number of classes (the inner dimension).
    pub classes: usize,
}

impl ClassAttribution {
    /// The class with the largest `s_{f,n}` for `filter` at `site`
    /// (ties break to the lowest class index; `None` out of range or
    /// when every class scores zero).
    pub fn top_class(&self, site: usize, filter: usize) -> Option<usize> {
        let row = self.sites.get(site)?.per_class.get(filter)?;
        let (mut best_class, mut best) = (None, 0.0f64);
        for (n, &v) in row.iter().enumerate() {
            if v > best {
                best = v;
                best_class = Some(n);
            }
        }
        best_class
    }
}

/// Evaluates class-aware importance scores for the given sites.
///
/// The network is treated as frozen: forward passes run in eval mode and
/// parameter gradients accumulated during the backward sweeps are cleared
/// afterwards. One forward/backward pair per class scores every
/// activation output of every site at once (the paper's single-backward
/// Taylor approximation).
///
/// # Errors
///
/// Propagates dataset sampling errors, network shape errors and
/// configuration errors.
pub fn evaluate_scores(
    net: &mut Network,
    sites: &[PrunableSite],
    data: &Dataset,
    cfg: &ScoreConfig,
) -> Result<NetworkScores, PruneError> {
    Ok(evaluate_scores_with_attribution(net, sites, data, cfg)?.0)
}

/// [`evaluate_scores`] keeping the per-class breakdown alongside the
/// summed totals. `scores.sites[i].scores[f]` is exactly the sum of
/// `attribution.sites[i].per_class[f]` in class order (same additions,
/// same order — bit-identical to [`evaluate_scores`] at any thread
/// count).
///
/// # Errors
///
/// Propagates dataset sampling errors, network shape errors and
/// configuration errors.
pub fn evaluate_scores_with_attribution(
    net: &mut Network,
    sites: &[PrunableSite],
    data: &Dataset,
    cfg: &ScoreConfig,
) -> Result<(NetworkScores, ClassAttribution), PruneError> {
    // Profiler scope: class-aware Taylor scoring is the candidate
    // dominant cost (see ROADMAP's coarse-to-fine direction), so it
    // gets its own frame in sampled flamegraphs.
    let _span = cap_obs::span!("core.score");
    cfg.validate()?;
    let classes = data.classes();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let loss_fn = CrossEntropyLoss::new(Reduction::Sum);

    let mut per_site: Vec<SiteScores> = sites
        .iter()
        .map(|s| {
            Ok(SiteScores {
                label: s.label.clone(),
                scores: vec![0.0; s.filters(net)?],
            })
        })
        .collect::<Result<_, PruneError>>()?;
    let mut per_site_attr: Vec<SiteAttribution> = per_site
        .iter()
        .map(|s| SiteAttribution {
            label: s.label.clone(),
            per_class: vec![vec![0.0; classes]; s.scores.len()],
        })
        .collect();

    net.set_record_activations(true);
    let result = (|| -> Result<(), PruneError> {
        for class in 0..classes {
            let batch = data.sample_class_batch(class, cfg.images_per_class, &mut rng)?;
            let m = batch.dim(0);
            let labels = vec![class; m];
            let logits = net.forward(&batch, false)?;
            let out = loss_fn.forward(&logits, &labels)?;
            net.zero_grad();
            net.backward(&out.grad)?;
            for ((site, acc), attr) in sites
                .iter()
                .zip(per_site.iter_mut())
                .zip(per_site_attr.iter_mut())
            {
                let conv = site.conv(net)?;
                let a = conv
                    .recorded_output()
                    .ok_or_else(|| PruneError::UnsupportedTopology {
                        reason: format!("site {} did not record activations", site.label),
                    })?;
                let g =
                    conv.recorded_output_grad()
                        .ok_or_else(|| PruneError::UnsupportedTopology {
                            reason: format!("site {} did not record gradients", site.label),
                        })?;
                let contrib =
                    site_class_contributions(acc.scores.len(), a.data(), g.data(), m, cfg.tau);
                // The same addition, in the same order, as the old
                // in-place accumulation — bit-identical totals.
                for ((score, row), &c) in acc
                    .scores
                    .iter_mut()
                    .zip(attr.per_class.iter_mut())
                    .zip(contrib.iter())
                {
                    *score += c;
                    row[class] = c;
                }
            }
        }
        Ok(())
    })();
    net.set_record_activations(false);
    net.zero_grad();
    result?;

    Ok((
        NetworkScores {
            sites: per_site,
            classes,
        },
        ClassAttribution {
            sites: per_site_attr,
            classes,
        },
    ))
}

/// Computes `s_{f,n}` (Eq. 5–7) for one class and every filter of a
/// site, given flat NCHW activation and gradient buffers for `m`
/// samples. Returns one value per filter.
fn site_class_contributions(
    filters: usize,
    activations: &[f32],
    grads: &[f32],
    m: usize,
    tau_mode: TauMode,
) -> Vec<f64> {
    let mut contrib = vec![0.0f64; filters];
    if filters == 0 || m == 0 {
        return contrib;
    }
    let tau = match tau_mode {
        TauMode::Absolute(v) => v,
        TauMode::SiteRelative(alpha) => {
            let mut sum = 0.0f64;
            for (a, g) in activations.iter().zip(grads.iter()) {
                sum += f64::from((a * g).abs());
            }
            alpha * sum / activations.len().max(1) as f64
        }
    };
    let plane = activations.len() / (m * filters);
    // Filters are independent: each task owns a contiguous run of score
    // slots and runs the unchanged per-filter loop, so the result is
    // bit-identical for any thread count. (The class loop above stays
    // serial to preserve the rng sampling sequence exactly.)
    let chunk = filters.div_ceil(cap_par::effective_parallelism());
    cap_par::parallel_chunks_mut(&mut contrib, chunk, |ci, slots| {
        for (j, slot) in slots.iter_mut().enumerate() {
            let f = ci * chunk + j;
            // s_ave over positions; track the max on the fly (Eq. 6-7).
            let mut best = 0.0f64;
            for pos in 0..plane {
                let mut hits = 0usize;
                for sample in 0..m {
                    let idx = (sample * filters + f) * plane + pos;
                    let theta = f64::from((activations[idx] * grads[idx]).abs());
                    if theta > tau {
                        hits += 1;
                    }
                }
                let s_ave = hits as f64 / m as f64;
                if s_ave > best {
                    best = s_ave;
                    if best >= 1.0 {
                        break;
                    }
                }
            }
            *slot = best;
        }
    });
    contrib
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find_prunable_sites;
    use cap_data::{DatasetSpec, SyntheticDataset};
    use cap_nn::layer::{BatchNorm2d, Conv2d, GlobalAvgPool, Linear, Relu};

    fn tiny_data() -> SyntheticDataset {
        SyntheticDataset::generate(
            &DatasetSpec::cifar10_like()
                .with_image_size(8)
                .with_counts(12, 4),
        )
        .unwrap()
    }

    fn tiny_net(rng: &mut StdRng) -> Network {
        let mut net = Network::new();
        net.push(Conv2d::new(3, 8, 3, 1, 1, false, rng).unwrap());
        net.push(BatchNorm2d::new(8).unwrap());
        net.push(Relu::new());
        net.push(Conv2d::new(8, 8, 3, 1, 1, false, rng).unwrap());
        net.push(GlobalAvgPool::new());
        net.push(Linear::new(8, 10, rng).unwrap());
        net
    }

    #[test]
    fn scores_are_bounded_by_class_count() {
        let data = tiny_data();
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = tiny_net(&mut rng);
        let sites = find_prunable_sites(&net);
        let scores =
            evaluate_scores(&mut net, &sites, data.train(), &ScoreConfig::default()).unwrap();
        assert_eq!(scores.classes, 10);
        assert_eq!(scores.total_filters(), 16);
        for (_, _, v) in scores.iter_scores() {
            assert!((0.0..=10.0).contains(&v), "score {v} out of range");
        }
    }

    #[test]
    fn zeroed_filter_scores_zero() {
        let data = tiny_data();
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = tiny_net(&mut rng);
        // Kill filter 3 of conv1: its activations are identically zero, so
        // every Taylor score is zero and the class count must be 0.
        if let Some(c) = net.layers_mut()[0].as_conv_mut() {
            let fsize = 3 * 9;
            for v in &mut c.weight_mut().data_mut()[3 * fsize..4 * fsize] {
                *v = 0.0;
            }
        }
        let sites = find_prunable_sites(&net);
        let scores =
            evaluate_scores(&mut net, &sites, data.train(), &ScoreConfig::default()).unwrap();
        assert_eq!(scores.sites[0].scores[3], 0.0);
        // A live filter should score above zero.
        assert!(scores.sites[0].scores.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn scores_are_deterministic_in_seed() {
        let data = tiny_data();
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = tiny_net(&mut rng);
        let sites = find_prunable_sites(&net);
        let a = evaluate_scores(&mut net, &sites, data.train(), &ScoreConfig::default()).unwrap();
        let b = evaluate_scores(&mut net, &sites, data.train(), &ScoreConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn scores_bit_identical_across_thread_counts() {
        let data = tiny_data();
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = tiny_net(&mut rng);
        let sites = find_prunable_sites(&net);
        let prior = cap_par::threads();
        cap_par::set_threads(1);
        let serial =
            evaluate_scores(&mut net, &sites, data.train(), &ScoreConfig::default()).unwrap();
        cap_par::set_threads(4);
        let parallel =
            evaluate_scores(&mut net, &sites, data.train(), &ScoreConfig::default()).unwrap();
        cap_par::set_threads(prior);
        assert_eq!(serial.total_filters(), parallel.total_filters());
        for ((_, _, a), (_, _, b)) in serial.iter_scores().zip(parallel.iter_scores()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn attribution_rows_sum_to_totals_bit_exactly() {
        let data = tiny_data();
        let mut rng = StdRng::seed_from_u64(6);
        let mut net = tiny_net(&mut rng);
        let sites = find_prunable_sites(&net);
        let (scores, attr) = evaluate_scores_with_attribution(
            &mut net,
            &sites,
            data.train(),
            &ScoreConfig::default(),
        )
        .unwrap();
        assert_eq!(attr.classes, scores.classes);
        assert_eq!(attr.sites.len(), scores.sites.len());
        for (site, asite) in scores.sites.iter().zip(attr.sites.iter()) {
            assert_eq!(site.label, asite.label);
            for (f, &total) in site.scores.iter().enumerate() {
                // Fold in class order: the exact additions the totals ran.
                let mut sum = 0.0f64;
                for &c in &asite.per_class[f] {
                    assert!((0.0..=1.0).contains(&c), "s_f,n {c} out of range");
                    sum += c;
                }
                assert_eq!(sum.to_bits(), total.to_bits(), "{sum} vs {total}");
            }
        }
    }

    #[test]
    fn attribution_matches_plain_scores_and_threads() {
        let data = tiny_data();
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = tiny_net(&mut rng);
        let sites = find_prunable_sites(&net);
        let plain =
            evaluate_scores(&mut net, &sites, data.train(), &ScoreConfig::default()).unwrap();
        let prior = cap_par::threads();
        cap_par::set_threads(1);
        let (with1, attr1) = evaluate_scores_with_attribution(
            &mut net,
            &sites,
            data.train(),
            &ScoreConfig::default(),
        )
        .unwrap();
        cap_par::set_threads(4);
        let (with4, attr4) = evaluate_scores_with_attribution(
            &mut net,
            &sites,
            data.train(),
            &ScoreConfig::default(),
        )
        .unwrap();
        cap_par::set_threads(prior);
        assert_eq!(plain, with1);
        assert_eq!(with1, with4);
        assert_eq!(attr1, attr4);
        // top_class is in range and consistent with the matrix argmax.
        if let Some(top) = attr1.top_class(0, 0) {
            assert!(top < attr1.classes);
            let row = &attr1.sites[0].per_class[0];
            assert!(row.iter().all(|&v| v <= row[top]));
        }
        assert_eq!(attr1.top_class(99, 0), None);
    }

    #[test]
    fn scores_stable_in_m() {
        // The paper: "by evaluating more than 10 images the importance
        // scores of filters are almost the same". With this data, M=8 vs
        // M=12 must correlate strongly.
        let data = tiny_data();
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = tiny_net(&mut rng);
        let sites = find_prunable_sites(&net);
        let small = evaluate_scores(
            &mut net,
            &sites,
            data.train(),
            &ScoreConfig {
                images_per_class: 8,
                ..ScoreConfig::default()
            },
        )
        .unwrap();
        let large = evaluate_scores(
            &mut net,
            &sites,
            data.train(),
            &ScoreConfig {
                images_per_class: 12,
                ..ScoreConfig::default()
            },
        )
        .unwrap();
        let mut dev = 0.0f64;
        for ((_, _, a), (_, _, b)) in small.iter_scores().zip(large.iter_scores()) {
            dev = dev.max((a - b).abs());
        }
        assert!(dev <= 2.0, "max deviation {dev} too large");
    }

    #[test]
    fn huge_tau_zeroes_everything() {
        let data = tiny_data();
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = tiny_net(&mut rng);
        let sites = find_prunable_sites(&net);
        let scores = evaluate_scores(
            &mut net,
            &sites,
            data.train(),
            &ScoreConfig {
                tau: TauMode::Absolute(1e30),
                ..ScoreConfig::default()
            },
        )
        .unwrap();
        assert!(scores.iter_scores().all(|(_, _, v)| v == 0.0));
    }

    #[test]
    fn config_validation() {
        assert!(ScoreConfig {
            images_per_class: 0,
            ..ScoreConfig::default()
        }
        .validate()
        .is_err());
        assert!(ScoreConfig {
            tau: TauMode::Absolute(f64::NAN),
            ..ScoreConfig::default()
        }
        .validate()
        .is_err());
        assert!(ScoreConfig::default().validate().is_ok());
    }
}
