//! FLOPs and parameter accounting, used for the "Prun. ratio" and
//! "FLOPs red." columns of the paper's tables.
//!
//! One multiply-accumulate counts as two FLOPs, the paper's convention
//! ("4.1 billion MAC operations and thus 8.2 billion FLOPs").

use crate::PruneError;
use cap_nn::layer::Layer;
use cap_nn::Network;
use cap_tensor::conv_output_size;

/// Cost of one layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerCost {
    /// Layer kind plus position label.
    pub label: String,
    /// Floating-point operations for one input sample.
    pub flops: u64,
    /// Learnable parameter count.
    pub params: u64,
}

/// Cost report for a whole network at a given input size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlopsReport {
    /// Per-layer breakdown in execution order.
    pub layers: Vec<LayerCost>,
    /// Total FLOPs per sample.
    pub total_flops: u64,
    /// Total parameters.
    pub total_params: u64,
}

impl FlopsReport {
    /// Relative FLOPs reduction of `self` w.r.t. `baseline`
    /// (`1 − flops/baseline`), clamped at 0 for larger models.
    pub fn flops_reduction_vs(&self, baseline: &FlopsReport) -> f64 {
        if baseline.total_flops == 0 {
            return 0.0;
        }
        (1.0 - self.total_flops as f64 / baseline.total_flops as f64).max(0.0)
    }

    /// Relative parameter reduction (the tables' pruning ratio).
    pub fn param_reduction_vs(&self, baseline: &FlopsReport) -> f64 {
        if baseline.total_params == 0 {
            return 0.0;
        }
        (1.0 - self.total_params as f64 / baseline.total_params as f64).max(0.0)
    }
}

/// Analyses `net` for a single sample of shape `[channels, height, width]`.
///
/// # Errors
///
/// Returns [`PruneError::UnsupportedTopology`] if shapes stop propagating
/// (e.g. a channel mismatch mid-network) and geometry errors from pooling
/// or convolution.
pub fn analyze_network(
    net: &Network,
    in_channels: usize,
    height: usize,
    width: usize,
) -> Result<FlopsReport, PruneError> {
    let mut layers = Vec::new();
    let mut c = in_channels;
    let mut h = height;
    let mut w = width;
    let mut flat: Option<usize> = None; // feature count once spatial collapsed
    for (i, layer) in net.layers().iter().enumerate() {
        let label = format!("{}{}", layer.kind(), i);
        match layer {
            Layer::Conv(conv) => {
                if conv.in_channels() != c {
                    return Err(PruneError::UnsupportedTopology {
                        reason: format!(
                            "conv at layer {i} expects {} channels, stream has {c}",
                            conv.in_channels()
                        ),
                    });
                }
                let oh = conv_output_size(h, conv.kernel(), conv.stride(), conv.padding())?;
                let ow = conv_output_size(w, conv.kernel(), conv.stride(), conv.padding())?;
                let macs = (conv.out_channels()
                    * oh
                    * ow
                    * conv.in_channels()
                    * conv.kernel()
                    * conv.kernel()) as u64;
                layers.push(LayerCost {
                    label,
                    flops: 2 * macs,
                    params: conv.num_params() as u64,
                });
                c = conv.out_channels();
                h = oh;
                w = ow;
            }
            Layer::BatchNorm(bn) => {
                layers.push(LayerCost {
                    label,
                    flops: (2 * c * h * w) as u64,
                    params: bn.num_params() as u64,
                });
            }
            Layer::Relu(_) => {
                layers.push(LayerCost {
                    label,
                    flops: flat.unwrap_or(c * h * w) as u64,
                    params: 0,
                });
            }
            Layer::MaxPool(_) => {
                // Geometry is not stored on the layer; infer from a 2x2/2
                // pool, the only configuration the models use.
                let oh = conv_output_size(h, 2, 2, 0)?;
                let ow = conv_output_size(w, 2, 2, 0)?;
                layers.push(LayerCost {
                    label,
                    flops: (c * oh * ow * 4) as u64,
                    params: 0,
                });
                h = oh;
                w = ow;
            }
            Layer::GlobalAvgPool(_) => {
                layers.push(LayerCost {
                    label,
                    flops: (c * h * w) as u64,
                    params: 0,
                });
                flat = Some(c);
            }
            Layer::Flatten(_) => {
                layers.push(LayerCost {
                    label,
                    flops: 0,
                    params: 0,
                });
                flat = Some(c * h * w);
            }
            Layer::Linear(lin) => {
                let in_f = flat.unwrap_or(c * h * w);
                if lin.in_features() != in_f {
                    return Err(PruneError::UnsupportedTopology {
                        reason: format!(
                            "linear at layer {i} expects {} features, stream has {in_f}",
                            lin.in_features()
                        ),
                    });
                }
                layers.push(LayerCost {
                    label,
                    flops: 2 * (lin.in_features() * lin.out_features()) as u64,
                    params: lin.num_params() as u64,
                });
                flat = Some(lin.out_features());
            }
            Layer::Residual(block) => {
                let mut flops = 0u64;
                // conv1 (may be strided).
                let c1 = block.conv1();
                let oh = conv_output_size(h, c1.kernel(), c1.stride(), c1.padding())?;
                let ow = conv_output_size(w, c1.kernel(), c1.stride(), c1.padding())?;
                flops += 2
                    * (c1.out_channels() * oh * ow * c1.in_channels() * c1.kernel() * c1.kernel())
                        as u64;
                // bn1 + relu on conv1 output.
                flops += (3 * c1.out_channels() * oh * ow) as u64;
                // conv2 (stride 1, same spatial).
                let c2 = block.conv2();
                flops += 2
                    * (c2.out_channels() * oh * ow * c2.in_channels() * c2.kernel() * c2.kernel())
                        as u64;
                flops += (2 * c2.out_channels() * oh * ow) as u64; // bn2
                                                                   // Shortcut: projection conv is in the params count below;
                                                                   // its FLOPs are 1x1 conv.
                let mut params = block.num_params() as u64;
                let _ = &mut params;
                let mut shortcut_flops = 0u64;
                block.visit_convs(&mut |cv| {
                    // Count only the 1x1 projection here (kernel == 1).
                    if cv.kernel() == 1 {
                        shortcut_flops = 2
                            * (cv.out_channels() * oh * ow * cv.in_channels()) as u64
                            + (2 * cv.out_channels() * oh * ow) as u64;
                    }
                });
                flops += shortcut_flops;
                // Addition + final relu.
                flops += (2 * block.out_channels() * oh * ow) as u64;
                layers.push(LayerCost {
                    label,
                    flops,
                    params,
                });
                c = block.out_channels();
                h = oh;
                w = ow;
            }
        }
    }
    let total_flops = layers.iter().map(|l| l.flops).sum();
    let total_params = layers.iter().map(|l| l.params).sum();
    Ok(FlopsReport {
        layers,
        total_flops,
        total_params,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_nn::layer::{
        BatchNorm2d, Conv2d, GlobalAvgPool, Linear, MaxPool2d, Relu, ResidualBlock,
    };
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0)
    }

    #[test]
    fn conv_flops_formula() {
        let mut net = Network::new();
        net.push(Conv2d::new(3, 8, 3, 1, 1, false, &mut rng()).unwrap());
        let r = analyze_network(&net, 3, 16, 16).unwrap();
        // 2 * 8*16*16*3*3*3
        assert_eq!(r.total_flops, 2 * 8 * 16 * 16 * 3 * 9);
        assert_eq!(r.total_params, 8 * 3 * 9);
    }

    #[test]
    fn params_match_network_count() {
        let mut net = Network::new();
        net.push(Conv2d::new(3, 4, 3, 1, 1, false, &mut rng()).unwrap());
        net.push(BatchNorm2d::new(4).unwrap());
        net.push(Relu::new());
        net.push(MaxPool2d::new(2, 2).unwrap());
        net.push(ResidualBlock::new(4, 8, 2, &mut rng()).unwrap());
        net.push(GlobalAvgPool::new());
        net.push(Linear::new(8, 10, &mut rng()).unwrap());
        let r = analyze_network(&net, 3, 16, 16).unwrap();
        assert_eq!(r.total_params as usize, net.num_params());
    }

    #[test]
    fn pruning_reduces_both_metrics() {
        let mut rng = rng();
        let mut net = Network::new();
        net.push(Conv2d::new(3, 8, 3, 1, 1, false, &mut rng).unwrap());
        net.push(BatchNorm2d::new(8).unwrap());
        net.push(Relu::new());
        net.push(Conv2d::new(8, 8, 3, 1, 1, false, &mut rng).unwrap());
        net.push(GlobalAvgPool::new());
        net.push(Linear::new(8, 4, &mut rng).unwrap());
        let before = analyze_network(&net, 3, 8, 8).unwrap();
        let sites = crate::find_prunable_sites(&net);
        crate::apply_site_pruning(&mut net, &sites[0], &[0, 1]).unwrap();
        let after = analyze_network(&net, 3, 8, 8).unwrap();
        assert!(after.total_flops < before.total_flops);
        assert!(after.total_params < before.total_params);
        assert!(after.flops_reduction_vs(&before) > 0.5);
        assert!(after.param_reduction_vs(&before) > 0.0);
        // Baseline reduction vs itself is zero.
        assert_eq!(before.flops_reduction_vs(&before), 0.0);
    }

    #[test]
    fn channel_mismatch_detected() {
        let mut net = Network::new();
        net.push(Conv2d::new(3, 8, 3, 1, 1, false, &mut rng()).unwrap());
        let r = analyze_network(&net, 4, 8, 8);
        assert!(matches!(r, Err(PruneError::UnsupportedTopology { .. })));
    }
}
