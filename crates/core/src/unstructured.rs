//! Unstructured (individual-weight) magnitude pruning.
//!
//! The paper's Background section contrasts structured filter pruning
//! with unstructured pruning (Han et al., the paper's \[9\]): removing
//! individual weights reaches higher sparsity but produces irregular
//! matrices that dense hardware cannot exploit — zero weights still
//! occupy MACs on a systolic array. This module implements the
//! unstructured baseline so that contrast is measurable: it reports both
//! the *sparsity* achieved and the *dense* FLOPs, which do not shrink.

use crate::PruneError;
use cap_nn::layer::Layer;
use cap_nn::Network;

/// Sparsity statistics of a network's weight tensors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsityReport {
    /// Total weight entries considered (convolution + linear weights).
    pub total_weights: usize,
    /// Entries that are exactly zero.
    pub zero_weights: usize,
}

impl SparsityReport {
    /// Fraction of zero entries.
    pub fn sparsity(&self) -> f64 {
        if self.total_weights == 0 {
            0.0
        } else {
            self.zero_weights as f64 / self.total_weights as f64
        }
    }
}

/// Measures the current sparsity of all convolution and linear weights.
pub fn sparsity(net: &Network) -> SparsityReport {
    let mut total = 0usize;
    let mut zeros = 0usize;
    net.visit_convs(&mut |c| {
        total += c.weight().numel();
        zeros += c.weight().data().iter().filter(|&&v| v == 0.0).count();
    });
    for layer in net.layers() {
        if let Layer::Linear(l) = layer {
            total += l.weight().numel();
            zeros += l.weight().data().iter().filter(|&&v| v == 0.0).count();
        }
    }
    SparsityReport {
        total_weights: total,
        zero_weights: zeros,
    }
}

/// Zeroes the `fraction` smallest-magnitude weights across every
/// convolution and linear layer (global magnitude pruning). Returns the
/// resulting sparsity.
///
/// Unlike the structured surgery in [`crate::apply_site_pruning`], this
/// does **not** change tensor shapes, parameter counts or dense FLOPs —
/// which is precisely the hardware-efficiency argument the paper makes
/// for filter-wise pruning.
///
/// # Errors
///
/// Returns [`PruneError::InvalidConfig`] if `fraction` is outside
/// `[0, 1)`.
pub fn prune_weights_by_magnitude(
    net: &mut Network,
    fraction: f64,
) -> Result<SparsityReport, PruneError> {
    if !(0.0..1.0).contains(&fraction) || !fraction.is_finite() {
        return Err(PruneError::InvalidConfig {
            reason: format!("fraction {fraction} must lie in [0, 1)"),
        });
    }
    // Collect all magnitudes to find the global cut-off.
    let mut mags: Vec<f32> = Vec::new();
    net.visit_convs(&mut |c| mags.extend(c.weight().data().iter().map(|v| v.abs())));
    for layer in net.layers() {
        if let Layer::Linear(l) = layer {
            mags.extend(l.weight().data().iter().map(|v| v.abs()));
        }
    }
    if mags.is_empty() {
        return Ok(SparsityReport {
            total_weights: 0,
            zero_weights: 0,
        });
    }
    let k = ((mags.len() as f64) * fraction).floor() as usize;
    let threshold = if k == 0 {
        0.0
    } else {
        let (_, nth, _) = mags.select_nth_unstable_by(k - 1, f32::total_cmp);
        *nth
    };
    let clip = |w: &mut cap_tensor::Tensor| {
        for v in w.data_mut() {
            if v.abs() <= threshold {
                *v = 0.0;
            }
        }
    };
    if k > 0 {
        net.visit_convs_mut(&mut |c| clip(c.weight_mut()));
        for layer in net.layers_mut() {
            if let Layer::Linear(l) = layer {
                clip(l.weight_mut());
            }
        }
    }
    Ok(sparsity(net))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_nn::layer::{Conv2d, GlobalAvgPool, Linear, Relu};
    use rand::SeedableRng;

    fn net() -> Network {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let mut net = Network::new();
        net.push(Conv2d::new(2, 4, 3, 1, 1, false, &mut rng).unwrap());
        net.push(Relu::new());
        net.push(GlobalAvgPool::new());
        net.push(Linear::new(4, 3, &mut rng).unwrap());
        net
    }

    #[test]
    fn fresh_network_is_dense() {
        let r = sparsity(&net());
        assert_eq!(r.zero_weights, 0);
        assert_eq!(r.total_weights, 4 * 2 * 9 + 3 * 4);
        assert_eq!(r.sparsity(), 0.0);
    }

    #[test]
    fn pruning_hits_requested_sparsity() {
        let mut n = net();
        let r = prune_weights_by_magnitude(&mut n, 0.5).unwrap();
        let expected = (r.total_weights as f64 * 0.5).floor();
        assert!(
            (r.zero_weights as f64 - expected).abs() <= 2.0,
            "{} zeros vs expected ~{expected}",
            r.zero_weights
        );
    }

    #[test]
    fn pruned_weights_are_the_smallest() {
        let mut n = net();
        let before: Vec<f32> = n.layers()[0].as_conv().unwrap().weight().data().to_vec();
        prune_weights_by_magnitude(&mut n, 0.3).unwrap();
        let after = n.layers()[0].as_conv().unwrap().weight().data().to_vec();
        // Every surviving weight must be at least as large in magnitude as
        // every killed weight.
        let max_killed = before
            .iter()
            .zip(&after)
            .filter(|(_, &a)| a == 0.0)
            .map(|(&b, _)| b.abs())
            .fold(0.0f32, f32::max);
        let min_kept = after
            .iter()
            .filter(|&&a| a != 0.0)
            .map(|a| a.abs())
            .fold(f32::INFINITY, f32::min);
        assert!(max_killed <= min_kept + 1e-9);
    }

    #[test]
    fn shapes_and_flops_unchanged() {
        let mut n = net();
        let before = crate::analyze_network(&n, 2, 6, 6).unwrap();
        prune_weights_by_magnitude(&mut n, 0.7).unwrap();
        let after = crate::analyze_network(&n, 2, 6, 6).unwrap();
        // The hardware-relevant cost metrics do not move: that is the
        // paper's argument for structured pruning.
        assert_eq!(before.total_flops, after.total_flops);
        assert_eq!(before.total_params, after.total_params);
    }

    #[test]
    fn zero_fraction_is_identity() {
        let mut n = net();
        let w_before: Vec<f32> = n.layers()[0].as_conv().unwrap().weight().data().to_vec();
        prune_weights_by_magnitude(&mut n, 0.0).unwrap();
        assert_eq!(
            n.layers()[0].as_conv().unwrap().weight().data(),
            &w_before[..]
        );
    }

    #[test]
    fn invalid_fraction_rejected() {
        let mut n = net();
        assert!(prune_weights_by_magnitude(&mut n, 1.0).is_err());
        assert!(prune_weights_by_magnitude(&mut n, -0.1).is_err());
        assert!(prune_weights_by_magnitude(&mut n, f64::NAN).is_err());
    }
}
