//! The overall class-aware pruning framework (paper Fig. 5): score →
//! prune → fine-tune → repeat, until no filter is prunable or accuracy
//! cannot be recovered.

use crate::{
    analyze_network, apply_site_pruning, evaluate_scores, find_prunable_sites, select_filters,
    FlopsReport, NetworkScores, PruneError, PruneStrategy, ScoreConfig,
};
use cap_data::Dataset;
use cap_nn::{evaluate, fit, Network, TrainConfig};

/// Configuration of the iterative pruning framework.
#[derive(Debug, Clone)]
pub struct PruneConfig {
    /// Importance-score evaluation settings (Eq. 3–7).
    pub score: ScoreConfig,
    /// Filter-selection strategy (Sec. III-C).
    pub strategy: PruneStrategy,
    /// Fine-tuning (retraining with the modified cost) after each
    /// pruning iteration.
    pub finetune: TrainConfig,
    /// Upper bound on pruning iterations (safety net; the paper iterates
    /// until convergence).
    pub max_iterations: usize,
    /// Maximum tolerated accuracy drop relative to the baseline; if
    /// fine-tuning cannot recover to within this bound the framework
    /// rolls back the iteration and stops.
    pub accuracy_drop_limit: f64,
    /// Batch size used for accuracy evaluation.
    pub eval_batch: usize,
}

impl Default for PruneConfig {
    fn default() -> Self {
        PruneConfig {
            score: ScoreConfig::default(),
            strategy: PruneStrategy::paper_combined(10),
            finetune: TrainConfig {
                epochs: 4,
                ..TrainConfig::default()
            },
            max_iterations: 30,
            accuracy_drop_limit: 0.02,
            eval_batch: 64,
        }
    }
}

/// Why the pruning loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No filter fell below the pruning criterion — the paper's
    /// convergence condition ("the remaining filters are very important
    /// for many classes").
    NoPrunableFilters,
    /// Fine-tuning could not recover accuracy within the configured
    /// bound; the last iteration was rolled back.
    AccuracyUnrecoverable,
    /// The iteration cap was reached.
    MaxIterations,
}

/// Statistics of one pruning iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Filters removed this iteration.
    pub removed_filters: usize,
    /// Filters remaining across all prunable sites afterwards.
    pub remaining_filters: usize,
    /// Test accuracy directly after surgery, before fine-tuning.
    pub accuracy_after_prune: f64,
    /// Test accuracy after fine-tuning.
    pub accuracy_after_finetune: f64,
    /// Mean class-count score of the filters scored this iteration.
    pub mean_score: f64,
    /// FLOPs per sample after this iteration.
    pub flops: u64,
    /// Parameters after this iteration.
    pub params: u64,
    /// Wall-clock seconds spent scoring filters (Eq. 3–7).
    pub secs_score: f64,
    /// Wall-clock seconds spent on filter surgery.
    pub secs_surgery: f64,
    /// Wall-clock seconds spent fine-tuning.
    pub secs_finetune: f64,
    /// Wall-clock seconds spent in accuracy evaluations.
    pub secs_eval: f64,
}

/// The result of a full pruning run.
#[derive(Debug, Clone)]
pub struct PruneOutcome {
    /// Test accuracy of the unpruned network.
    pub baseline_accuracy: f64,
    /// Test accuracy of the final (pruned, fine-tuned) network.
    pub final_accuracy: f64,
    /// Cost report of the unpruned network.
    pub baseline_cost: FlopsReport,
    /// Cost report of the final network.
    pub final_cost: FlopsReport,
    /// Importance scores of the unpruned network (Fig. 4/7 "before").
    pub scores_before: NetworkScores,
    /// Importance scores of the final network (Fig. 4/7 "after").
    pub scores_after: NetworkScores,
    /// Per-iteration records.
    pub iterations: Vec<IterationRecord>,
    /// Why the loop stopped.
    pub stop_reason: StopReason,
}

impl PruneOutcome {
    /// The tables' pruning ratio: relative parameter reduction.
    pub fn pruning_ratio(&self) -> f64 {
        self.final_cost.param_reduction_vs(&self.baseline_cost)
    }

    /// The tables' FLOPs reduction.
    pub fn flops_reduction(&self) -> f64 {
        self.final_cost.flops_reduction_vs(&self.baseline_cost)
    }

    /// Accuracy drop (positive when the pruned model is worse).
    pub fn accuracy_drop(&self) -> f64 {
        self.baseline_accuracy - self.final_accuracy
    }

    /// Renders the iteration trajectory as CSV (header + one row per
    /// iteration), for downstream plotting.
    ///
    /// # Example
    ///
    /// ```
    /// # use cap_core::{PruneOutcome, StopReason, NetworkScores, FlopsReport};
    /// # fn show(outcome: &PruneOutcome) {
    /// let csv = outcome.iterations_csv();
    /// assert!(csv.starts_with("iteration,"));
    /// # }
    /// ```
    pub fn iterations_csv(&self) -> String {
        let mut out = String::from(
            "iteration,removed_filters,remaining_filters,accuracy_after_prune,accuracy_after_finetune,mean_score,flops,params,secs_score,secs_surgery,secs_finetune,secs_eval\n",
        );
        for r in &self.iterations {
            out.push_str(&format!(
                "{},{},{},{:.6},{:.6},{:.6},{},{},{:.6},{:.6},{:.6},{:.6}\n",
                r.iteration,
                r.removed_filters,
                r.remaining_filters,
                r.accuracy_after_prune,
                r.accuracy_after_finetune,
                r.mean_score,
                r.flops,
                r.params,
                r.secs_score,
                r.secs_surgery,
                r.secs_finetune,
                r.secs_eval
            ));
        }
        out
    }
}

/// The class-aware pruner: drives the Fig. 5 loop over a trained network.
#[derive(Debug, Clone)]
pub struct ClassAwarePruner {
    config: PruneConfig,
}

impl ClassAwarePruner {
    /// Creates a pruner after validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::InvalidConfig`] for invalid score/strategy
    /// settings, a zero iteration cap, or a negative drop limit.
    pub fn new(config: PruneConfig) -> Result<Self, PruneError> {
        config.score.validate()?;
        config.strategy.validate()?;
        if config.max_iterations == 0 {
            return Err(PruneError::InvalidConfig {
                reason: "max_iterations must be non-zero".to_string(),
            });
        }
        if !(config.accuracy_drop_limit.is_finite() && config.accuracy_drop_limit >= 0.0) {
            return Err(PruneError::InvalidConfig {
                reason: format!(
                    "accuracy_drop_limit {} must be finite and non-negative",
                    config.accuracy_drop_limit
                ),
            });
        }
        if config.eval_batch == 0 {
            return Err(PruneError::InvalidConfig {
                reason: "eval_batch must be non-zero".to_string(),
            });
        }
        Ok(ClassAwarePruner { config })
    }

    /// The active configuration.
    pub fn config(&self) -> &PruneConfig {
        &self.config
    }

    /// Runs the full iterative pruning on a trained network.
    ///
    /// `net` is modified in place; on an unrecoverable accuracy drop the
    /// last iteration is rolled back so `net` always leaves in its best
    /// pruned state.
    ///
    /// # Errors
    ///
    /// Propagates scoring, surgery, training and analysis errors. In the
    /// error case `net` may be left mid-iteration.
    pub fn run(
        &self,
        net: &mut Network,
        train: &Dataset,
        test: &Dataset,
    ) -> Result<PruneOutcome, PruneError> {
        let _run_span = cap_obs::span!("core.prune.run");
        let cfg = &self.config;
        let (in_c, in_h, in_w) = input_dims(train)?;

        let baseline_accuracy = evaluate(net, test.images(), test.labels(), cfg.eval_batch)?;
        let baseline_cost = analyze_network(net, in_c, in_h, in_w)?;
        let sites0 = find_prunable_sites(net);
        let scores_before = evaluate_scores(net, &sites0, train, &cfg.score)?;
        cap_obs::emit(
            cap_obs::Event::new("prune_start")
                .f64("baseline_accuracy", baseline_accuracy)
                .u64("baseline_flops", baseline_cost.total_flops)
                .u64("baseline_params", baseline_cost.total_params)
                .u64("max_iterations", cfg.max_iterations as u64),
        );

        let mut iterations: Vec<IterationRecord> = Vec::new();
        let mut stop_reason = StopReason::MaxIterations;
        for iteration in 1..=cfg.max_iterations {
            let _iter_span = cap_obs::span!("core.prune.iteration");
            // Live gauge: a mid-run /metrics scrape shows which pruning
            // iteration is underway.
            cap_obs::gauge_set("core.prune.iteration", iteration as f64);

            let t_score = std::time::Instant::now();
            let (sites, scores, selection) = {
                let _span = cap_obs::span!("core.prune.score");
                let sites = find_prunable_sites(net);
                let scores = evaluate_scores(net, &sites, train, &cfg.score)?;
                let selection = select_filters(&scores, &cfg.strategy)?;
                (sites, scores, selection)
            };
            let secs_score = t_score.elapsed().as_secs_f64();
            if selection.is_empty() {
                stop_reason = StopReason::NoPrunableFilters;
                break;
            }

            let t_surgery = std::time::Instant::now();
            let snapshot = net.clone();
            {
                let _span = cap_obs::span!("core.prune.surgery");
                for (si, site) in sites.iter().enumerate() {
                    if selection.remove[si].is_empty() {
                        continue;
                    }
                    let keep = selection.keep_for(si, scores.sites[si].scores.len());
                    apply_site_pruning(net, site, &keep)?;
                }
            }
            let secs_surgery = t_surgery.elapsed().as_secs_f64();

            let t_eval1 = std::time::Instant::now();
            let accuracy_after_prune = {
                let _span = cap_obs::span!("core.prune.eval");
                evaluate(net, test.images(), test.labels(), cfg.eval_batch)?
            };
            let mut secs_eval = t_eval1.elapsed().as_secs_f64();

            let t_finetune = std::time::Instant::now();
            {
                let _span = cap_obs::span!("core.prune.finetune");
                fit(net, train.images(), train.labels(), &cfg.finetune)?;
            }
            let secs_finetune = t_finetune.elapsed().as_secs_f64();

            let t_eval2 = std::time::Instant::now();
            let accuracy_after_finetune = {
                let _span = cap_obs::span!("core.prune.eval");
                evaluate(net, test.images(), test.labels(), cfg.eval_batch)?
            };
            secs_eval += t_eval2.elapsed().as_secs_f64();

            let cost = analyze_network(net, in_c, in_h, in_w)?;
            let remaining = find_prunable_sites(net)
                .iter()
                .map(|s| s.filters(net).unwrap_or(0))
                .sum();
            let record = IterationRecord {
                iteration,
                removed_filters: selection.total_removed(),
                remaining_filters: remaining,
                accuracy_after_prune,
                accuracy_after_finetune,
                mean_score: scores.mean(),
                flops: cost.total_flops,
                params: cost.total_params,
                secs_score,
                secs_surgery,
                secs_finetune,
                secs_eval,
            };
            emit_iteration(&record);
            cap_obs::counter_add("core.filters_removed_total", record.removed_filters as u64);
            cap_obs::gauge_set("core.flops", record.flops as f64);
            cap_obs::gauge_set("core.params", record.params as f64);
            cap_obs::gauge_set("core.accuracy", record.accuracy_after_finetune);
            cap_obs::gauge_set("core.remaining_filters", record.remaining_filters as f64);
            iterations.push(record);
            if baseline_accuracy - accuracy_after_finetune > cfg.accuracy_drop_limit {
                *net = snapshot;
                stop_reason = StopReason::AccuracyUnrecoverable;
                break;
            }
        }

        let final_accuracy = evaluate(net, test.images(), test.labels(), cfg.eval_batch)?;
        let final_cost = analyze_network(net, in_c, in_h, in_w)?;
        let sites_final = find_prunable_sites(net);
        let scores_after = evaluate_scores(net, &sites_final, train, &cfg.score)?;
        cap_obs::emit(
            cap_obs::Event::new("prune_done")
                .u64("iterations", iterations.len() as u64)
                .f64("final_accuracy", final_accuracy)
                .u64("final_flops", final_cost.total_flops)
                .u64("final_params", final_cost.total_params)
                .str("stop_reason", format!("{stop_reason:?}")),
        );
        Ok(PruneOutcome {
            baseline_accuracy,
            final_accuracy,
            baseline_cost,
            final_cost,
            scores_before,
            scores_after,
            iterations,
            stop_reason,
        })
    }
}

fn emit_iteration(r: &IterationRecord) {
    cap_obs::emit(
        cap_obs::Event::new("prune_iteration")
            .u64("iteration", r.iteration as u64)
            .u64("removed_filters", r.removed_filters as u64)
            .u64("remaining_filters", r.remaining_filters as u64)
            .f64("accuracy_after_prune", r.accuracy_after_prune)
            .f64("accuracy_after_finetune", r.accuracy_after_finetune)
            .f64("mean_score", r.mean_score)
            .u64("flops", r.flops)
            .u64("params", r.params)
            .f64("secs_score", r.secs_score)
            .f64("secs_surgery", r.secs_surgery)
            .f64("secs_finetune", r.secs_finetune)
            .f64("secs_eval", r.secs_eval),
    );
}

fn input_dims(data: &Dataset) -> Result<(usize, usize, usize), PruneError> {
    let s = data.images().shape();
    if s.len() != 4 {
        return Err(PruneError::InvalidConfig {
            reason: format!("dataset images must be 4-D, got {s:?}"),
        });
    }
    Ok((s[1], s[2], s[3]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_data::{DatasetSpec, SyntheticDataset};
    use cap_nn::layer::{BatchNorm2d, Conv2d, GlobalAvgPool, Linear, Relu};
    use cap_nn::RegularizerConfig;
    use rand::SeedableRng;

    fn tiny_data() -> SyntheticDataset {
        SyntheticDataset::generate(
            &DatasetSpec::cifar10_like()
                .with_image_size(8)
                .with_counts(12, 4),
        )
        .unwrap()
    }

    fn tiny_net() -> Network {
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let mut net = Network::new();
        net.push(Conv2d::new(3, 12, 3, 1, 1, false, &mut rng).unwrap());
        net.push(BatchNorm2d::new(12).unwrap());
        net.push(Relu::new());
        net.push(Conv2d::new(12, 12, 3, 1, 1, false, &mut rng).unwrap());
        net.push(BatchNorm2d::new(12).unwrap());
        net.push(Relu::new());
        net.push(GlobalAvgPool::new());
        net.push(Linear::new(12, 10, &mut rng).unwrap());
        net
    }

    fn quick_config() -> PruneConfig {
        PruneConfig {
            finetune: TrainConfig {
                epochs: 2,
                batch_size: 20,
                lr: 0.02,
                regularizer: RegularizerConfig::paper(),
                ..TrainConfig::default()
            },
            max_iterations: 3,
            accuracy_drop_limit: 1.0, // never stop on accuracy in this test
            ..PruneConfig::default()
        }
    }

    #[test]
    fn pruner_removes_filters_and_reduces_cost() {
        let data = tiny_data();
        let mut net = tiny_net();
        // Brief pre-training so scores are meaningful.
        fit(
            &mut net,
            data.train().images(),
            data.train().labels(),
            &TrainConfig {
                epochs: 3,
                batch_size: 20,
                lr: 0.02,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        let pruner = ClassAwarePruner::new(PruneConfig {
            strategy: PruneStrategy::Percentage { fraction: 0.2 },
            ..quick_config()
        })
        .unwrap();
        let outcome = pruner.run(&mut net, data.train(), data.test()).unwrap();
        assert!(!outcome.iterations.is_empty());
        assert!(outcome.pruning_ratio() > 0.0);
        assert!(outcome.flops_reduction() > 0.0);
        assert!(outcome.final_cost.total_params < outcome.baseline_cost.total_params);
        // Network still works.
        let x = cap_tensor::Tensor::zeros(&[1, 3, 8, 8]);
        assert_eq!(net.forward(&x, false).unwrap().shape(), &[1, 10]);
    }

    #[test]
    fn stops_when_nothing_below_threshold() {
        let data = tiny_data();
        let mut net = tiny_net();
        let pruner = ClassAwarePruner::new(PruneConfig {
            strategy: PruneStrategy::Threshold { threshold: 0.0 },
            ..quick_config()
        })
        .unwrap();
        let outcome = pruner.run(&mut net, data.train(), data.test()).unwrap();
        // Threshold 0 admits nothing (scores are >= 0): immediate stop.
        assert_eq!(outcome.stop_reason, StopReason::NoPrunableFilters);
        assert!(outcome.iterations.is_empty());
        assert_eq!(outcome.pruning_ratio(), 0.0);
    }

    #[test]
    fn rolls_back_on_unrecoverable_accuracy() {
        let data = tiny_data();
        let mut net = tiny_net();
        fit(
            &mut net,
            data.train().images(),
            data.train().labels(),
            &TrainConfig {
                epochs: 4,
                batch_size: 20,
                lr: 0.02,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        let params_before = net.num_params();
        // Aggressive pruning with a tiny drop budget and no fine-tuning
        // epochs: the first iteration should be deemed unrecoverable and
        // rolled back.
        let pruner = ClassAwarePruner::new(PruneConfig {
            strategy: PruneStrategy::Percentage { fraction: 0.8 },
            finetune: TrainConfig {
                epochs: 1,
                batch_size: 120,
                lr: 1e-6, // effectively no recovery
                ..TrainConfig::default()
            },
            max_iterations: 5,
            accuracy_drop_limit: 0.0,
            ..PruneConfig::default()
        })
        .unwrap();
        let outcome = pruner.run(&mut net, data.train(), data.test()).unwrap();
        if outcome.stop_reason == StopReason::AccuracyUnrecoverable {
            // Rolled back: parameters restored.
            assert_eq!(net.num_params(), params_before);
            assert!((outcome.final_accuracy - outcome.baseline_accuracy).abs() < 1e-9);
        }
    }

    #[test]
    fn iterations_csv_has_header_and_rows() {
        let data = tiny_data();
        let mut net = tiny_net();
        let pruner = ClassAwarePruner::new(PruneConfig {
            strategy: PruneStrategy::Percentage { fraction: 0.2 },
            ..quick_config()
        })
        .unwrap();
        let outcome = pruner.run(&mut net, data.train(), data.test()).unwrap();
        let csv = outcome.iterations_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("iteration,removed_filters"));
        assert_eq!(lines.len(), outcome.iterations.len() + 1);
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 12);
        }
    }

    #[test]
    fn config_validation() {
        assert!(ClassAwarePruner::new(PruneConfig {
            max_iterations: 0,
            ..PruneConfig::default()
        })
        .is_err());
        assert!(ClassAwarePruner::new(PruneConfig {
            accuracy_drop_limit: -0.1,
            ..PruneConfig::default()
        })
        .is_err());
        assert!(ClassAwarePruner::new(PruneConfig {
            eval_batch: 0,
            ..PruneConfig::default()
        })
        .is_err());
        assert!(ClassAwarePruner::new(PruneConfig::default()).is_ok());
    }
}
