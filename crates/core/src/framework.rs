//! The overall class-aware pruning framework (paper Fig. 5): score →
//! prune → fine-tune → repeat, until no filter is prunable or accuracy
//! cannot be recovered.
//!
//! # Crash safety
//!
//! [`ClassAwarePruner::run_with_dir`] persists every completed
//! iteration through a [`RunDir`]: a generation-numbered checkpoint of
//! the network plus one journal line per iteration, both durable before
//! the next iteration starts. [`ClassAwarePruner::resume`] replays the
//! journal and continues exactly where a killed run stopped. Because
//! the whole loop is deterministic (fixed seeds, eval-mode scoring, the
//! cap-par determinism contract) and no optimizer state crosses
//! iteration boundaries, a resumed run finishes with final weights
//! bit-identical to the uninterrupted run, at any thread count.

use crate::{
    analyze_network, apply_site_pruning, evaluate_scores, evaluate_scores_with_attribution,
    find_prunable_sites, select_filters, ClassAttribution, FlopsReport, NetworkScores, PruneError,
    PruneSelection, PruneStrategy, ScoreConfig,
};
use cap_data::Dataset;
use cap_nn::{evaluate, fit, predict_all, ConfusionMatrix, Network, RunDir, TrainConfig};
use cap_obs::json::Json;
use std::collections::BTreeMap;

/// Configuration of the iterative pruning framework.
#[derive(Debug, Clone)]
pub struct PruneConfig {
    /// Importance-score evaluation settings (Eq. 3–7).
    pub score: ScoreConfig,
    /// Filter-selection strategy (Sec. III-C).
    pub strategy: PruneStrategy,
    /// Fine-tuning (retraining with the modified cost) after each
    /// pruning iteration.
    pub finetune: TrainConfig,
    /// Upper bound on pruning iterations (safety net; the paper iterates
    /// until convergence).
    pub max_iterations: usize,
    /// Maximum tolerated accuracy drop relative to the baseline; if
    /// fine-tuning cannot recover to within this bound the framework
    /// rolls back the iteration and stops.
    pub accuracy_drop_limit: f64,
    /// Batch size used for accuracy evaluation.
    pub eval_batch: usize,
}

impl Default for PruneConfig {
    fn default() -> Self {
        PruneConfig {
            score: ScoreConfig::default(),
            strategy: PruneStrategy::paper_combined(10),
            finetune: TrainConfig {
                epochs: 4,
                ..TrainConfig::default()
            },
            max_iterations: 30,
            accuracy_drop_limit: 0.02,
            eval_batch: 64,
        }
    }
}

/// Why the pruning loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No filter fell below the pruning criterion — the paper's
    /// convergence condition ("the remaining filters are very important
    /// for many classes").
    NoPrunableFilters,
    /// Fine-tuning could not recover accuracy within the configured
    /// bound; the last iteration was rolled back.
    AccuracyUnrecoverable,
    /// The iteration cap was reached.
    MaxIterations,
}

/// Statistics of one pruning iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Filters removed this iteration.
    pub removed_filters: usize,
    /// Filters remaining across all prunable sites afterwards.
    pub remaining_filters: usize,
    /// Test accuracy directly after surgery, before fine-tuning.
    pub accuracy_after_prune: f64,
    /// Test accuracy after fine-tuning.
    pub accuracy_after_finetune: f64,
    /// Mean class-count score of the filters scored this iteration.
    pub mean_score: f64,
    /// FLOPs per sample after this iteration.
    pub flops: u64,
    /// Parameters after this iteration.
    pub params: u64,
    /// Wall-clock seconds spent scoring filters (Eq. 3–7).
    pub secs_score: f64,
    /// Wall-clock seconds spent on filter surgery.
    pub secs_surgery: f64,
    /// Wall-clock seconds spent fine-tuning.
    pub secs_finetune: f64,
    /// Wall-clock seconds spent in accuracy evaluations.
    pub secs_eval: f64,
}

/// The result of a full pruning run.
#[derive(Debug, Clone)]
pub struct PruneOutcome {
    /// Test accuracy of the unpruned network.
    pub baseline_accuracy: f64,
    /// Test accuracy of the final (pruned, fine-tuned) network.
    pub final_accuracy: f64,
    /// Cost report of the unpruned network.
    pub baseline_cost: FlopsReport,
    /// Cost report of the final network.
    pub final_cost: FlopsReport,
    /// Importance scores of the unpruned network (Fig. 4/7 "before").
    pub scores_before: NetworkScores,
    /// Importance scores of the final network (Fig. 4/7 "after").
    pub scores_after: NetworkScores,
    /// Per-iteration records.
    pub iterations: Vec<IterationRecord>,
    /// Why the loop stopped.
    pub stop_reason: StopReason,
}

impl PruneOutcome {
    /// The tables' pruning ratio: relative parameter reduction.
    pub fn pruning_ratio(&self) -> f64 {
        self.final_cost.param_reduction_vs(&self.baseline_cost)
    }

    /// The tables' FLOPs reduction.
    pub fn flops_reduction(&self) -> f64 {
        self.final_cost.flops_reduction_vs(&self.baseline_cost)
    }

    /// Accuracy drop (positive when the pruned model is worse).
    pub fn accuracy_drop(&self) -> f64 {
        self.baseline_accuracy - self.final_accuracy
    }

    /// Renders the iteration trajectory as CSV (header + one row per
    /// iteration), for downstream plotting.
    ///
    /// # Example
    ///
    /// ```
    /// # use cap_core::{PruneOutcome, StopReason, NetworkScores, FlopsReport};
    /// # fn show(outcome: &PruneOutcome) {
    /// let csv = outcome.iterations_csv();
    /// assert!(csv.starts_with("iteration,"));
    /// # }
    /// ```
    pub fn iterations_csv(&self) -> String {
        let mut out = String::from(
            "iteration,removed_filters,remaining_filters,accuracy_after_prune,accuracy_after_finetune,mean_score,flops,params,secs_score,secs_surgery,secs_finetune,secs_eval\n",
        );
        for r in &self.iterations {
            out.push_str(&format!(
                "{},{},{},{:.6},{:.6},{:.6},{},{},{:.6},{:.6},{:.6},{:.6}\n",
                r.iteration,
                r.removed_filters,
                r.remaining_filters,
                r.accuracy_after_prune,
                r.accuracy_after_finetune,
                r.mean_score,
                r.flops,
                r.params,
                r.secs_score,
                r.secs_surgery,
                r.secs_finetune,
                r.secs_eval
            ));
        }
        out
    }
}

/// The class-aware pruner: drives the Fig. 5 loop over a trained network.
#[derive(Debug, Clone)]
pub struct ClassAwarePruner {
    config: PruneConfig,
}

impl ClassAwarePruner {
    /// Creates a pruner after validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::InvalidConfig`] for invalid score/strategy
    /// settings, a zero iteration cap, or a negative drop limit.
    pub fn new(config: PruneConfig) -> Result<Self, PruneError> {
        config.score.validate()?;
        config.strategy.validate()?;
        if config.max_iterations == 0 {
            return Err(PruneError::InvalidConfig {
                reason: "max_iterations must be non-zero".to_string(),
            });
        }
        if !(config.accuracy_drop_limit.is_finite() && config.accuracy_drop_limit >= 0.0) {
            return Err(PruneError::InvalidConfig {
                reason: format!(
                    "accuracy_drop_limit {} must be finite and non-negative",
                    config.accuracy_drop_limit
                ),
            });
        }
        if config.eval_batch == 0 {
            return Err(PruneError::InvalidConfig {
                reason: "eval_batch must be non-zero".to_string(),
            });
        }
        Ok(ClassAwarePruner { config })
    }

    /// The active configuration.
    pub fn config(&self) -> &PruneConfig {
        &self.config
    }

    /// Runs the full iterative pruning on a trained network.
    ///
    /// `net` is modified in place; on an unrecoverable accuracy drop the
    /// last iteration is rolled back so `net` always leaves in its best
    /// pruned state.
    ///
    /// # Errors
    ///
    /// Propagates scoring, surgery, training and analysis errors. In the
    /// error case `net` may be left mid-iteration.
    pub fn run(
        &self,
        net: &mut Network,
        train: &Dataset,
        test: &Dataset,
    ) -> Result<PruneOutcome, PruneError> {
        let baseline = self.compute_baseline(net, train, test)?;
        self.drive(net, train, test, None, Vec::new(), 1, None, baseline)
    }

    /// Like [`run`](Self::run), but makes every completed iteration
    /// durable in `dir` (created with [`RunDir::create`]): generation 0
    /// holds the unpruned network, generation `i` the state after
    /// iteration `i`, and the journal records each iteration's
    /// statistics. A run killed at any point can be continued with
    /// [`resume`](Self::resume).
    ///
    /// # Errors
    ///
    /// As [`run`](Self::run), plus [`PruneError::Persistence`] when a
    /// checkpoint or journal write fails.
    pub fn run_with_dir(
        &self,
        net: &mut Network,
        train: &Dataset,
        test: &Dataset,
        dir: &RunDir,
    ) -> Result<PruneOutcome, PruneError> {
        let baseline = self.compute_baseline(net, train, test)?;
        dir.save_generation(0, net).map_err(persist_err)?;
        dir.append_journal(&meta_line(
            config_fingerprint(&self.config),
            self.config.max_iterations,
        ))
        .map_err(persist_err)?;
        self.drive(net, train, test, Some(dir), Vec::new(), 1, None, baseline)
    }

    /// Resumes a run persisted by [`run_with_dir`](Self::run_with_dir)
    /// after a crash (or completion — resuming a finished run just
    /// reconstructs its outcome), returning the final network and the
    /// combined outcome covering replayed and newly run iterations.
    ///
    /// The journal is the source of truth: the newest *valid*
    /// checkpoint at or below the last journaled iteration is loaded
    /// (transparently falling back past corrupt generations, whose
    /// iterations are then deterministically re-run), stop conditions
    /// are re-evaluated from the journal, and the loop continues.
    ///
    /// # Errors
    ///
    /// [`PruneError::Persistence`] when the journal is missing or
    /// corrupt, the configuration differs from the recorded run, or no
    /// checkpoint validates; otherwise as [`run`](Self::run).
    pub fn resume(
        &self,
        train: &Dataset,
        test: &Dataset,
        dir: &RunDir,
    ) -> Result<(Network, PruneOutcome), PruneError> {
        let cfg = &self.config;
        let records = dir.read_journal().map_err(persist_err)?;
        let meta = records
            .iter()
            .find(|j| j.get("type").and_then(Json::as_str) == Some("meta"))
            .ok_or_else(|| PruneError::Persistence {
                reason: format!(
                    "{} has no meta journal record — not a run started with run_with_dir",
                    dir.root().display()
                ),
            })?;
        let recorded_fp = meta.get("config_fp").and_then(Json::as_u64).unwrap_or(0);
        let fp = config_fingerprint(cfg);
        if recorded_fp != fp {
            return Err(PruneError::Persistence {
                reason: format!(
                    "configuration changed since the run was started \
                     (fingerprint {recorded_fp:#x} on disk vs {fp:#x} now); \
                     resume requires the identical PruneConfig"
                ),
            });
        }
        // Journal iteration records, last occurrence winning (a resume
        // that re-ran iterations after a checkpoint fallback appends
        // duplicates; determinism makes them identical up to timings).
        let mut by_iter: BTreeMap<usize, IterationRecord> = BTreeMap::new();
        for j in &records {
            if j.get("type").and_then(Json::as_str) == Some("iter") {
                let r = parse_iter_record(j).ok_or_else(|| PruneError::Persistence {
                    reason: "journal iter record with missing fields".to_string(),
                })?;
                by_iter.insert(r.iteration, r);
            }
        }
        let journaled = by_iter.len();
        if by_iter.keys().copied().ne(1..=journaled) {
            return Err(PruneError::Persistence {
                reason: format!(
                    "journal iterations are not contiguous: {:?}",
                    by_iter.keys().collect::<Vec<_>>()
                ),
            });
        }
        // Newest valid checkpoint at or below the last journaled
        // iteration (an orphan checkpoint newer than the journal — a
        // crash between checkpoint write and journal append — is
        // ignored and overwritten by the re-run).
        let (gen, mut net) =
            dir.latest_valid(Some(journaled as u64))
                .ok_or_else(|| PruneError::Persistence {
                    reason: format!(
                        "no checkpoint in {} passes validation; cannot resume",
                        dir.root().display()
                    ),
                })?;
        let replayed: Vec<IterationRecord> =
            (1..=gen as usize).map(|i| by_iter[&i].clone()).collect();
        cap_obs::emit(
            cap_obs::Event::new("prune_resume")
                .u64("journaled_iterations", journaled as u64)
                .u64("resume_generation", gen),
        );
        // Baseline statistics are recomputed from the unpruned network;
        // scoring and evaluation are deterministic and read-only, so
        // the numbers are bit-identical to the original run's.
        let mut gen0 = dir.load_generation(0).map_err(persist_err)?;
        let baseline = self.compute_baseline(&mut gen0, train, test)?;
        // Re-evaluate the stop conditions the crash may have preempted:
        // the journal can end with an iteration whose rollback was
        // decided but not yet applied.
        let mut forced_stop = None;
        if let Some(last) = replayed.last() {
            if baseline.accuracy - last.accuracy_after_finetune > cfg.accuracy_drop_limit {
                let prev = (last.iteration - 1) as u64;
                net = dir.load_generation(prev).map_err(persist_err)?;
                forced_stop = Some(StopReason::AccuracyUnrecoverable);
            }
        }
        let start = gen as usize + 1;
        let outcome = self.drive(
            &mut net,
            train,
            test,
            Some(dir),
            replayed,
            start,
            forced_stop,
            baseline,
        )?;
        Ok((net, outcome))
    }

    /// Baseline statistics of the unpruned network (all read-only
    /// passes; `net` weights are not modified).
    fn compute_baseline(
        &self,
        net: &mut Network,
        train: &Dataset,
        test: &Dataset,
    ) -> Result<Baseline, PruneError> {
        let cfg = &self.config;
        let (in_c, in_h, in_w) = input_dims(train)?;
        let accuracy = evaluate(net, test.images(), test.labels(), cfg.eval_batch)?;
        let cost = analyze_network(net, in_c, in_h, in_w)?;
        let sites0 = find_prunable_sites(net);
        let scores = evaluate_scores(net, &sites0, train, &cfg.score)?;
        Ok(Baseline {
            accuracy,
            cost,
            scores,
        })
    }

    /// The Fig. 5 loop over iterations `start..=max_iterations` (shared
    /// by fresh, persisted and resumed runs), followed by the final
    /// analysis. `iterations` carries records replayed from a journal;
    /// `forced_stop` skips the loop when resume already determined the
    /// run is over.
    #[allow(clippy::too_many_arguments)]
    fn drive(
        &self,
        net: &mut Network,
        train: &Dataset,
        test: &Dataset,
        persist: Option<&RunDir>,
        mut iterations: Vec<IterationRecord>,
        start: usize,
        forced_stop: Option<StopReason>,
        baseline: Baseline,
    ) -> Result<PruneOutcome, PruneError> {
        let _run_span = cap_obs::span!("core.prune.run");
        let cfg = &self.config;
        let (in_c, in_h, in_w) = input_dims(train)?;
        let baseline_accuracy = baseline.accuracy;
        let baseline_cost = baseline.cost;
        let scores_before = baseline.scores;
        cap_obs::emit(
            cap_obs::Event::new("prune_start")
                .f64("baseline_accuracy", baseline_accuracy)
                .u64("baseline_flops", baseline_cost.total_flops)
                .u64("baseline_params", baseline_cost.total_params)
                .u64("max_iterations", cfg.max_iterations as u64),
        );

        // Durable run history: persisted runs record a sampled time
        // series (`series.capts`), per-class pruning attribution
        // (`class_attribution.jsonl`) and alert rules (`alerts.jsonl`)
        // alongside the journal. The guard stops the recorder and
        // clears the rules however the loop exits.
        let history = persist.map(|dir| RunHistory::start(dir, baseline_accuracy, cfg));

        let mut stop_reason = forced_stop.unwrap_or(StopReason::MaxIterations);
        let last_iteration = if forced_stop.is_some() {
            // Resume determined the run already ended (e.g. rollback):
            // an empty range skips the loop entirely.
            0
        } else {
            cfg.max_iterations
        };
        for iteration in start..=last_iteration {
            let _iter_span = cap_obs::span!("core.prune.iteration");
            // Live gauge: a mid-run /metrics scrape shows which pruning
            // iteration is underway.
            cap_obs::gauge_set("core.prune.iteration", iteration as f64);

            let t_score = cap_obs::clock::now();
            let (sites, scores, attribution, selection) = {
                let _span = cap_obs::span!("core.prune.score");
                let sites = find_prunable_sites(net);
                let (scores, attribution) =
                    evaluate_scores_with_attribution(net, &sites, train, &cfg.score)?;
                let selection = select_filters(&scores, &cfg.strategy)?;
                (sites, scores, attribution, selection)
            };
            let secs_score = t_score.elapsed().as_secs_f64();
            if selection.is_empty() {
                stop_reason = StopReason::NoPrunableFilters;
                break;
            }

            let t_surgery = cap_obs::clock::now();
            let snapshot = net.clone();
            {
                let _span = cap_obs::span!("core.prune.surgery");
                for (si, site) in sites.iter().enumerate() {
                    if selection.remove[si].is_empty() {
                        continue;
                    }
                    let keep = selection.keep_for(si, scores.sites[si].scores.len());
                    apply_site_pruning(net, site, &keep)?;
                }
            }
            let secs_surgery = t_surgery.elapsed().as_secs_f64();

            let t_eval1 = cap_obs::clock::now();
            let accuracy_after_prune = {
                let _span = cap_obs::span!("core.prune.eval");
                evaluate(net, test.images(), test.labels(), cfg.eval_batch)?
            };
            let mut secs_eval = t_eval1.elapsed().as_secs_f64();

            let t_finetune = cap_obs::clock::now();
            {
                let _span = cap_obs::span!("core.prune.finetune");
                fit(net, train.images(), train.labels(), &cfg.finetune)?;
            }
            let secs_finetune = t_finetune.elapsed().as_secs_f64();

            let t_eval2 = cap_obs::clock::now();
            let accuracy_after_finetune = {
                let _span = cap_obs::span!("core.prune.eval");
                evaluate(net, test.images(), test.labels(), cfg.eval_batch)?
            };
            secs_eval += t_eval2.elapsed().as_secs_f64();

            let cost = analyze_network(net, in_c, in_h, in_w)?;
            let remaining = find_prunable_sites(net)
                .iter()
                .map(|s| s.filters(net).unwrap_or(0))
                .sum();
            let record = IterationRecord {
                iteration,
                removed_filters: selection.total_removed(),
                remaining_filters: remaining,
                accuracy_after_prune,
                accuracy_after_finetune,
                mean_score: scores.mean(),
                flops: cost.total_flops,
                params: cost.total_params,
                secs_score,
                secs_surgery,
                secs_finetune,
                secs_eval,
            };
            emit_iteration(&record);
            cap_obs::counter_add("core.filters_removed_total", record.removed_filters as u64);
            cap_obs::gauge_set("core.flops", record.flops as f64);
            cap_obs::gauge_set("core.params", record.params as f64);
            cap_obs::gauge_set("core.accuracy", record.accuracy_after_finetune);
            cap_obs::gauge_set("core.remaining_filters", record.remaining_filters as f64);
            if let Some(h) = history.as_ref() {
                h.publish_iteration(&record, &scores, &attribution, &selection, net, test)?;
            }
            if let Some(dir) = persist {
                // Checkpoint first, then the journal line: a crash in
                // between leaves an orphan checkpoint that resume
                // ignores. Only once both are durable may the injected
                // crash fire (it stands in for a SIGKILL here).
                dir.save_generation(iteration as u64, net)
                    .map_err(persist_err)?;
                dir.append_journal(&iter_line(&record))
                    .map_err(persist_err)?;
                cap_faults::maybe_crash_after_iter(iteration as u64);
                cap_faults::maybe_wedge_after_iter(iteration as u64);
            }
            iterations.push(record);
            if baseline_accuracy - accuracy_after_finetune > cfg.accuracy_drop_limit {
                *net = snapshot;
                stop_reason = StopReason::AccuracyUnrecoverable;
                break;
            }
        }

        if let Some(dir) = persist {
            let final_gen = match stop_reason {
                StopReason::AccuracyUnrecoverable => iterations.len().saturating_sub(1),
                _ => iterations.len(),
            };
            dir.append_journal(&stop_line(stop_reason, final_gen as u64))
                .map_err(persist_err)?;
        }
        let final_accuracy = evaluate(net, test.images(), test.labels(), cfg.eval_batch)?;
        let final_cost = analyze_network(net, in_c, in_h, in_w)?;
        let sites_final = find_prunable_sites(net);
        let scores_after = evaluate_scores(net, &sites_final, train, &cfg.score)?;
        cap_obs::emit(
            cap_obs::Event::new("prune_done")
                .u64("iterations", iterations.len() as u64)
                .f64("final_accuracy", final_accuracy)
                .u64("final_flops", final_cost.total_flops)
                .u64("final_params", final_cost.total_params)
                .str("stop_reason", format!("{stop_reason:?}")),
        );
        Ok(PruneOutcome {
            baseline_accuracy,
            final_accuracy,
            baseline_cost,
            final_cost,
            scores_before,
            scores_after,
            iterations,
            stop_reason,
        })
    }
}

/// Baseline statistics of the unpruned network.
struct Baseline {
    accuracy: f64,
    cost: FlopsReport,
    scores: NetworkScores,
}

/// Consecutive bit-identical `core.prune.iteration` samples tolerated
/// before the stall alert fires (~5 min at the default 250 ms cadence).
const STALL_WINDOW: usize = 1200;
/// Trailing sample-time window for the numeric-fault rate rule.
const NAN_WINDOW_SECS: f64 = 3600.0;

/// Run-history side of a persisted pruning run: owns the sampling
/// recorder writing `<run-dir>/series.capts`, the alert rules feeding
/// `<run-dir>/alerts.jsonl`, and the per-class attribution sidecar.
/// Dropping it (any exit from the loop, including errors) stops the
/// recorder and uninstalls the rules.
struct RunHistory<'a> {
    dir: &'a RunDir,
    eval_batch: usize,
    /// Whether *this* run started the process-global recorder (another
    /// concurrent run may already own it; then we must not stop it).
    recording: bool,
    /// Whether *this* run started the sampling profiler (same
    /// first-start-wins rule as `recording`).
    profiling: bool,
}

impl<'a> RunHistory<'a> {
    fn start(dir: &'a RunDir, baseline_accuracy: f64, cfg: &PruneConfig) -> RunHistory<'a> {
        let recording = match cap_obs::recorder::start_global(
            &dir.root().join("series.capts"),
            cap_obs::recorder::interval_from_env(),
        ) {
            Ok(started) => started,
            Err(e) => {
                // History is best-effort: a broken series file must not
                // kill a pruning run that the journal keeps safe.
                eprintln!("run history: recorder disabled: {e}");
                false
            }
        };
        // Sampling profiler: when CAP_PROF_HZ asks for one, the run dir
        // owns `profile.folded`. A profiler started earlier (e.g. by
        // init_telemetry before the run dir existed) is retargeted here
        // instead; it keeps running after the run, same as the server.
        let profiling = match cap_obs::prof::hz_from_env() {
            Some(hz) => {
                let out = dir.root().join("profile.folded");
                match cap_obs::prof::start_global(hz, Some(out.clone())) {
                    Ok(true) => true,
                    Ok(false) => {
                        cap_obs::prof::set_output(out);
                        false
                    }
                    Err(e) => {
                        eprintln!("run history: profiler disabled: {e}");
                        false
                    }
                }
            }
            None => false,
        };
        cap_obs::alerts::install(
            vec![
                cap_obs::alerts::Rule {
                    name: "numeric-faults".to_string(),
                    kind: cap_obs::alerts::RuleKind::NanRate {
                        series: "nn.numeric_faults_total".to_string(),
                        max_increase: 0.0,
                        window_secs: NAN_WINDOW_SECS,
                    },
                },
                cap_obs::alerts::Rule {
                    name: "accuracy-drop".to_string(),
                    kind: cap_obs::alerts::RuleKind::AccuracyDrop {
                        series: "core.accuracy".to_string(),
                        baseline: baseline_accuracy,
                        max_drop: cfg.accuracy_drop_limit,
                    },
                },
                cap_obs::alerts::Rule {
                    name: "iteration-stall".to_string(),
                    kind: cap_obs::alerts::RuleKind::Stall {
                        series: "core.prune.iteration".to_string(),
                        window: STALL_WINDOW,
                    },
                },
            ],
            Some(dir.root().join("alerts.jsonl")),
            Some(dir.root().join("flight_alert.json")),
        );
        RunHistory {
            dir,
            eval_batch: cfg.eval_batch,
            recording,
            profiling,
        }
    }

    /// Publishes the per-class view of one completed iteration:
    /// `core.class_accuracy.<k>` gauges (recall on the test set),
    /// `core.class_importance.<k>` gauges (mean `s_{f,n}` over all
    /// scored filters), one `class_attribution.jsonl` line per removed
    /// filter, and a durable boundary sample carrying it all.
    fn publish_iteration(
        &self,
        record: &IterationRecord,
        scores: &NetworkScores,
        attribution: &ClassAttribution,
        selection: &PruneSelection,
        net: &mut Network,
        test: &Dataset,
    ) -> Result<(), PruneError> {
        let classes = attribution.classes;
        let preds = predict_all(net, test.images(), self.eval_batch)?;
        let cm = ConfusionMatrix::from_predictions(&preds, test.labels(), classes)?;
        for k in 0..classes {
            if let Some(r) = cm.recall(k) {
                cap_obs::gauge_set(&format!("core.class_accuracy.{k}"), r);
            }
        }
        // Mean importance per class over every scored filter: the
        // dashboard heatmap row for this iteration.
        let mut sums = vec![0.0f64; classes];
        let mut filters = 0usize;
        for site in &attribution.sites {
            for row in &site.per_class {
                for (s, &v) in sums.iter_mut().zip(row.iter()) {
                    *s += v;
                }
            }
            filters += site.per_class.len();
        }
        if filters > 0 {
            for (k, s) in sums.iter().enumerate() {
                cap_obs::gauge_set(&format!("core.class_importance.{k}"), s / filters as f64);
            }
        }
        for (si, removed) in selection.remove.iter().enumerate() {
            for &f in removed {
                let line = attribution_line(
                    record.iteration,
                    &scores.sites[si].label,
                    f,
                    scores.sites[si].scores[f],
                    &attribution.sites[si].per_class[f],
                    attribution.top_class(si, f),
                );
                self.dir
                    .append_jsonl("class_attribution.jsonl", &line)
                    .map_err(persist_err)?;
            }
        }
        cap_obs::recorder::record_boundary_sample();
        Ok(())
    }
}

impl Drop for RunHistory<'_> {
    fn drop(&mut self) {
        if self.recording {
            cap_obs::recorder::stop_global();
        }
        if self.profiling {
            // Final durable profile.folded for the run.
            cap_obs::prof::stop_global();
        } else {
            // A longer-lived profiler keeps sampling, but the run dir
            // should still hold a complete profile at run end.
            cap_obs::prof::flush_profile();
        }
        cap_obs::alerts::clear();
    }
}

/// One `class_attribution.jsonl` record. Floats use shortest-roundtrip
/// `Display`, so readers recover the exact `s_{f,n}` the run computed.
fn attribution_line(
    iteration: usize,
    site: &str,
    filter: usize,
    score: f64,
    class_scores: &[f64],
    top_class: Option<usize>,
) -> String {
    let mut out = String::with_capacity(96 + 8 * class_scores.len());
    out.push_str("{\"type\":\"attribution\",\"iteration\":");
    out.push_str(&iteration.to_string());
    out.push_str(",\"site\":");
    cap_obs::json::write_str(&mut out, site);
    out.push_str(",\"filter\":");
    out.push_str(&filter.to_string());
    out.push_str(",\"score\":");
    cap_obs::json::write_f64(&mut out, score);
    out.push_str(",\"class_scores\":[");
    for (i, &v) in class_scores.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        cap_obs::json::write_f64(&mut out, v);
    }
    out.push_str("],\"top_class\":");
    match top_class {
        Some(k) => out.push_str(&k.to_string()),
        None => out.push_str("null"),
    }
    out.push('}');
    out
}

/// Maps a run-dir failure into [`PruneError::Persistence`], flattening
/// the `source()` chain into the reason string (the error stays
/// `Clone + PartialEq`).
fn persist_err(e: cap_nn::RunDirError) -> PruneError {
    use std::error::Error;
    let mut reason = e.to_string();
    let mut cause: Option<&dyn Error> = e.source();
    while let Some(c) = cause {
        reason.push_str(": ");
        reason.push_str(&c.to_string());
        cause = c.source();
    }
    PruneError::Persistence { reason }
}

/// FNV-1a over the configuration's debug rendering: cheap, stable
/// within a build, and any field change alters it. Guards against
/// resuming a run with different hyper-parameters, which would break
/// bit-identity silently.
fn config_fingerprint(cfg: &PruneConfig) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{cfg:?}").bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // The journal stores numbers as f64; 53 bits roundtrip exactly.
    hash & ((1 << 53) - 1)
}

fn meta_line(config_fp: u64, max_iterations: usize) -> String {
    format!(
        "{{\"type\":\"meta\",\"format\":1,\"config_fp\":{config_fp},\"max_iterations\":{max_iterations}}}"
    )
}

/// One journal line per completed iteration. Floats use Rust's
/// shortest-roundtrip `Display`, so parsing recovers them bit-exactly —
/// the resume-time rollback decision compares the same f64 the original
/// run compared.
fn iter_line(r: &IterationRecord) -> String {
    format!(
        "{{\"type\":\"iter\",\"iteration\":{},\"removed_filters\":{},\"remaining_filters\":{},\
         \"accuracy_after_prune\":{},\"accuracy_after_finetune\":{},\"mean_score\":{},\
         \"flops\":{},\"params\":{},\"secs_score\":{},\"secs_surgery\":{},\
         \"secs_finetune\":{},\"secs_eval\":{}}}",
        r.iteration,
        r.removed_filters,
        r.remaining_filters,
        r.accuracy_after_prune,
        r.accuracy_after_finetune,
        r.mean_score,
        r.flops,
        r.params,
        r.secs_score,
        r.secs_surgery,
        r.secs_finetune,
        r.secs_eval
    )
}

fn stop_line(reason: StopReason, final_gen: u64) -> String {
    format!("{{\"type\":\"stop\",\"reason\":\"{reason:?}\",\"final_gen\":{final_gen}}}")
}

fn parse_iter_record(j: &Json) -> Option<IterationRecord> {
    let u = |k: &str| j.get(k).and_then(Json::as_u64);
    let f = |k: &str| j.get(k).and_then(Json::as_f64);
    Some(IterationRecord {
        iteration: u("iteration")? as usize,
        removed_filters: u("removed_filters")? as usize,
        remaining_filters: u("remaining_filters")? as usize,
        accuracy_after_prune: f("accuracy_after_prune")?,
        accuracy_after_finetune: f("accuracy_after_finetune")?,
        mean_score: f("mean_score")?,
        flops: u("flops")?,
        params: u("params")?,
        secs_score: f("secs_score")?,
        secs_surgery: f("secs_surgery")?,
        secs_finetune: f("secs_finetune")?,
        secs_eval: f("secs_eval")?,
    })
}

fn emit_iteration(r: &IterationRecord) {
    cap_obs::emit(
        cap_obs::Event::new("prune_iteration")
            .u64("iteration", r.iteration as u64)
            .u64("removed_filters", r.removed_filters as u64)
            .u64("remaining_filters", r.remaining_filters as u64)
            .f64("accuracy_after_prune", r.accuracy_after_prune)
            .f64("accuracy_after_finetune", r.accuracy_after_finetune)
            .f64("mean_score", r.mean_score)
            .u64("flops", r.flops)
            .u64("params", r.params)
            .f64("secs_score", r.secs_score)
            .f64("secs_surgery", r.secs_surgery)
            .f64("secs_finetune", r.secs_finetune)
            .f64("secs_eval", r.secs_eval),
    );
}

fn input_dims(data: &Dataset) -> Result<(usize, usize, usize), PruneError> {
    let s = data.images().shape();
    if s.len() != 4 {
        return Err(PruneError::InvalidConfig {
            reason: format!("dataset images must be 4-D, got {s:?}"),
        });
    }
    Ok((s[1], s[2], s[3]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_data::{DatasetSpec, SyntheticDataset};
    use cap_nn::layer::{BatchNorm2d, Conv2d, GlobalAvgPool, Linear, Relu};
    use cap_nn::RegularizerConfig;
    use rand::SeedableRng;

    fn tiny_data() -> SyntheticDataset {
        SyntheticDataset::generate(
            &DatasetSpec::cifar10_like()
                .with_image_size(8)
                .with_counts(12, 4),
        )
        .unwrap()
    }

    fn tiny_net() -> Network {
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let mut net = Network::new();
        net.push(Conv2d::new(3, 12, 3, 1, 1, false, &mut rng).unwrap());
        net.push(BatchNorm2d::new(12).unwrap());
        net.push(Relu::new());
        net.push(Conv2d::new(12, 12, 3, 1, 1, false, &mut rng).unwrap());
        net.push(BatchNorm2d::new(12).unwrap());
        net.push(Relu::new());
        net.push(GlobalAvgPool::new());
        net.push(Linear::new(12, 10, &mut rng).unwrap());
        net
    }

    fn quick_config() -> PruneConfig {
        PruneConfig {
            finetune: TrainConfig {
                epochs: 2,
                batch_size: 20,
                lr: 0.02,
                regularizer: RegularizerConfig::paper(),
                ..TrainConfig::default()
            },
            max_iterations: 3,
            accuracy_drop_limit: 1.0, // never stop on accuracy in this test
            ..PruneConfig::default()
        }
    }

    #[test]
    fn pruner_removes_filters_and_reduces_cost() {
        let data = tiny_data();
        let mut net = tiny_net();
        // Brief pre-training so scores are meaningful.
        fit(
            &mut net,
            data.train().images(),
            data.train().labels(),
            &TrainConfig {
                epochs: 3,
                batch_size: 20,
                lr: 0.02,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        let pruner = ClassAwarePruner::new(PruneConfig {
            strategy: PruneStrategy::Percentage { fraction: 0.2 },
            ..quick_config()
        })
        .unwrap();
        let outcome = pruner.run(&mut net, data.train(), data.test()).unwrap();
        assert!(!outcome.iterations.is_empty());
        assert!(outcome.pruning_ratio() > 0.0);
        assert!(outcome.flops_reduction() > 0.0);
        assert!(outcome.final_cost.total_params < outcome.baseline_cost.total_params);
        // Network still works.
        let x = cap_tensor::Tensor::zeros(&[1, 3, 8, 8]);
        assert_eq!(net.forward(&x, false).unwrap().shape(), &[1, 10]);
    }

    #[test]
    fn stops_when_nothing_below_threshold() {
        let data = tiny_data();
        let mut net = tiny_net();
        let pruner = ClassAwarePruner::new(PruneConfig {
            strategy: PruneStrategy::Threshold { threshold: 0.0 },
            ..quick_config()
        })
        .unwrap();
        let outcome = pruner.run(&mut net, data.train(), data.test()).unwrap();
        // Threshold 0 admits nothing (scores are >= 0): immediate stop.
        assert_eq!(outcome.stop_reason, StopReason::NoPrunableFilters);
        assert!(outcome.iterations.is_empty());
        assert_eq!(outcome.pruning_ratio(), 0.0);
    }

    #[test]
    fn rolls_back_on_unrecoverable_accuracy() {
        let data = tiny_data();
        let mut net = tiny_net();
        fit(
            &mut net,
            data.train().images(),
            data.train().labels(),
            &TrainConfig {
                epochs: 4,
                batch_size: 20,
                lr: 0.02,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        let params_before = net.num_params();
        // Aggressive pruning with a tiny drop budget and no fine-tuning
        // epochs: the first iteration should be deemed unrecoverable and
        // rolled back.
        let pruner = ClassAwarePruner::new(PruneConfig {
            strategy: PruneStrategy::Percentage { fraction: 0.8 },
            finetune: TrainConfig {
                epochs: 1,
                batch_size: 120,
                lr: 1e-6, // effectively no recovery
                ..TrainConfig::default()
            },
            max_iterations: 5,
            accuracy_drop_limit: 0.0,
            ..PruneConfig::default()
        })
        .unwrap();
        let outcome = pruner.run(&mut net, data.train(), data.test()).unwrap();
        if outcome.stop_reason == StopReason::AccuracyUnrecoverable {
            // Rolled back: parameters restored.
            assert_eq!(net.num_params(), params_before);
            assert!((outcome.final_accuracy - outcome.baseline_accuracy).abs() < 1e-9);
        }
    }

    #[test]
    fn iterations_csv_has_header_and_rows() {
        let data = tiny_data();
        let mut net = tiny_net();
        let pruner = ClassAwarePruner::new(PruneConfig {
            strategy: PruneStrategy::Percentage { fraction: 0.2 },
            ..quick_config()
        })
        .unwrap();
        let outcome = pruner.run(&mut net, data.train(), data.test()).unwrap();
        let csv = outcome.iterations_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("iteration,removed_filters"));
        assert_eq!(lines.len(), outcome.iterations.len() + 1);
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 12);
        }
    }

    /// Non-timing fields of two records must agree (timings legitimately
    /// differ between a run and its resumed replay).
    fn assert_records_match(a: &IterationRecord, b: &IterationRecord) {
        assert_eq!(a.iteration, b.iteration);
        assert_eq!(a.removed_filters, b.removed_filters);
        assert_eq!(a.remaining_filters, b.remaining_filters);
        assert_eq!(
            a.accuracy_after_prune.to_bits(),
            b.accuracy_after_prune.to_bits()
        );
        assert_eq!(
            a.accuracy_after_finetune.to_bits(),
            b.accuracy_after_finetune.to_bits()
        );
        assert_eq!(a.mean_score.to_bits(), b.mean_score.to_bits());
        assert_eq!(a.flops, b.flops);
        assert_eq!(a.params, b.params);
    }

    /// Copies a run dir, truncating the journal to the meta record plus
    /// iterations `..= upto` and dropping checkpoints newer than
    /// generation `upto` — the on-disk state of a run killed right
    /// after journaling iteration `upto`.
    fn crash_copy(src: &std::path::Path, dst: &std::path::Path, upto: usize) {
        let _ = std::fs::remove_dir_all(dst);
        std::fs::create_dir_all(dst.join("ckpt")).unwrap();
        std::fs::copy(src.join("MANIFEST.json"), dst.join("MANIFEST.json")).unwrap();
        for gen in 0..=upto {
            let name = format!("gen-{gen:06}.capn");
            std::fs::copy(src.join("ckpt").join(&name), dst.join("ckpt").join(&name)).unwrap();
        }
        let journal = std::fs::read_to_string(src.join("journal.jsonl")).unwrap();
        let kept: Vec<&str> = journal
            .lines()
            .filter(|l| {
                let j = cap_obs::json::parse(l).unwrap();
                match j.get("type").and_then(|t| t.as_str()) {
                    Some("meta") => true,
                    Some("iter") => {
                        j.get("iteration").and_then(|v| v.as_u64()).unwrap() <= upto as u64
                    }
                    _ => false,
                }
            })
            .collect();
        std::fs::write(dst.join("journal.jsonl"), kept.join("\n") + "\n").unwrap();
    }

    #[test]
    fn resume_after_simulated_crash_is_bit_identical() {
        let _guard = cap_obs::test_lock();
        let data = tiny_data();
        let mut net = tiny_net();
        fit(
            &mut net,
            data.train().images(),
            data.train().labels(),
            &TrainConfig {
                epochs: 2,
                batch_size: 20,
                lr: 0.02,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        let pruner = ClassAwarePruner::new(PruneConfig {
            strategy: PruneStrategy::Percentage { fraction: 0.2 },
            ..quick_config()
        })
        .unwrap();

        let base = std::env::temp_dir().join(format!("cap_resume_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let ref_path = base.join("reference");
        let dir_a = RunDir::create(&ref_path).unwrap();
        let outcome_a = pruner
            .run_with_dir(&mut net, data.train(), data.test(), &dir_a)
            .unwrap();
        assert!(
            outcome_a.iterations.len() >= 2,
            "need at least two iterations to exercise resume, got {}",
            outcome_a.iterations.len()
        );
        let ref_bytes = cap_nn::checkpoint::to_bytes(&net).unwrap();

        // Crash after iteration 1 → resume must finish bit-identically.
        let crashed = base.join("crashed");
        crash_copy(&ref_path, &crashed, 1);
        let dir_b = RunDir::open(&crashed).unwrap();
        let (net_b, outcome_b) = pruner.resume(data.train(), data.test(), &dir_b).unwrap();
        assert_eq!(
            cap_nn::checkpoint::to_bytes(&net_b).unwrap(),
            ref_bytes,
            "resumed weights must be bit-identical to the uninterrupted run"
        );
        assert_eq!(outcome_a.stop_reason, outcome_b.stop_reason);
        assert_eq!(outcome_a.iterations.len(), outcome_b.iterations.len());
        assert_eq!(
            outcome_a.baseline_accuracy.to_bits(),
            outcome_b.baseline_accuracy.to_bits()
        );
        assert_eq!(
            outcome_a.final_accuracy.to_bits(),
            outcome_b.final_accuracy.to_bits()
        );
        for (a, b) in outcome_a.iterations.iter().zip(&outcome_b.iterations) {
            assert_records_match(a, b);
        }

        // Same crash, but the newest surviving checkpoint is corrupt:
        // resume falls back to generation 0 and deterministically
        // re-runs everything, still landing on identical weights.
        let corrupt = base.join("corrupt");
        crash_copy(&ref_path, &corrupt, 1);
        let g1 = corrupt.join("ckpt").join("gen-000001.capn");
        let mut bytes = std::fs::read(&g1).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&g1, &bytes).unwrap();
        let dir_c = RunDir::open(&corrupt).unwrap();
        let (net_c, outcome_c) = pruner.resume(data.train(), data.test(), &dir_c).unwrap();
        assert_eq!(
            cap_nn::checkpoint::to_bytes(&net_c).unwrap(),
            ref_bytes,
            "fallback past a corrupt checkpoint must not change the result"
        );
        assert_eq!(outcome_a.iterations.len(), outcome_c.iterations.len());

        // Resuming with a different configuration is refused.
        let other = ClassAwarePruner::new(PruneConfig {
            strategy: PruneStrategy::Percentage { fraction: 0.3 },
            ..quick_config()
        })
        .unwrap();
        assert!(matches!(
            other.resume(data.train(), data.test(), &dir_b),
            Err(PruneError::Persistence { .. })
        ));

        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn run_with_dir_writes_series_attribution_and_alert_state() {
        let _guard = cap_obs::test_lock();
        let data = tiny_data();
        let mut net = tiny_net();
        fit(
            &mut net,
            data.train().images(),
            data.train().labels(),
            &TrainConfig {
                epochs: 2,
                batch_size: 20,
                lr: 0.02,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        let pruner = ClassAwarePruner::new(PruneConfig {
            strategy: PruneStrategy::Percentage { fraction: 0.2 },
            ..quick_config()
        })
        .unwrap();
        let root = std::env::temp_dir().join(format!("cap_history_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let dir = RunDir::create(&root).unwrap();
        let outcome = pruner
            .run_with_dir(&mut net, data.train(), data.test(), &dir)
            .unwrap();
        assert!(!outcome.iterations.is_empty());
        // The recorder and rules are torn down when drive() returns.
        assert!(!cap_obs::recorder::active());
        assert!(cap_obs::alerts::fired().is_empty());

        // series.capts: at least start + one boundary per iteration +
        // stop, seq contiguous from 0, carrying the per-class gauges.
        let samples = cap_obs::tsdb::read_samples(&root.join("series.capts")).unwrap();
        assert!(
            samples.len() >= outcome.iterations.len() + 2,
            "only {} samples",
            samples.len()
        );
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(s.seq, i as u64);
        }
        let last = samples.last().unwrap();
        assert!(last.value("core.prune.iteration").is_some());
        assert!(last.value("core.class_accuracy.0").is_some());
        assert!(last.value("core.class_importance.0").is_some());

        // class_attribution.jsonl: one parseable record per removed
        // filter, class_scores matching the dataset's class count.
        let text = std::fs::read_to_string(root.join("class_attribution.jsonl")).unwrap();
        let removed: usize = outcome.iterations.iter().map(|r| r.removed_filters).sum();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), removed);
        for line in lines {
            let j = cap_obs::json::parse(line).unwrap();
            assert_eq!(j.get("type").and_then(Json::as_str), Some("attribution"));
            assert!(j.get("iteration").and_then(Json::as_u64).is_some());
            assert!(j.get("score").and_then(Json::as_f64).is_some());
        }
        // No alert fired in a healthy run: no alerts.jsonl.
        assert!(!root.join("alerts.jsonl").exists());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn config_validation() {
        assert!(ClassAwarePruner::new(PruneConfig {
            max_iterations: 0,
            ..PruneConfig::default()
        })
        .is_err());
        assert!(ClassAwarePruner::new(PruneConfig {
            accuracy_drop_limit: -0.1,
            ..PruneConfig::default()
        })
        .is_err());
        assert!(ClassAwarePruner::new(PruneConfig {
            eval_batch: 0,
            ..PruneConfig::default()
        })
        .is_err());
        assert!(ClassAwarePruner::new(PruneConfig::default()).is_ok());
    }
}
