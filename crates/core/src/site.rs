//! Discovery of prunable filter sites in a network, and the channel
//! surgery that removes filters while keeping the network consistent.
//!
//! Two site kinds cover the paper's models:
//!
//! * **Sequential** — a top-level convolution whose output feeds (through
//!   batch-norm / activation / pooling) either another top-level
//!   convolution or, via global average pooling, the classifier. All 13/16
//!   VGG convolutions are of this kind.
//! * **Residual-internal** — the first convolution of a basic residual
//!   block. Pruning it shrinks the block's internal width only, which is
//!   exactly the paper's ResNet56 constraint ("only the first layer of
//!   each residual block is pruned" to keep shortcuts intact).
//!
//! A convolution whose output feeds a residual block (e.g. the ResNet
//! stem) is *not* prunable: the block's identity shortcut ties its input
//! width to its output width.

use crate::PruneError;
use cap_nn::layer::{Conv2d, Layer};
use cap_nn::Network;

/// Where a prunable convolution sits inside the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteKind {
    /// `network.layers()[conv_idx]` is a `Layer::Conv` whose consumer can
    /// be rewritten.
    Sequential {
        /// Index of the convolution layer.
        conv_idx: usize,
    },
    /// `network.layers()[block_idx]` is a `Layer::Residual`; the site is
    /// its first convolution.
    ResidualInternal {
        /// Index of the residual block.
        block_idx: usize,
    },
}

/// A prunable convolution site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrunableSite {
    /// Structural location.
    pub kind: SiteKind,
    /// Human-readable label (e.g. `conv3` or `block7.conv1`), stable for
    /// reports.
    pub label: String,
}

impl PrunableSite {
    /// Number of filters currently at this site.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::StaleScores`] if the network no longer has
    /// this site (structural drift).
    pub fn filters(&self, net: &Network) -> Result<usize, PruneError> {
        Ok(self.conv(net)?.out_channels())
    }

    /// Immutable access to the site's convolution.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::StaleScores`] if the site no longer matches
    /// the network structure.
    pub fn conv<'a>(&self, net: &'a Network) -> Result<&'a Conv2d, PruneError> {
        let stale = || PruneError::StaleScores {
            reason: format!("site {:?} does not match network structure", self.kind),
        };
        match self.kind {
            SiteKind::Sequential { conv_idx } => net
                .layers()
                .get(conv_idx)
                .and_then(Layer::as_conv)
                .ok_or_else(stale),
            SiteKind::ResidualInternal { block_idx } => net
                .layers()
                .get(block_idx)
                .and_then(Layer::as_residual)
                .map(|b| b.conv1())
                .ok_or_else(stale),
        }
    }
}

/// Finds every prunable site in execution order.
///
/// # Example
///
/// ```
/// use cap_nn::layer::{Conv2d, GlobalAvgPool, Linear, Relu};
/// use cap_nn::Network;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = Network::new();
/// net.push(Conv2d::new(3, 8, 3, 1, 1, false, &mut rng)?);
/// net.push(Relu::new());
/// net.push(GlobalAvgPool::new());
/// net.push(Linear::new(8, 10, &mut rng)?);
/// let sites = cap_core::find_prunable_sites(&net);
/// assert_eq!(sites.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn find_prunable_sites(net: &Network) -> Vec<PrunableSite> {
    let layers = net.layers();
    let mut sites = Vec::new();
    let mut conv_counter = 0usize;
    let mut block_counter = 0usize;
    for (i, layer) in layers.iter().enumerate() {
        match layer {
            Layer::Conv(_) => {
                conv_counter += 1;
                if matches!(
                    consumer_of(layers, i),
                    Some(Consumer::Conv(_) | Consumer::Linear(_))
                ) {
                    sites.push(PrunableSite {
                        kind: SiteKind::Sequential { conv_idx: i },
                        label: format!("conv{conv_counter}"),
                    });
                }
            }
            Layer::Residual(_) => {
                block_counter += 1;
                sites.push(PrunableSite {
                    kind: SiteKind::ResidualInternal { block_idx: i },
                    label: format!("block{block_counter}.conv1"),
                });
            }
            _ => {}
        }
    }
    sites
}

/// The consumer of a convolution's output channels.
enum Consumer {
    Conv(usize),
    Linear(usize),
    Residual(usize),
}

/// Scans forward from layer `i` for the next layer whose input channel
/// count is coupled to layer `i`'s output channels. Pass-through layers
/// (ReLU, pooling, flatten, batch-norm) preserve channel identity.
fn consumer_of(layers: &[Layer], i: usize) -> Option<Consumer> {
    for (j, layer) in layers.iter().enumerate().skip(i + 1) {
        match layer {
            Layer::Conv(_) => return Some(Consumer::Conv(j)),
            Layer::Linear(_) => return Some(Consumer::Linear(j)),
            Layer::Residual(_) => return Some(Consumer::Residual(j)),
            Layer::BatchNorm(_)
            | Layer::Relu(_)
            | Layer::MaxPool(_)
            | Layer::GlobalAvgPool(_)
            | Layer::Flatten(_) => continue,
        }
    }
    None
}

/// Removes all filters *not* in `keep` from the convolution at `site`,
/// propagating the channel change to the following batch-norm and to the
/// consumer layer.
///
/// The per-filter copy loops of the surgery live in the layer methods
/// (`Conv2d::retain_output_channels` / `retain_input_channels`), which
/// distribute the surviving-weight copies across the `cap-par` pool;
/// they are pure permutation-selects, so the result is identical for
/// any thread count.
///
/// # Errors
///
/// * [`PruneError::StaleScores`] if `site` no longer matches the network.
/// * [`PruneError::UnsupportedTopology`] if the consumer cannot be
///   rewritten (a sequential conv feeding a residual block, or a linear
///   consumer not preceded by global average pooling).
/// * [`PruneError::Nn`] for invalid keep-sets.
pub fn apply_site_pruning(
    net: &mut Network,
    site: &PrunableSite,
    keep: &[usize],
) -> Result<(), PruneError> {
    let _span = cap_obs::span!("core.surgery");
    match site.kind {
        SiteKind::ResidualInternal { block_idx } => {
            let block = net
                .layers_mut()
                .get_mut(block_idx)
                .and_then(Layer::as_residual_mut)
                .ok_or_else(|| PruneError::StaleScores {
                    reason: format!("no residual block at layer {block_idx}"),
                })?;
            block.retain_internal_channels(keep)?;
            Ok(())
        }
        SiteKind::Sequential { conv_idx } => {
            // Identify the consumer before mutating anything.
            let consumer = match consumer_of(net.layers(), conv_idx) {
                Some(Consumer::Conv(j)) => Consumer::Conv(j),
                Some(Consumer::Linear(j)) => {
                    // The linear consumer is only rewritable when its input
                    // features are exactly the channels, i.e. a global
                    // average pool intervenes.
                    let has_gap = net.layers()[conv_idx + 1..j]
                        .iter()
                        .any(|l| matches!(l, Layer::GlobalAvgPool(_)));
                    if !has_gap {
                        return Err(PruneError::UnsupportedTopology {
                            reason: format!(
                                "linear consumer at layer {j} is not behind global average pooling"
                            ),
                        });
                    }
                    Consumer::Linear(j)
                }
                Some(Consumer::Residual(j)) => {
                    return Err(PruneError::UnsupportedTopology {
                        reason: format!(
                            "conv at layer {conv_idx} feeds residual block at {j}; pruning it would break the shortcut"
                        ),
                    })
                }
                None => {
                    return Err(PruneError::UnsupportedTopology {
                        reason: format!("conv at layer {conv_idx} has no rewritable consumer"),
                    })
                }
            };
            // 1. Shrink the producer.
            net.layers_mut()
                .get_mut(conv_idx)
                .and_then(Layer::as_conv_mut)
                .ok_or_else(|| PruneError::StaleScores {
                    reason: format!("no conv at layer {conv_idx}"),
                })?
                .retain_output_channels(keep)?;
            // 2. Shrink the adjacent batch-norm, if present.
            if let Some(Layer::BatchNorm(bn)) = net.layers_mut().get_mut(conv_idx + 1) {
                bn.retain_channels(keep)?;
            }
            // 3. Shrink the consumer's input side.
            match consumer {
                Consumer::Conv(j) => {
                    net.layers_mut()
                        .get_mut(j)
                        .and_then(Layer::as_conv_mut)
                        .ok_or_else(|| PruneError::StaleScores {
                            reason: format!("no conv at layer {j}"),
                        })?
                        .retain_input_channels(keep)?;
                }
                Consumer::Linear(j) => {
                    if let Some(Layer::Linear(lin)) = net.layers_mut().get_mut(j) {
                        lin.retain_input_features(keep)?;
                    } else {
                        return Err(PruneError::StaleScores {
                            reason: format!("no linear at layer {j}"),
                        });
                    }
                }
                Consumer::Residual(_) => unreachable!("rejected above"),
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_nn::layer::{BatchNorm2d, GlobalAvgPool, Linear, MaxPool2d, Relu, ResidualBlock};
    use cap_tensor::Tensor;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(17)
    }

    fn vgg_like(rng: &mut rand::rngs::StdRng) -> Network {
        let mut net = Network::new();
        net.push(Conv2d::new(3, 8, 3, 1, 1, false, rng).unwrap());
        net.push(BatchNorm2d::new(8).unwrap());
        net.push(Relu::new());
        net.push(MaxPool2d::new(2, 2).unwrap());
        net.push(Conv2d::new(8, 16, 3, 1, 1, false, rng).unwrap());
        net.push(BatchNorm2d::new(16).unwrap());
        net.push(Relu::new());
        net.push(GlobalAvgPool::new());
        net.push(Linear::new(16, 10, rng).unwrap());
        net
    }

    fn resnet_like(rng: &mut rand::rngs::StdRng) -> Network {
        let mut net = Network::new();
        net.push(Conv2d::new(3, 8, 3, 1, 1, false, rng).unwrap());
        net.push(BatchNorm2d::new(8).unwrap());
        net.push(Relu::new());
        net.push(ResidualBlock::new(8, 8, 1, rng).unwrap());
        net.push(ResidualBlock::new(8, 16, 2, rng).unwrap());
        net.push(GlobalAvgPool::new());
        net.push(Linear::new(16, 10, rng).unwrap());
        net
    }

    #[test]
    fn vgg_sites_are_all_convs() {
        let net = vgg_like(&mut rng());
        let sites = find_prunable_sites(&net);
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].label, "conv1");
        assert_eq!(sites[1].label, "conv2");
        assert_eq!(sites[0].filters(&net).unwrap(), 8);
    }

    #[test]
    fn resnet_stem_is_not_prunable() {
        let net = resnet_like(&mut rng());
        let sites = find_prunable_sites(&net);
        // Only the two block-internal sites; the stem feeds a residual.
        assert_eq!(sites.len(), 2);
        assert!(sites
            .iter()
            .all(|s| matches!(s.kind, SiteKind::ResidualInternal { .. })));
    }

    #[test]
    fn sequential_pruning_rewrites_bn_and_next_conv() {
        let mut net = vgg_like(&mut rng());
        let sites = find_prunable_sites(&net);
        apply_site_pruning(&mut net, &sites[0], &[0, 2, 5]).unwrap();
        let c0 = net.layers()[0].as_conv().unwrap();
        assert_eq!(c0.out_channels(), 3);
        let c1 = net.layers()[4].as_conv().unwrap();
        assert_eq!(c1.in_channels(), 3);
        // Forward still works end to end.
        let x = Tensor::zeros(&[1, 3, 8, 8]);
        let y = net.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &[1, 10]);
    }

    #[test]
    fn last_conv_pruning_rewrites_linear() {
        let mut net = vgg_like(&mut rng());
        let sites = find_prunable_sites(&net);
        apply_site_pruning(&mut net, &sites[1], &[1, 3, 8, 15]).unwrap();
        if let Layer::Linear(l) = &net.layers()[8] {
            assert_eq!(l.in_features(), 4);
        } else {
            panic!("layer 8 should be linear");
        }
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        assert_eq!(net.forward(&x, false).unwrap().shape(), &[2, 10]);
    }

    #[test]
    fn residual_internal_pruning_preserves_interface() {
        let mut net = resnet_like(&mut rng());
        let sites = find_prunable_sites(&net);
        apply_site_pruning(&mut net, &sites[0], &[0, 4]).unwrap();
        apply_site_pruning(&mut net, &sites[1], &[2, 7, 9]).unwrap();
        let x = Tensor::zeros(&[1, 3, 8, 8]);
        assert_eq!(net.forward(&x, false).unwrap().shape(), &[1, 10]);
    }

    #[test]
    fn pruning_exact_zero_filters_preserves_outputs() {
        // Zero out two filters of conv1 and the corresponding BN scales;
        // removing them must leave the network function unchanged.
        let mut net = vgg_like(&mut rng());
        let x = cap_tensor::randn(&[2, 3, 8, 8], 0.0, 1.0, &mut rng());
        // Warm BN running stats so eval mode is meaningful.
        for _ in 0..30 {
            net.forward(&x, true).unwrap();
        }
        let kill = [1usize, 6];
        if let Some(c) = net.layers_mut()[0].as_conv_mut() {
            let (in_c, k) = (c.in_channels(), c.kernel());
            for &f in &kill {
                let fsize = in_c * k * k;
                for v in &mut c.weight_mut().data_mut()[f * fsize..(f + 1) * fsize] {
                    *v = 0.0;
                }
            }
        }
        if let Layer::BatchNorm(bn) = &mut net.layers_mut()[1] {
            for &f in &kill {
                bn.gamma_mut().data_mut()[f] = 0.0;
            }
        }
        // Re-warm running stats with the zeroed filters so that eval-mode
        // BN maps the dead channels to exactly beta = 0.
        for _ in 0..60 {
            net.forward(&x, true).unwrap();
        }
        let before = net.forward(&x, false).unwrap();
        let keep: Vec<usize> = (0..8).filter(|i| !kill.contains(i)).collect();
        let sites = find_prunable_sites(&net);
        apply_site_pruning(&mut net, &sites[0], &keep).unwrap();
        let after = net.forward(&x, false).unwrap();
        for (a, b) in before.data().iter().zip(after.data()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn invalid_keep_sets_rejected() {
        let mut net = vgg_like(&mut rng());
        let sites = find_prunable_sites(&net);
        assert!(apply_site_pruning(&mut net, &sites[0], &[]).is_err());
        assert!(apply_site_pruning(&mut net, &sites[0], &[9]).is_err());
    }

    #[test]
    fn stale_site_detected() {
        let net = vgg_like(&mut rng());
        let bogus = PrunableSite {
            kind: SiteKind::Sequential { conv_idx: 2 },
            label: "bogus".to_string(),
        };
        assert!(bogus.conv(&net).is_err());
    }
}
