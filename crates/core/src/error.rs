use cap_data::DataError;
use cap_nn::NnError;
use cap_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Errors produced by the pruning framework.
#[derive(Debug, Clone, PartialEq)]
pub enum PruneError {
    /// A neural-network operation failed.
    Nn(NnError),
    /// A tensor kernel failed.
    Tensor(TensorError),
    /// A dataset operation failed.
    Data(DataError),
    /// The network topology is not supported by the pruning surgery
    /// (e.g. a pruned convolution feeding a consumer the surgery cannot
    /// rewrite).
    UnsupportedTopology {
        /// Human-readable description.
        reason: String,
    },
    /// A configuration value is out of range.
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
    /// Scores and network structure disagree (stale scores after surgery).
    StaleScores {
        /// Human-readable description.
        reason: String,
    },
    /// The durable run directory (checkpoints/journal) failed or is
    /// inconsistent with the requested run. Carries the stringified
    /// cause chain so the error stays `Clone + PartialEq`.
    Persistence {
        /// Human-readable description including the cause chain.
        reason: String,
    },
}

impl fmt::Display for PruneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PruneError::Nn(e) => write!(f, "network error: {e}"),
            PruneError::Tensor(e) => write!(f, "tensor error: {e}"),
            PruneError::Data(e) => write!(f, "data error: {e}"),
            PruneError::UnsupportedTopology { reason } => {
                write!(f, "unsupported topology: {reason}")
            }
            PruneError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            PruneError::StaleScores { reason } => write!(f, "stale scores: {reason}"),
            PruneError::Persistence { reason } => write!(f, "run persistence: {reason}"),
        }
    }
}

impl Error for PruneError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PruneError::Nn(e) => Some(e),
            PruneError::Tensor(e) => Some(e),
            PruneError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for PruneError {
    fn from(e: NnError) -> Self {
        PruneError::Nn(e)
    }
}

impl From<TensorError> for PruneError {
    fn from(e: TensorError) -> Self {
        PruneError::Tensor(e)
    }
}

impl From<DataError> for PruneError {
    fn from(e: DataError) -> Self {
        PruneError::Data(e)
    }
}
