//! Pruning strategies (paper Sec. III-C and Table II).
//!
//! The paper combines an importance-score **threshold** (filters important
//! for fewer than `θ` classes are candidates; `θ = 3` for 10 classes,
//! `θ = 30` for 100 classes, i.e. 30% of the class count) with a
//! per-iteration **percentage cap** ("no more than 10%") to keep pruning
//! granularity fine. Table II ablates the two components.

use crate::{NetworkScores, PruneError};

/// A per-iteration filter-selection strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PruneStrategy {
    /// Remove every filter whose class-count score is below `threshold`.
    Threshold {
        /// Score threshold (same units as the class count).
        threshold: f64,
    },
    /// Remove the globally lowest-scoring `fraction` of all filters.
    Percentage {
        /// Fraction of all filters to remove, in `(0, 1)`.
        fraction: f64,
    },
    /// The paper's combination: filters below `threshold`, but at most
    /// `max_fraction` of all filters per iteration.
    Combined {
        /// Score threshold.
        threshold: f64,
        /// Per-iteration cap, in `(0, 1)`.
        max_fraction: f64,
    },
}

impl PruneStrategy {
    /// The paper's default for a dataset with `classes` classes:
    /// threshold `0.3 · classes` (3 for CIFAR-10, 30 for CIFAR-100) with a
    /// 10% per-iteration cap.
    pub fn paper_combined(classes: usize) -> Self {
        PruneStrategy::Combined {
            threshold: threshold_for_classes(classes),
            max_fraction: 0.10,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            PruneStrategy::Threshold { .. } => "threshold",
            PruneStrategy::Percentage { .. } => "percentage",
            PruneStrategy::Combined { .. } => "percentage+threshold",
        }
    }

    /// Validates strategy parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::InvalidConfig`] for out-of-range thresholds
    /// or fractions.
    pub fn validate(&self) -> Result<(), PruneError> {
        let check_fraction = |f: f64| -> Result<(), PruneError> {
            if !(f.is_finite() && f > 0.0 && f < 1.0) {
                return Err(PruneError::InvalidConfig {
                    reason: format!("fraction {f} must lie in (0, 1)"),
                });
            }
            Ok(())
        };
        match *self {
            PruneStrategy::Threshold { threshold } | PruneStrategy::Combined { threshold, .. }
                if !(threshold.is_finite() && threshold >= 0.0) =>
            {
                Err(PruneError::InvalidConfig {
                    reason: format!("threshold {threshold} must be finite and non-negative"),
                })
            }
            PruneStrategy::Percentage { fraction } => check_fraction(fraction),
            PruneStrategy::Combined { max_fraction, .. } => check_fraction(max_fraction),
            PruneStrategy::Threshold { .. } => Ok(()),
        }
    }
}

/// The paper's dataset-dependent threshold: 30% of the class count.
pub fn threshold_for_classes(classes: usize) -> f64 {
    0.3 * classes as f64
}

/// Which filters to remove at each site this iteration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PruneSelection {
    /// `remove[site_index]` lists filter indices to remove, strictly
    /// increasing. Sites may have empty lists.
    pub remove: Vec<Vec<usize>>,
}

impl PruneSelection {
    /// Total number of filters selected for removal.
    pub fn total_removed(&self) -> usize {
        self.remove.iter().map(Vec::len).sum()
    }

    /// Whether nothing was selected (the framework's stop condition).
    pub fn is_empty(&self) -> bool {
        self.total_removed() == 0
    }

    /// The keep-set for a site (complement of the removal set).
    pub fn keep_for(&self, site_index: usize, filters: usize) -> Vec<usize> {
        let remove = &self.remove[site_index];
        (0..filters).filter(|i| !remove.contains(i)).collect()
    }
}

/// Selects filters to prune according to `strategy`.
///
/// Every site always retains at least one filter, regardless of strategy
/// — removing a whole layer would change the topology, which the paper
/// never does.
///
/// # Errors
///
/// Returns [`PruneError::InvalidConfig`] for invalid strategy parameters.
pub fn select_filters(
    scores: &NetworkScores,
    strategy: &PruneStrategy,
) -> Result<PruneSelection, PruneError> {
    strategy.validate()?;
    let total = scores.total_filters();
    if total == 0 {
        return Ok(PruneSelection {
            remove: vec![Vec::new(); scores.sites.len()],
        });
    }
    // Candidate pool as (score, site, filter), depending on strategy.
    let mut candidates: Vec<(f64, usize, usize)> = match *strategy {
        PruneStrategy::Threshold { threshold } => scores
            .iter_scores()
            .filter(|&(_, _, v)| v < threshold)
            .map(|(s, f, v)| (v, s, f))
            .collect(),
        PruneStrategy::Percentage { .. } => {
            scores.iter_scores().map(|(s, f, v)| (v, s, f)).collect()
        }
        PruneStrategy::Combined { threshold, .. } => scores
            .iter_scores()
            .filter(|&(_, _, v)| v < threshold)
            .map(|(s, f, v)| (v, s, f))
            .collect(),
    };
    // Lowest scores first; ties broken by (site, filter) for determinism.
    candidates.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
    });
    let cap = match *strategy {
        PruneStrategy::Threshold { .. } => candidates.len(),
        PruneStrategy::Percentage { fraction } => {
            ((total as f64 * fraction).floor() as usize).max(1)
        }
        PruneStrategy::Combined { max_fraction, .. } => {
            ((total as f64 * max_fraction).floor() as usize).max(1)
        }
    };
    let mut remove: Vec<Vec<usize>> = vec![Vec::new(); scores.sites.len()];
    let mut site_remaining: Vec<usize> = scores.sites.iter().map(|s| s.scores.len()).collect();
    let mut taken = 0usize;
    for (_, site, filter) in candidates {
        if taken >= cap {
            break;
        }
        if site_remaining[site] <= 1 {
            continue; // never empty a site
        }
        remove[site].push(filter);
        site_remaining[site] -= 1;
        taken += 1;
    }
    for r in &mut remove {
        r.sort_unstable();
    }
    Ok(PruneSelection { remove })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SiteScores;

    fn scores(site_scores: Vec<Vec<f64>>) -> NetworkScores {
        NetworkScores {
            sites: site_scores
                .into_iter()
                .enumerate()
                .map(|(i, scores)| SiteScores {
                    label: format!("site{i}"),
                    scores,
                })
                .collect(),
            classes: 10,
        }
    }

    #[test]
    fn threshold_removes_only_low_scores() {
        let s = scores(vec![vec![0.0, 5.0, 2.0], vec![9.0, 1.0]]);
        let sel = select_filters(&s, &PruneStrategy::Threshold { threshold: 3.0 }).unwrap();
        assert_eq!(sel.remove[0], vec![0, 2]);
        assert_eq!(sel.remove[1], vec![1]);
        assert_eq!(sel.total_removed(), 3);
    }

    #[test]
    fn percentage_removes_lowest_fraction_globally() {
        let s = scores(vec![vec![0.0, 5.0, 2.0, 7.0], vec![9.0, 1.0, 8.0, 6.0]]);
        let sel = select_filters(&s, &PruneStrategy::Percentage { fraction: 0.25 }).unwrap();
        // 8 filters * 0.25 = 2 removals: scores 0.0 and 1.0.
        assert_eq!(sel.total_removed(), 2);
        assert_eq!(sel.remove[0], vec![0]);
        assert_eq!(sel.remove[1], vec![1]);
    }

    #[test]
    fn combined_caps_threshold_candidates() {
        let s = scores(vec![vec![0.0, 0.5, 1.0, 2.0, 9.0, 9.0, 9.0, 9.0]]);
        let sel = select_filters(
            &s,
            &PruneStrategy::Combined {
                threshold: 3.0,
                max_fraction: 0.25,
            },
        )
        .unwrap();
        // 4 candidates below 3.0 but cap = floor(8 * 0.25) = 2.
        assert_eq!(sel.total_removed(), 2);
        assert_eq!(sel.remove[0], vec![0, 1]);
    }

    #[test]
    fn never_empties_a_site() {
        let s = scores(vec![vec![0.0, 0.0], vec![0.0]]);
        let sel = select_filters(&s, &PruneStrategy::Threshold { threshold: 5.0 }).unwrap();
        // Site 0 keeps one of two, site 1 keeps its only filter.
        assert_eq!(sel.remove[0].len(), 1);
        assert!(sel.remove[1].is_empty());
        let keep = sel.keep_for(0, 2);
        assert_eq!(keep.len(), 1);
    }

    #[test]
    fn empty_selection_when_all_above_threshold() {
        let s = scores(vec![vec![9.0, 8.0]]);
        let sel = select_filters(&s, &PruneStrategy::Threshold { threshold: 3.0 }).unwrap();
        assert!(sel.is_empty());
    }

    #[test]
    fn paper_combined_threshold_scales_with_classes() {
        assert_eq!(threshold_for_classes(10), 3.0);
        assert_eq!(threshold_for_classes(100), 30.0);
        let strat = PruneStrategy::paper_combined(10);
        assert!(matches!(
            strat,
            PruneStrategy::Combined { threshold, max_fraction }
                if (threshold - 3.0).abs() < 1e-12 && (max_fraction - 0.1).abs() < 1e-12
        ));
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(PruneStrategy::Percentage { fraction: 0.0 }
            .validate()
            .is_err());
        assert!(PruneStrategy::Percentage { fraction: 1.0 }
            .validate()
            .is_err());
        assert!(PruneStrategy::Threshold { threshold: -1.0 }
            .validate()
            .is_err());
        assert!(PruneStrategy::Combined {
            threshold: f64::NAN,
            max_fraction: 0.1
        }
        .validate()
        .is_err());
        assert!(PruneStrategy::paper_combined(10).validate().is_ok());
    }

    #[test]
    fn deterministic_tie_breaking() {
        let s = scores(vec![vec![1.0, 1.0, 1.0, 1.0]]);
        let a = select_filters(&s, &PruneStrategy::Percentage { fraction: 0.5 }).unwrap();
        let b = select_filters(&s, &PruneStrategy::Percentage { fraction: 0.5 }).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.remove[0], vec![0, 1]);
    }
}
