#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

//! Class-aware filter pruning — the primary contribution of
//! *Class-Aware Pruning for Efficient Neural Networks* (DATE 2024),
//! reproduced in Rust.
//!
//! The crate provides the full pipeline of the paper's Fig. 5:
//!
//! 1. **Importance scoring** ([`evaluate_scores`], Sec. III-B / Eq. 3–7):
//!    how many classes each filter is important for, via per-class
//!    first-order Taylor scores of the filter's activation outputs.
//! 2. **Strategy** ([`select_filters`], [`PruneStrategy`], Sec. III-C):
//!    threshold, percentage, or the paper's combination.
//! 3. **Surgery** ([`apply_site_pruning`]): physical removal of filters
//!    with channel propagation into batch-norm and consumer layers; on
//!    residual networks only block-internal widths are pruned, matching
//!    the paper's ResNet56 constraint.
//! 4. **Framework** ([`ClassAwarePruner`]): iterate score → prune →
//!    fine-tune until no filter is prunable or accuracy is unrecoverable.
//!
//! FLOPs/parameter accounting ([`analyze_network`]) backs the tables'
//! "Prun. ratio" and "FLOPs red." columns, and [`ScoreHistogram`] /
//! [`layerwise_mean_scores`] regenerate Fig. 4, 7 and 8.
//!
//! # Example
//!
//! ```no_run
//! use cap_core::{ClassAwarePruner, PruneConfig};
//! use cap_data::{DatasetSpec, SyntheticDataset};
//! use cap_models::{vgg16, ModelConfig};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = SyntheticDataset::generate(&DatasetSpec::cifar10_like())?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = vgg16(&ModelConfig::new(10), &mut rng)?;
//! // ... train `net` first (see cap_nn::fit) ...
//! let pruner = ClassAwarePruner::new(PruneConfig::default())?;
//! let outcome = pruner.run(&mut net, data.train(), data.test())?;
//! println!(
//!     "pruning ratio {:.1}%, FLOPs reduction {:.1}%",
//!     outcome.pruning_ratio() * 100.0,
//!     outcome.flops_reduction() * 100.0
//! );
//! # Ok(())
//! # }
//! ```

mod error;
mod flops;
mod framework;
mod report;
mod score;
mod site;
mod strategy;
mod unstructured;

pub use error::PruneError;
pub use flops::{analyze_network, FlopsReport, LayerCost};
pub use framework::{ClassAwarePruner, IterationRecord, PruneConfig, PruneOutcome, StopReason};
pub use report::{layerwise_mean_scores, ScoreHistogram};
pub use score::{
    evaluate_scores, evaluate_scores_with_attribution, ClassAttribution, NetworkScores,
    ScoreConfig, SiteAttribution, SiteScores, TauMode,
};
pub use site::{apply_site_pruning, find_prunable_sites, PrunableSite, SiteKind};
pub use strategy::{select_filters, threshold_for_classes, PruneSelection, PruneStrategy};
pub use unstructured::{prune_weights_by_magnitude, sparsity, SparsityReport};
