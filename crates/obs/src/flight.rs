//! The flight recorder: bounded per-thread ring buffers of recent
//! telemetry, exportable as chrome://tracing "trace event" JSON.
//!
//! # Model
//!
//! Each thread that records gets its own fixed-capacity ring guarded by
//! its own mutex; the hot path locks only that (uncontended) mutex, so
//! recording never serialises threads against each other — the global
//! lock is taken only when a new thread registers its ring and when an
//! exporter walks all rings. When a ring is full the oldest record is
//! overwritten, which is exactly the "last N seconds before the stall"
//! semantics a post-mortem wants.
//!
//! # What gets recorded
//!
//! * Completed spans (from [`crate::span!`] guards) as chrome "complete"
//!   (`ph:"X"`) events with microsecond `ts`/`dur`.
//! * Emitted [`crate::Event`]s as chrome "instant" (`ph:"i"`) events.
//!
//! Recording happens only while both the master obs gate and the
//! flight gate ([`enable`]) are on; the extra cost on the disabled path
//! is one relaxed atomic load inside already-enabled code.
//!
//! # Export
//!
//! [`export_chrome_trace`] renders every ring as one JSON array in the
//! trace-event format, sorted by timestamp — load it at
//! `chrome://tracing` or <https://ui.perfetto.dev>. [`dump_to_file`]
//! writes the same artifact to disk (the `cap-par` watchdog calls this
//! when a batch blows its deadline).

use crate::json;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default per-thread ring capacity (records, not bytes).
pub const DEFAULT_CAPACITY: usize = 4096;

static FLIGHT_ENABLED: AtomicBool = AtomicBool::new(false);
/// Capacity applied to rings created after [`enable_with_capacity`].
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
/// Monotonic recorder thread ids (`ThreadId::as_u64` is unstable).
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// One record in a ring.
#[derive(Debug, Clone)]
enum Record {
    /// A completed span: full nested path, start offset and duration in
    /// microseconds since obs start.
    Span {
        path: String,
        ts_us: f64,
        dur_us: f64,
    },
    /// An emitted event, as an instant marker.
    Instant { kind: &'static str, ts_us: f64 },
}

struct Ring {
    slots: Vec<Record>,
    /// Next write position once the ring has wrapped.
    next: usize,
    /// Total records ever written (≥ `slots.len()` once wrapped).
    written: u64,
    capacity: usize,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Ring {
            slots: Vec::with_capacity(capacity.min(1024)),
            next: 0,
            written: 0,
            capacity: capacity.max(1),
        }
    }

    fn push(&mut self, record: Record) {
        if self.slots.len() < self.capacity {
            self.slots.push(record);
        } else {
            self.slots[self.next] = record;
            self.next = (self.next + 1) % self.capacity;
        }
        self.written += 1;
    }

    /// Records in insertion order (oldest first).
    fn ordered(&self) -> Vec<Record> {
        let mut out = Vec::with_capacity(self.slots.len());
        out.extend_from_slice(&self.slots[self.next..]);
        out.extend_from_slice(&self.slots[..self.next]);
        out
    }
}

struct ThreadRing {
    tid: u64,
    name: String,
    ring: Arc<Mutex<Ring>>,
}

fn rings() -> &'static Mutex<Vec<ThreadRing>> {
    static RINGS: OnceLock<Mutex<Vec<ThreadRing>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_RING: RefCell<Option<Arc<Mutex<Ring>>>> = const { RefCell::new(None) };
}

/// Whether the flight recorder is on. One relaxed load.
#[inline]
pub fn enabled() -> bool {
    FLIGHT_ENABLED.load(Ordering::Relaxed)
}

/// Turns the recorder on with the default per-thread capacity
/// ([`DEFAULT_CAPACITY`] records). Also requires the master obs gate
/// ([`crate::enable`]) for anything to be recorded.
pub fn enable() {
    enable_with_capacity(DEFAULT_CAPACITY);
}

/// Turns the recorder on with an explicit per-thread ring capacity.
/// Rings already created keep their old capacity until [`clear`].
pub fn enable_with_capacity(capacity: usize) {
    CAPACITY.store(capacity.max(1), Ordering::Relaxed);
    FLIGHT_ENABLED.store(true, Ordering::Release);
}

/// Turns the recorder on with the per-thread capacity from the
/// `CAP_FLIGHT_CAP` environment variable (a positive record count);
/// falls back to [`DEFAULT_CAPACITY`] when unset or unparsable.
pub fn enable_from_env() {
    match std::env::var("CAP_FLIGHT_CAP")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n > 0 => enable_with_capacity(n),
        _ => enable(),
    }
}

/// Turns the recorder off (rings keep their contents for export).
pub fn disable() {
    FLIGHT_ENABLED.store(false, Ordering::Release);
}

/// Empties every ring (test isolation; also applies a changed capacity).
pub fn clear() {
    let mut all = rings().lock().unwrap();
    all.retain(|tr| Arc::strong_count(&tr.ring) > 1);
    for tr in all.iter() {
        let mut ring = tr.ring.lock().unwrap();
        *ring = Ring::new(CAPACITY.load(Ordering::Relaxed));
    }
}

/// Runs `f` with the calling thread's ring, creating and registering it
/// on first use.
fn with_local_ring(f: impl FnOnce(&mut Ring)) {
    LOCAL_RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        if slot.is_none() {
            let ring = Arc::new(Mutex::new(Ring::new(CAPACITY.load(Ordering::Relaxed))));
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current()
                .name()
                .unwrap_or("thread")
                .to_string();
            rings().lock().unwrap().push(ThreadRing {
                tid,
                name,
                ring: Arc::clone(&ring),
            });
            *slot = Some(ring);
        }
        let ring = slot.as_ref().expect("local ring installed above");
        f(&mut ring.lock().unwrap());
    });
}

/// Records a completed span. Called by the span guard on drop when both
/// gates are on; `ts_us`/`dur_us` are microseconds since obs start.
pub(crate) fn record_span(path: &str, ts_us: f64, dur_us: f64) {
    with_local_ring(|ring| {
        ring.push(Record::Span {
            path: path.to_string(),
            ts_us,
            dur_us,
        });
    });
}

/// Records an emitted event as an instant marker. Called by
/// [`crate::emit`] when both gates are on.
pub(crate) fn record_instant(kind: &'static str, t_secs: f64) {
    with_local_ring(|ring| {
        ring.push(Record::Instant {
            kind,
            ts_us: t_secs * 1e6,
        });
    });
}

/// Total records currently buffered across every thread's ring.
pub fn buffered_records() -> usize {
    rings()
        .lock()
        .unwrap()
        .iter()
        .map(|tr| tr.ring.lock().unwrap().slots.len())
        .sum()
}

/// Renders every ring as one chrome://tracing "trace event" JSON array,
/// sorted by timestamp. Spans become `ph:"X"` complete events
/// (microsecond `ts` + `dur`), emitted events become `ph:"i"` instants,
/// and each recording thread contributes a `thread_name` metadata
/// record.
pub fn export_chrome_trace() -> String {
    struct Row {
        ts_us: f64,
        json: String,
    }
    let mut meta = Vec::new();
    let mut rows: Vec<Row> = Vec::new();
    {
        let all = rings().lock().unwrap();
        for tr in all.iter() {
            let mut m = String::new();
            m.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
            m.push_str(&tr.tid.to_string());
            m.push_str(",\"args\":{\"name\":");
            json::write_str(&mut m, &tr.name);
            m.push_str("}}");
            meta.push(m);
            for record in tr.ring.lock().unwrap().ordered() {
                let mut s = String::with_capacity(96);
                match &record {
                    Record::Span {
                        path,
                        ts_us,
                        dur_us,
                    } => {
                        s.push_str("{\"name\":");
                        json::write_str(&mut s, path);
                        s.push_str(",\"cat\":\"span\",\"ph\":\"X\",\"pid\":1,\"tid\":");
                        s.push_str(&tr.tid.to_string());
                        s.push_str(",\"ts\":");
                        json::write_f64(&mut s, (ts_us * 1e3).round() / 1e3);
                        s.push_str(",\"dur\":");
                        json::write_f64(&mut s, (dur_us * 1e3).round() / 1e3);
                        s.push('}');
                        rows.push(Row {
                            ts_us: *ts_us,
                            json: s,
                        });
                    }
                    Record::Instant { kind, ts_us } => {
                        s.push_str("{\"name\":");
                        json::write_str(&mut s, kind);
                        s.push_str(
                            ",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":",
                        );
                        s.push_str(&tr.tid.to_string());
                        s.push_str(",\"ts\":");
                        json::write_f64(&mut s, (ts_us * 1e3).round() / 1e3);
                        s.push('}');
                        rows.push(Row {
                            ts_us: *ts_us,
                            json: s,
                        });
                    }
                }
            }
        }
    }
    rows.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));
    let mut out = String::with_capacity(2 + meta.len() * 64 + rows.len() * 96);
    out.push('[');
    let mut first = true;
    for piece in meta.into_iter().chain(rows.into_iter().map(|r| r.json)) {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(&piece);
    }
    out.push_str("\n]\n");
    out
}

/// Writes [`export_chrome_trace`] to `path` atomically (temp file +
/// rename via [`crate::fsx::atomic_write`]), so a crash mid-dump can
/// never leave a torn trace that chrome://tracing half-parses.
///
/// # Errors
///
/// Returns the formatted I/O error when the file cannot be written.
pub fn dump_to_file(path: &str) -> Result<(), String> {
    crate::fsx::atomic_write_str(path, export_chrome_trace().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_flight(f: impl FnOnce()) {
        let _guard = crate::test_lock();
        crate::reset();
        crate::enable();
        enable();
        clear();
        f();
        disable();
        crate::disable();
        crate::reset();
    }

    #[test]
    fn ring_overwrites_oldest_beyond_capacity() {
        let mut ring = Ring::new(3);
        for i in 0..5 {
            ring.push(Record::Instant {
                kind: "tick",
                ts_us: i as f64,
            });
        }
        assert_eq!(ring.written, 5);
        let ordered = ring.ordered();
        assert_eq!(ordered.len(), 3);
        let ts: Vec<f64> = ordered
            .iter()
            .map(|r| match r {
                Record::Instant { ts_us, .. } => *ts_us,
                Record::Span { ts_us, .. } => *ts_us,
            })
            .collect();
        assert_eq!(ts, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn spans_and_events_become_a_valid_trace() {
        with_flight(|| {
            {
                let _outer = crate::SpanGuard::enter("outer");
                let _inner = crate::SpanGuard::enter("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            crate::emit(crate::Event::new("marker").u64("n", 1));
            assert!(buffered_records() >= 3);
            let trace = export_chrome_trace();
            let parsed = json::parse(&trace).unwrap();
            let json::Json::Arr(items) = parsed else {
                panic!("trace must be a JSON array");
            };
            let mut saw_span = false;
            let mut saw_instant = false;
            let mut last_ts = f64::NEG_INFINITY;
            for item in &items {
                let ph = item.get("ph").and_then(|p| p.as_str()).unwrap();
                if ph == "M" {
                    continue;
                }
                let ts = item.get("ts").and_then(|t| t.as_f64()).unwrap();
                assert!(ts >= last_ts, "events must be ts-sorted");
                last_ts = ts;
                if ph == "X" {
                    saw_span = true;
                    let dur = item.get("dur").and_then(|d| d.as_f64()).unwrap();
                    assert!(dur >= 0.0);
                }
                if ph == "i" {
                    saw_instant = true;
                }
            }
            assert!(saw_span && saw_instant, "{trace}");
        });
    }

    #[test]
    fn disabled_recorder_buffers_nothing() {
        let _guard = crate::test_lock();
        crate::reset();
        crate::enable();
        disable();
        clear();
        {
            let _span = crate::SpanGuard::enter("ghost");
        }
        assert_eq!(buffered_records(), 0);
        crate::disable();
        crate::reset();
    }

    #[test]
    fn worker_threads_get_their_own_rings() {
        with_flight(|| {
            let threads: Vec<_> = (0..3)
                .map(|_| {
                    std::thread::spawn(|| {
                        let _span = crate::SpanGuard::enter("worker_side");
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            {
                let _span = crate::SpanGuard::enter("main_side");
            }
            let trace = export_chrome_trace();
            let parsed = json::parse(&trace).unwrap();
            let json::Json::Arr(items) = parsed else {
                panic!("not an array")
            };
            let tids: std::collections::BTreeSet<u64> = items
                .iter()
                .filter(|i| i.get("ph").and_then(|p| p.as_str()) == Some("X"))
                .map(|i| i.get("tid").and_then(|t| t.as_u64()).unwrap())
                .collect();
            assert!(tids.len() >= 4, "expected ≥4 distinct tids, got {tids:?}");
        });
    }
}
