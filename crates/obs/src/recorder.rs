//! The sampling recorder: a background thread that snapshots the
//! metrics registry into a run directory's `series.capts` on a fixed
//! cadence, plus an explicit hook for pruning-iteration boundaries.
//!
//! One recorder runs per process (like the [`crate::serve`] global
//! server). Cadence samples are buffered appends — crash safety comes
//! from the store's torn-tail truncation — while boundary samples and
//! shutdown are fsync'd, so the durable history always includes every
//! completed pruning iteration. Every ingested sample is also pushed
//! through the [`crate::alerts`] engine and into a bounded in-memory
//! ring that backs the `/api/series` and `/dash` routes.
//!
//! The recorder only *reads* shared state (the registry) and writes a
//! side file; it never feeds anything back into the computation, so the
//! workspace determinism contract (bit-identical results at any
//! `CAP_THREADS`, with or without telemetry) is unaffected by the
//! sampling cadence.

use crate::tsdb::{Sample, SeriesWriter, TsdbError};
use std::collections::VecDeque;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Samples kept in the in-memory ring for live queries.
const MEM_CAP: usize = 4096;

/// Default sampling cadence (overridden by `CAP_RECORD_MS`).
pub const DEFAULT_INTERVAL_MS: u64 = 250;

struct Shared {
    writer: Mutex<SeriesWriter>,
    mem: Mutex<VecDeque<Sample>>,
    stop: AtomicBool,
}

struct Recorder {
    shared: Arc<Shared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

fn global_slot() -> &'static Mutex<Option<Recorder>> {
    static GLOBAL: OnceLock<Mutex<Option<Recorder>>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(None))
}

/// Takes one sample: snapshot → append → memory ring → alert rules.
fn sample_once(shared: &Shared, durable: bool) -> Result<(), TsdbError> {
    let points = crate::tsdb::snapshot_points();
    let t = crate::uptime_secs();
    let sample = {
        let mut writer = shared.writer.lock().unwrap();
        writer.append(t, points, durable)?
    };
    crate::alerts::evaluate_sample(&sample);
    let mut mem = shared.mem.lock().unwrap();
    if mem.len() == MEM_CAP {
        mem.pop_front();
    }
    mem.push_back(sample);
    Ok(())
}

/// The cadence in effect: `CAP_RECORD_MS` or [`DEFAULT_INTERVAL_MS`].
pub fn interval_from_env() -> Duration {
    let ms = std::env::var("CAP_RECORD_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(DEFAULT_INTERVAL_MS);
    Duration::from_millis(ms)
}

/// Starts the process-global recorder writing to `path`, sampling every
/// `interval`. Returns `false` (and leaves the running recorder alone)
/// if one is already active — the first run-scoped start wins.
///
/// Turns the master obs gate on: a history recording with the
/// gauge/counter pipeline disabled would be a file of empty samples.
///
/// # Errors
///
/// Propagates store open/append failures as strings.
pub fn start_global(path: &Path, interval: Duration) -> Result<bool, String> {
    let mut slot = global_slot().lock().unwrap();
    if slot.is_some() {
        return Ok(false);
    }
    crate::enable();
    let writer = SeriesWriter::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    let shared = Arc::new(Shared {
        writer: Mutex::new(writer),
        mem: Mutex::new(VecDeque::new()),
        stop: AtomicBool::new(false),
    });
    // First sample immediately, durable: a run that crashes before the
    // first cadence tick still leaves a history anchor behind.
    sample_once(&shared, true).map_err(|e| format!("series append: {e}"))?;
    let thread_shared = Arc::clone(&shared);
    let handle = std::thread::Builder::new()
        .name("cap-obs-recorder".to_string())
        .spawn(move || run_loop(&thread_shared, interval))
        .map_err(|e| format!("spawn cap-obs-recorder: {e}"))?;
    *slot = Some(Recorder {
        shared,
        handle: Some(handle),
    });
    Ok(true)
}

fn run_loop(shared: &Shared, interval: Duration) {
    // Sleep in short slices so stop_global() never waits a full
    // interval; 20 ms keeps shutdown prompt at any cadence.
    let slice = Duration::from_millis(20).min(interval);
    let mut elapsed = Duration::ZERO;
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        std::thread::sleep(slice);
        elapsed += slice;
        if elapsed >= interval {
            elapsed = Duration::ZERO;
            if sample_once(shared, false).is_err() {
                // A dead disk should not kill the run; stop sampling.
                return;
            }
        }
    }
}

/// Whether the global recorder is running.
pub fn active() -> bool {
    global_slot().lock().unwrap().is_some()
}

/// Takes one fsync'd sample right now (pruning-iteration boundaries).
/// No-op without a running recorder.
pub fn record_boundary_sample() {
    let slot = global_slot().lock().unwrap();
    if let Some(rec) = slot.as_ref() {
        let _ = sample_once(&rec.shared, true);
    }
}

/// Stops the global recorder: one final fsync'd sample, joins the
/// thread. No-op when none is running.
pub fn stop_global() {
    let rec = global_slot().lock().unwrap().take();
    let Some(mut rec) = rec else {
        return;
    };
    rec.shared.stop.store(true, Ordering::Release);
    if let Some(handle) = rec.handle.take() {
        let _ = handle.join();
    }
    let _ = sample_once(&rec.shared, true);
}

/// A copy of the in-memory sample ring (live `/dash` and `/api/series`
/// source). Empty when no recorder is running.
pub fn memory_samples() -> Vec<Sample> {
    let slot = global_slot().lock().unwrap();
    match slot.as_ref() {
        Some(rec) => rec.shared.mem.lock().unwrap().iter().cloned().collect(),
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_boundary_samples_and_survives_restart() {
        let _guard = crate::test_lock();
        crate::reset();
        crate::enable();
        let dir = std::env::temp_dir().join(format!("cap_recorder_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("series.capts");

        crate::gauge_set("rec.test.gauge", 1.5);
        assert!(start_global(&path, Duration::from_secs(3600)).unwrap());
        assert!(!start_global(&path, Duration::from_secs(3600)).unwrap());
        assert!(active());
        crate::gauge_set("rec.test.gauge", 2.5);
        record_boundary_sample();
        stop_global();
        assert!(!active());

        let first = crate::tsdb::read_samples(&path).unwrap();
        // Start sample + boundary + stop sample.
        assert_eq!(first.len(), 3);
        assert_eq!(first[0].value("rec.test.gauge"), Some(1.5));
        assert_eq!(first[1].value("rec.test.gauge"), Some(2.5));
        let last_seq = first.last().unwrap().seq;

        // A second session appends contiguously.
        assert!(start_global(&path, Duration::from_secs(3600)).unwrap());
        assert_eq!(memory_samples().len(), 1);
        stop_global();
        let second = crate::tsdb::read_samples(&path).unwrap();
        assert_eq!(second.first().map(|s| s.seq), Some(0));
        assert_eq!(second.len(), first.len() + 2);
        assert_eq!(second[first.len()].seq, last_seq + 1);

        let _ = std::fs::remove_dir_all(&dir);
        crate::disable();
        crate::reset();
    }
}
