//! `capprof` — a sampling wall-clock profiler over the span stack.
//!
//! A sampler thread (`cap-obs-prof`, off by default, started by
//! `CAP_PROF_HZ=<rate>`) periodically snapshots every registered
//! thread's live span stack and aggregates the snapshots into
//! folded-stack counts (`frame;frame;frame count`), the input format
//! of flamegraph tooling and of [`crate::flame`]. The aggregate is
//! written durably (via [`crate::fsx::atomic_write`]) to
//! `profile.folded` — in the run directory when a prune run is active,
//! or to `CAP_PROF_OUT` otherwise — roughly once a second and again on
//! [`stop_global`], so a crash loses at most the last second of
//! samples and the file is never torn.
//!
//! # How stacks become visible across threads
//!
//! [`crate::SpanGuard`] keeps its nesting in a plain `thread_local!`
//! stack, which the sampler cannot read from another thread. When
//! profiling is active, each span push/pop is *mirrored* into a small
//! per-thread `Arc<Mutex<Vec<&'static str>>>` registered in a global
//! list (the same registration pattern as the flight recorder's
//! per-thread rings). The mirror is gated on one relaxed atomic load,
//! so with the profiler off the enabled-span path gains a single
//! predictable branch and the disabled-span path is completely
//! unchanged (~2 ns, still allocation-free — asserted by
//! `bench_baseline`).
//!
//! Mirroring is best-effort by design: a span entered before the
//! profiler started is absent from the mirror (its children still
//! attribute correctly to whatever prefix is mirrored), and pops only
//! remove their own frame. A sampling profiler tolerates both — the
//! aggregate converges on where wall-clock time is actually spent.
//!
//! # Quickstart
//!
//! ```text
//! CAP_PROF_HZ=97 capctl prune --run-dir run --iters 4
//! capctl flame run --export flame.svg
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Cap on distinct stacks kept in the aggregate; beyond it, samples
/// land in the [`OVERFLOW_FRAME`] bucket so memory stays bounded no
/// matter how pathological the span nesting gets.
const MAX_STACKS: usize = 10_000;
/// Bucket absorbing samples once [`MAX_STACKS`] distinct stacks exist.
const OVERFLOW_FRAME: &str = "(overflow)";
/// Deepest mirrored stack the sampler will fold; deeper frames are
/// dropped from the sample (bounds the folded line length).
const MAX_DEPTH: usize = 64;

/// Fast gate read by the span hooks: true while a profiler is running.
static PROF_ON: AtomicBool = AtomicBool::new(false);

type SharedStack = Arc<Mutex<Vec<&'static str>>>;

thread_local! {
    /// This thread's mirror stack, registered globally on first use.
    static LOCAL: RefCell<Option<SharedStack>> = const { RefCell::new(None) };
}

fn stacks() -> &'static Mutex<Vec<SharedStack>> {
    static STACKS: OnceLock<Mutex<Vec<SharedStack>>> = OnceLock::new();
    STACKS.get_or_init(|| Mutex::new(Vec::new()))
}

fn with_local<R>(f: impl FnOnce(&SharedStack) -> R) -> R {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        if slot.is_none() {
            let stack: SharedStack = Arc::new(Mutex::new(Vec::new()));
            stacks().lock().unwrap().push(Arc::clone(&stack));
            *slot = Some(stack);
        }
        f(slot.as_ref().unwrap())
    })
}

/// Registers the calling thread with the profiler so its span stack is
/// visible to the sampler from the very first span. Span guards
/// register lazily anyway; cap-par workers call this once at spawn so
/// registration cost never lands inside a timed kernel.
pub fn register_current_thread() {
    with_local(|_| {});
}

/// Whether span pushes/pops are currently being mirrored.
#[inline]
pub(crate) fn mirroring() -> bool {
    PROF_ON.load(Ordering::Relaxed)
}

/// Span-enter hook: mirror `name` onto this thread's shared stack.
pub(crate) fn on_span_enter(name: &'static str) {
    with_local(|stack| stack.lock().unwrap().push(name));
}

/// Span-drop hook: remove `name` if it is the mirrored top. A span
/// entered before the profiler started has no mirrored frame; popping
/// only our own name keeps the mirror consistent in that case.
pub(crate) fn on_span_exit(name: &'static str) {
    with_local(|stack| {
        let mut stack = stack.lock().unwrap();
        if stack.last() == Some(&name) {
            stack.pop();
        }
    });
}

/// Shared state between the sampler thread and the control API.
struct Shared {
    /// Folded stack -> sample count.
    agg: Mutex<BTreeMap<String, u64>>,
    /// Total sampling passes taken.
    samples: AtomicU64,
    /// Where to write `profile.folded`; retargetable mid-run.
    out: Mutex<Option<PathBuf>>,
    stop: AtomicBool,
}

struct Profiler {
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
}

fn global_slot() -> &'static Mutex<Option<Profiler>> {
    static PROFILER: OnceLock<Mutex<Option<Profiler>>> = OnceLock::new();
    PROFILER.get_or_init(|| Mutex::new(None))
}

/// Parses `CAP_PROF_HZ` into a sampling rate. Unset, empty, zero,
/// non-numeric, or absurd (> 10 kHz) values all mean "off".
pub fn hz_from_env() -> Option<u32> {
    let raw = std::env::var("CAP_PROF_HZ").ok()?;
    let hz: u32 = raw.trim().parse().ok()?;
    if hz == 0 || hz > 10_000 {
        return None;
    }
    Some(hz)
}

/// Whether the global profiler is currently running.
pub fn active() -> bool {
    PROF_ON.load(Ordering::Acquire)
}

/// Starts the global sampler at `hz` samples/second, writing the
/// aggregate to `out` (if given) about once a second and on stop.
/// Enables instrumentation as a side effect (samples need live spans).
///
/// Returns `Ok(false)` if a profiler is already running — first start
/// wins, matching [`crate::recorder`] and [`crate::serve`].
///
/// # Errors
///
/// Returns a message when the sampler thread cannot be spawned.
pub fn start_global(hz: u32, out: Option<PathBuf>) -> Result<bool, String> {
    let mut slot = global_slot().lock().unwrap();
    if slot.is_some() {
        return Ok(false);
    }
    crate::enable();
    // Drop any residue a previous profiling session left in the
    // mirrors (spans that closed while mirroring was off never pop).
    for stack in stacks().lock().unwrap().iter() {
        stack.lock().unwrap().clear();
    }
    let shared = Arc::new(Shared {
        agg: Mutex::new(BTreeMap::new()),
        samples: AtomicU64::new(0),
        out: Mutex::new(out),
        stop: AtomicBool::new(false),
    });
    PROF_ON.store(true, Ordering::Release);
    let interval = Duration::from_secs_f64(1.0 / f64::from(hz));
    let thread_shared = Arc::clone(&shared);
    let handle = std::thread::Builder::new()
        .name("cap-obs-prof".to_string())
        .spawn(move || run_loop(&thread_shared, interval))
        .map_err(|e| {
            PROF_ON.store(false, Ordering::Release);
            format!("failed to spawn profiler thread: {e}")
        })?;
    *slot = Some(Profiler {
        shared,
        handle: Some(handle),
    });
    Ok(true)
}

/// Retargets where the running profiler writes `profile.folded` (used
/// when a run directory appears after process-level startup). No-op
/// when the profiler is not running.
pub fn set_output(path: PathBuf) {
    if let Some(prof) = global_slot().lock().unwrap().as_ref() {
        *prof.shared.out.lock().unwrap() = Some(path);
    }
}

/// Stops the global profiler: joins the sampler thread, writes the
/// final `profile.folded`, and clears the thread mirrors. Idempotent.
pub fn stop_global() {
    let Some(mut prof) = global_slot().lock().unwrap().take() else {
        return;
    };
    prof.shared.stop.store(true, Ordering::Release);
    if let Some(handle) = prof.handle.take() {
        let _ = handle.join();
    }
    PROF_ON.store(false, Ordering::Release);
    flush_shared(&prof.shared);
    for stack in stacks().lock().unwrap().iter() {
        stack.lock().unwrap().clear();
    }
}

/// Takes one sampling pass synchronously (same aggregation as the
/// sampler thread). A deterministic hook for tests; no-op when the
/// profiler is not running.
pub fn sample_now() {
    if let Some(prof) = global_slot().lock().unwrap().as_ref() {
        sample_pass(&prof.shared);
    }
}

/// Writes the current aggregate to the configured output now (atomic
/// tmp+rename). No-op without a running profiler or output path.
pub fn flush_profile() {
    if let Some(prof) = global_slot().lock().unwrap().as_ref() {
        flush_shared(&prof.shared);
    }
}

/// The live aggregate as folded-stack lines (`a;b;c 12`, sorted).
/// Empty when the profiler is not running or nothing was sampled yet.
pub fn live_stacks() -> Vec<(String, u64)> {
    match global_slot().lock().unwrap().as_ref() {
        Some(prof) => {
            let agg = prof.shared.agg.lock().unwrap();
            agg.iter().map(|(k, v)| (k.clone(), *v)).collect()
        }
        None => Vec::new(),
    }
}

/// Renders folded-stack lines from `stacks` (one `stack count` line
/// each, trailing newline; empty input renders to the empty string).
pub fn folded_string(stacks: &[(String, u64)]) -> String {
    let mut out = String::new();
    for (stack, count) in stacks {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&count.to_string());
        out.push('\n');
    }
    out
}

fn run_loop(shared: &Shared, interval: Duration) {
    // Flush roughly once a second regardless of rate.
    let flush_every = (1.0 / interval.as_secs_f64()).ceil().max(1.0) as u64;
    let slice = Duration::from_millis(20).min(interval);
    loop {
        let mut slept = Duration::ZERO;
        while slept < interval {
            if shared.stop.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(slice);
            slept += slice;
        }
        sample_pass(shared);
        let n = shared.samples.load(Ordering::Relaxed);
        if n.is_multiple_of(flush_every) {
            flush_shared(shared);
        }
    }
}

/// Snapshots every registered thread's mirror and folds the non-empty
/// ones into the aggregate.
fn sample_pass(shared: &Shared) {
    let captured: Vec<Vec<&'static str>> = {
        let stacks = stacks().lock().unwrap();
        stacks
            .iter()
            .map(|s| {
                let stack = s.lock().unwrap();
                let depth = stack.len().min(MAX_DEPTH);
                stack[..depth].to_vec()
            })
            .filter(|s| !s.is_empty())
            .collect()
    };
    shared.samples.fetch_add(1, Ordering::Relaxed);
    crate::counter_add("obs.prof.samples_total", 1);
    if captured.is_empty() {
        return;
    }
    crate::counter_add("obs.prof.stacks_captured_total", captured.len() as u64);
    let mut agg = shared.agg.lock().unwrap();
    for stack in captured {
        let key = stack.join(";");
        if agg.len() >= MAX_STACKS && !agg.contains_key(&key) {
            *agg.entry(OVERFLOW_FRAME.to_string()).or_insert(0) += 1;
        } else {
            *agg.entry(key).or_insert(0) += 1;
        }
    }
}

fn flush_shared(shared: &Shared) {
    let path = match shared.out.lock().unwrap().clone() {
        Some(p) => p,
        None => return,
    };
    let folded = {
        let agg = shared.agg.lock().unwrap();
        let stacks: Vec<(String, u64)> = agg.iter().map(|(k, v)| (k.clone(), *v)).collect();
        folded_string(&stacks)
    };
    match crate::fsx::atomic_write(&path, folded.as_bytes()) {
        Ok(()) => crate::counter_add("obs.prof.flushes_total", 1),
        Err(_) => crate::counter_add("obs.prof.flush_errors_total", 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("cap_prof_{tag}_{}.folded", std::process::id()))
    }

    #[test]
    fn sampler_folds_live_span_stacks_and_writes_durably() {
        let _guard = crate::test_lock();
        crate::reset();
        let out = temp_path("basic");
        let _ = std::fs::remove_file(&out);
        // Slow nominal rate: the test drives sampling via sample_now().
        assert!(start_global(1, Some(out.clone())).unwrap());
        assert!(active());
        assert!(!start_global(1, None).unwrap(), "first start wins");
        {
            let _a = crate::SpanGuard::enter("outer");
            let _b = crate::SpanGuard::enter("inner");
            sample_now();
            sample_now();
        }
        {
            let _a = crate::SpanGuard::enter("outer");
            sample_now();
        }
        let live = live_stacks();
        assert_eq!(
            live,
            vec![("outer".to_string(), 1), ("outer;inner".to_string(), 2)]
        );
        stop_global();
        assert!(!active());
        let text = std::fs::read_to_string(&out).unwrap();
        assert_eq!(text, "outer 1\nouter;inner 2\n");
        let _ = std::fs::remove_file(&out);
        crate::disable();
        crate::reset();
    }

    #[test]
    fn spans_entered_before_profiling_do_not_corrupt_the_mirror() {
        let _guard = crate::test_lock();
        crate::reset();
        crate::enable();
        let pre = crate::SpanGuard::enter("pre_existing");
        assert!(start_global(1, None).unwrap());
        {
            let _in = crate::SpanGuard::enter("during");
            sample_now();
        }
        drop(pre); // not mirrored; must not pop "during"'s residue
        let live = live_stacks();
        assert_eq!(live, vec![("during".to_string(), 1)]);
        stop_global();
        crate::disable();
        crate::reset();
    }

    #[test]
    fn empty_samples_count_but_record_no_stacks() {
        let _guard = crate::test_lock();
        crate::reset();
        assert!(start_global(1, None).unwrap());
        sample_now();
        assert!(live_stacks().is_empty());
        stop_global();
        crate::disable();
        crate::reset();
    }

    #[test]
    fn folded_string_round_trips_through_the_parser() {
        let stacks = vec![
            ("a;b".to_string(), 3_u64),
            ("a;c d".to_string(), 1), // frame with a space still parses
        ];
        let text = folded_string(&stacks);
        assert_eq!(text, "a;b 3\na;c d 1\n");
        assert_eq!(crate::flame::parse_folded(&text), stacks);
    }
}
