//! Cross-run perf-trend observatory over `results/bench_history.jsonl`.
//!
//! `bench_baseline` used to overwrite `BENCH_kernels.json` on every
//! run, so the perf trajectory across PRs existed only in prose. This
//! module gives it a durable spine: each bench run *appends* one JSON
//! line — host fingerprint, `CAP_SIMD`/`CAP_THREADS` point,
//! min-over-interleaved-rounds kernel timings with GFLOP/s, and the
//! commit when available — through the same append discipline as
//! `alerts.jsonl` ([`crate::fsx::AppendFile`], line-delimited so a
//! torn tail from a crash is skipped by the loader, never misparsed).
//!
//! On top of the history:
//!
//! - [`render_trend_html`] renders per-kernel GFLOP/s sparklines
//!   across runs in the dashboard's visual language (`capctl bench
//!   trend`);
//! - [`compare_runs`] applies the EXPERIMENTS.md noise policy
//!   (`capctl bench compare A B`): on this 1-core host, absolute
//!   timings across runs carry ±20% noise, so only **within-run
//!   interleaved ratios** (AVX2 vs scalar, blocked vs naive — variants
//!   timed in the same interleaved rounds) are gateable. Cross-run
//!   absolute deltas are reported as advisory flags, never as
//!   failures.

use crate::json::{self, Json};
use crate::{dash, fsx};
use std::collections::BTreeMap;
use std::path::Path;

/// Default location of the history, next to the other durable bench
/// artifacts.
pub const DEFAULT_HISTORY_PATH: &str = "results/bench_history.jsonl";

/// A within-run ratio must retain at least this fraction of its
/// previous value before `compare` calls it a regression. Measured
/// back-to-back same-build runs on this 1-core host swing small-shape
/// ratios by up to ~30% (EXPERIMENTS.md), so the gate fires only on
/// structural collapses — e.g. a SIMD path silently disabled drops
/// avx2-vs-naive from ~3-5x to ~1x, far below any noise. Shifts
/// between the advisory bound and this floor are reported, not gated.
pub const RATIO_FLOOR: f64 = 0.6;
/// Cross-run absolute deltas beyond this fraction are flagged
/// (advisory only — never a failure).
pub const ADVISORY_DELTA: f64 = 0.2;

/// Longest history line the loader will consider (a corrupt file must
/// not balloon memory).
const MAX_LINE: usize = 1 << 20;

/// One kernel measurement inside a [`BenchRun`].
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPoint {
    /// Pinned SIMD mode for the row (`none` for the naive reference).
    pub mode: String,
    /// Operation (`matmul`, `matmul_naive_ref`, …).
    pub op: String,
    /// Shape label (`1024x1024x1024`, …).
    pub shape: String,
    /// Min-over-interleaved-rounds nanoseconds per iteration.
    pub ns: f64,
    /// Throughput derived from `ns` (0 when not meaningful).
    pub gflops: f64,
}

/// One appended bench run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRun {
    /// Unix seconds when the run was appended.
    pub t: f64,
    /// Host fingerprint: target architecture.
    pub arch: String,
    /// Host fingerprint: operating system.
    pub os: String,
    /// Host fingerprint: available parallelism at run time.
    pub parallelism: u64,
    /// Effective `CAP_SIMD` setting (`auto` when unset).
    pub simd: String,
    /// The run's `--threads` measurement point.
    pub threads: u64,
    /// Whether this was a `--smoke` run.
    pub smoke: bool,
    /// `git rev-parse --short HEAD` when available.
    pub commit: Option<String>,
    /// Kernel rows, in measurement order.
    pub kernels: Vec<KernelPoint>,
}

impl BenchRun {
    /// A run stamped with the current time and host fingerprint.
    pub fn now(simd: String, threads: u64, smoke: bool, commit: Option<String>) -> BenchRun {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0.0, |d| d.as_secs_f64());
        BenchRun {
            t,
            arch: std::env::consts::ARCH.to_string(),
            os: std::env::consts::OS.to_string(),
            parallelism: std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
            simd,
            threads,
            smoke,
            commit,
            kernels: Vec::new(),
        }
    }

    /// One-line description for listings: index, commit, config, host.
    pub fn describe(&self, index: usize) -> String {
        format!(
            "#{index} commit={} simd={} threads={} smoke={} {}/{} p={} ({} kernels)",
            self.commit.as_deref().unwrap_or("-"),
            self.simd,
            self.threads,
            self.smoke,
            self.arch,
            self.os,
            self.parallelism,
            self.kernels.len()
        )
    }

    fn render_line(&self) -> String {
        let mut out = String::from("{\"t\":");
        json::write_f64(&mut out, self.t);
        out.push_str(",\"arch\":");
        json::write_str(&mut out, &self.arch);
        out.push_str(",\"os\":");
        json::write_str(&mut out, &self.os);
        out.push_str(",\"parallelism\":");
        out.push_str(&self.parallelism.to_string());
        out.push_str(",\"simd\":");
        json::write_str(&mut out, &self.simd);
        out.push_str(",\"threads\":");
        out.push_str(&self.threads.to_string());
        out.push_str(",\"smoke\":");
        out.push_str(if self.smoke { "true" } else { "false" });
        out.push_str(",\"commit\":");
        match &self.commit {
            Some(c) => json::write_str(&mut out, c),
            None => out.push_str("null"),
        }
        out.push_str(",\"kernels\":[");
        for (i, k) in self.kernels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"mode\":");
            json::write_str(&mut out, &k.mode);
            out.push_str(",\"op\":");
            json::write_str(&mut out, &k.op);
            out.push_str(",\"shape\":");
            json::write_str(&mut out, &k.shape);
            out.push_str(",\"ns\":");
            json::write_f64(&mut out, k.ns);
            out.push_str(",\"gflops\":");
            json::write_f64(&mut out, k.gflops);
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }
}

/// Appends `run` as one durable line (fsync'd, parent directories
/// created as needed).
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn append_run(path: &Path, run: &BenchRun) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = fsx::AppendFile::open(path)?;
    file.append_durable(run.render_line().as_bytes())
}

fn parse_line(line: &str) -> Option<BenchRun> {
    let v = json::parse(line).ok()?;
    if !matches!(v, Json::Obj(_)) {
        return None;
    }
    let str_of = |key: &str| v.get(key).and_then(Json::as_str).map(str::to_string);
    let mut kernels = Vec::new();
    if let Some(Json::Arr(items)) = v.get("kernels") {
        for item in items {
            let field = |key: &str| item.get(key).and_then(Json::as_str);
            let num = |key: &str| item.get(key).and_then(Json::as_f64);
            let (Some(mode), Some(op), Some(shape)) = (field("mode"), field("op"), field("shape"))
            else {
                continue;
            };
            let ns = num("ns").unwrap_or(f64::NAN);
            if !ns.is_finite() || ns <= 0.0 {
                continue;
            }
            kernels.push(KernelPoint {
                mode: mode.to_string(),
                op: op.to_string(),
                shape: shape.to_string(),
                ns,
                gflops: num("gflops").filter(|g| g.is_finite()).unwrap_or(0.0),
            });
        }
    }
    Some(BenchRun {
        t: v.get("t").and_then(Json::as_f64).unwrap_or(0.0),
        arch: str_of("arch").unwrap_or_default(),
        os: str_of("os").unwrap_or_default(),
        parallelism: v.get("parallelism").and_then(Json::as_u64).unwrap_or(0),
        simd: str_of("simd").unwrap_or_else(|| "auto".to_string()),
        threads: v.get("threads").and_then(Json::as_u64).unwrap_or(0),
        smoke: v.get("smoke") == Some(&Json::Bool(true)),
        commit: str_of("commit"),
        kernels,
    })
}

/// Loads the history, tolerating hostility: a missing file is an empty
/// history, invalid UTF-8 is replaced lossily, malformed or overlong
/// lines are skipped, and an unterminated final line (torn tail from a
/// crash mid-append) is dropped cleanly. Never panics.
pub fn load_history(path: &Path) -> Vec<BenchRun> {
    let Ok(bytes) = std::fs::read(path) else {
        return Vec::new();
    };
    let text = String::from_utf8_lossy(&bytes);
    // Only newline-terminated lines are trusted.
    let complete = match text.rfind('\n') {
        Some(pos) => &text[..pos + 1],
        None => "",
    };
    complete
        .lines()
        .filter(|l| !l.is_empty() && l.len() <= MAX_LINE)
        .filter_map(parse_line)
        .collect()
}

/// Resolves a run selector against the history: a 1-based index
/// (`1` = oldest), a negative index from the end (`-1` = latest), or a
/// commit-hash prefix. Returns the 1-based index and the run.
///
/// # Errors
///
/// Describes an out-of-range index, an unknown commit, or an ambiguous
/// prefix.
pub fn select<'a>(runs: &'a [BenchRun], sel: &str) -> Result<(usize, &'a BenchRun), String> {
    if runs.is_empty() {
        return Err("bench history is empty".to_string());
    }
    if let Ok(i) = sel.parse::<i64>() {
        let n = runs.len() as i64;
        let idx = if i > 0 { i - 1 } else { n + i };
        if idx < 0 || idx >= n {
            return Err(format!(
                "run index {sel} out of range 1..={n} (or -{n}..=-1)"
            ));
        }
        let idx = idx as usize;
        return Ok((idx + 1, &runs[idx]));
    }
    let matches: Vec<(usize, &BenchRun)> = runs
        .iter()
        .enumerate()
        .filter(|(_, r)| r.commit.as_deref().is_some_and(|c| c.starts_with(sel)))
        .map(|(i, r)| (i + 1, r))
        .collect();
    match matches.as_slice() {
        [] => Err(format!("no run with commit prefix {sel:?}")),
        [one] => Ok(*one),
        many => Err(format!(
            "commit prefix {sel:?} matches {} runs; use an index",
            many.len()
        )),
    }
}

/// Per-kernel key used for trend grouping and cross-run deltas.
fn kernel_key(k: &KernelPoint) -> String {
    format!("{} {} @ {}", k.mode, k.op, k.shape)
}

/// The within-run interleaved ratios the noise policy allows gating
/// on: variants of the same op timed in the same interleaved rounds.
fn within_run_ratios(run: &BenchRun) -> BTreeMap<String, f64> {
    let ns_of = |mode: &str, op: &str, shape: &str| {
        run.kernels
            .iter()
            .find(|k| k.mode == mode && k.op == op && k.shape == shape)
            .map(|k| k.ns)
    };
    let mut ratios = BTreeMap::new();
    let shapes: Vec<&str> = {
        let mut s: Vec<&str> = run.kernels.iter().map(|k| k.shape.as_str()).collect();
        s.sort_unstable();
        s.dedup();
        s
    };
    for shape in shapes {
        let naive = ns_of("none", "matmul_naive_ref", shape);
        for mode in ["scalar", "avx2"] {
            if let (Some(ns), Some(naive)) = (ns_of(mode, "matmul", shape), naive) {
                ratios.insert(format!("{mode} matmul vs naive @ {shape}"), naive / ns);
            }
        }
        if let (Some(avx2), Some(scalar)) = (
            ns_of("avx2", "matmul", shape),
            ns_of("scalar", "matmul", shape),
        ) {
            ratios.insert(format!("avx2 vs scalar matmul @ {shape}"), scalar / avx2);
        }
    }
    ratios
}

/// What [`compare_runs`] found.
#[derive(Debug, Default, PartialEq)]
pub struct Comparison {
    /// Within-run interleaved ratios that fell below [`RATIO_FLOOR`] ×
    /// their value in the baseline run. These are gateable.
    pub regressions: Vec<String>,
    /// Cross-run absolute deltas beyond [`ADVISORY_DELTA`], ratio
    /// shifts that stayed above [`RATIO_FLOOR`], and ratios present in
    /// only one run. Advisory only.
    pub advisories: Vec<String>,
}

/// Compares run `b` against baseline run `a` under the EXPERIMENTS.md
/// noise policy: only within-run interleaved ratios can regress;
/// cross-run absolute timings are advisory because this host carries
/// ±20% run-to-run noise.
pub fn compare_runs(a: &BenchRun, b: &BenchRun) -> Comparison {
    let mut cmp = Comparison::default();
    let ra = within_run_ratios(a);
    let rb = within_run_ratios(b);
    for (key, va) in &ra {
        match rb.get(key) {
            Some(vb) if *vb < va * RATIO_FLOOR => cmp.regressions.push(format!(
                "{key}: {vb:.2}x, was {va:.2}x (floor {:.2}x)",
                va * RATIO_FLOOR
            )),
            Some(vb) if (*vb - va).abs() > va * ADVISORY_DELTA => cmp.advisories.push(format!(
                "{key}: {vb:.2}x, was {va:.2}x (within the ratio noise floor, advisory)"
            )),
            Some(_) => {}
            None => cmp
                .advisories
                .push(format!("{key}: present only in baseline run")),
        }
    }
    for key in rb.keys() {
        if !ra.contains_key(key) {
            cmp.advisories
                .push(format!("{key}: present only in the new run"));
        }
    }
    // Cross-run absolute deltas: flagged, never gated.
    let a_ns: BTreeMap<String, f64> = a.kernels.iter().map(|k| (kernel_key(k), k.ns)).collect();
    for k in &b.kernels {
        if let Some(prev) = a_ns.get(&kernel_key(k)) {
            let delta = (k.ns - prev) / prev;
            if delta.abs() > ADVISORY_DELTA {
                cmp.advisories.push(format!(
                    "{}: {:+.1}% ns/iter cross-run (advisory: absolute timings carry \
                     ±20% noise on this host)",
                    kernel_key(k),
                    delta * 100.0
                ));
            }
        }
    }
    cmp
}

/// Renders the trend page: one GFLOP/s (or 1/ns) sparkline per kernel
/// across run index, plus a run listing — same self-contained HTML
/// idiom as the dashboard.
pub fn render_trend_html(runs: &[BenchRun]) -> String {
    let mut series: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for (i, run) in runs.iter().enumerate() {
        for k in &run.kernels {
            let value = if k.gflops > 0.0 { k.gflops } else { 1e9 / k.ns };
            series
                .entry(kernel_key(k))
                .or_default()
                .push(((i + 1) as f64, value));
        }
    }
    let mut body = String::new();
    for (key, points) in &series {
        body.push_str(&dash::sparkline(&format!("{key} — GFLOP/s by run"), points));
    }
    if series.is_empty() {
        body.push_str(
            "<div class=\"panel\"><p class=\"empty\">no kernel rows recorded</p></div>\n",
        );
    }
    let mut listing = String::from("<div class=\"panel wide\"><h3>runs</h3><ol>");
    for (i, run) in runs.iter().enumerate() {
        listing.push_str(&format!("<li>{}</li>", dash::esc(&run.describe(i + 1))));
    }
    listing.push_str(
        "</ol><p class=\"stats\">within-run interleaved ratios are the only \
                      gateable signal; cross-run absolute deltas are advisory (±20% host \
                      noise — see EXPERIMENTS.md)</p></div>\n",
    );
    format!(
        "<!doctype html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\
         <title>cap bench trends</title>\
         <style>\
         body{{font-family:system-ui,sans-serif;margin:1.5rem;background:#f8fafc;color:#0f172a}}\
         .grid{{display:flex;flex-wrap:wrap;gap:1rem}}\
         .panel{{background:#fff;border:1px solid #e2e8f0;border-radius:8px;padding:.75rem 1rem}}\
         .panel.wide{{flex-basis:100%}}\
         h1{{font-size:1.2rem}}h3{{margin:.1rem 0 .4rem;font-size:.85rem;font-weight:600}}\
         .stats,.empty,.meta{{color:#64748b;font-size:.75rem;margin:.3rem 0 0}}\
         ol{{margin:.2rem 0;padding-left:1.4rem;font-size:.8rem}}\
         </style></head><body>\
         <h1>class-aware pruning — kernel perf trends</h1>\
         <p class=\"meta\">{} runs · {} kernel series</p>\
         <div class=\"grid\">\n{listing}{body}</div></body></html>\n",
        runs.len(),
        series.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_with(simd: &str, kernels: &[(&str, &str, &str, f64)]) -> BenchRun {
        let mut run = BenchRun {
            t: 1000.0,
            arch: "x86_64".to_string(),
            os: "linux".to_string(),
            parallelism: 1,
            simd: simd.to_string(),
            threads: 4,
            smoke: true,
            commit: Some("abc1234".to_string()),
            kernels: Vec::new(),
        };
        for (mode, op, shape, ns) in kernels {
            run.kernels.push(KernelPoint {
                mode: (*mode).to_string(),
                op: (*op).to_string(),
                shape: (*shape).to_string(),
                ns: *ns,
                gflops: 2.0 * 1e9 / ns,
            });
        }
        run
    }

    fn temp_history(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cap_trend_{tag}_{}.jsonl", std::process::id()))
    }

    #[test]
    fn append_accumulates_and_round_trips() {
        let path = temp_history("roundtrip");
        let _ = std::fs::remove_file(&path);
        let a = run_with("auto", &[("scalar", "matmul", "192x192x192", 1e6)]);
        let mut b = a.clone();
        b.commit = Some("def5678".to_string());
        append_run(&path, &a).unwrap();
        append_run(&path, &b).unwrap();
        let runs = load_history(&path);
        assert_eq!(runs.len(), 2, "appends, not overwrites");
        assert_eq!(runs[0], a);
        assert_eq!(runs[1], b);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_creates_parent_directories() {
        let dir = std::env::temp_dir().join(format!("cap_trend_dir_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("history.jsonl");
        append_run(&path, &run_with("auto", &[])).unwrap();
        assert_eq!(load_history(&path).len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn loader_survives_hostile_bytes_and_torn_tails() {
        let path = temp_history("hostile");
        let good = run_with("auto", &[("avx2", "matmul", "1024x1024x1024", 5e5)]);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(good.render_line().as_bytes());
        bytes.extend_from_slice(b"not json at all\n");
        bytes.extend_from_slice(b"{\"t\":]]]\n");
        bytes.extend_from_slice(&[0xff, 0xfe, 0x00, b'\n']);
        bytes.extend_from_slice(b"[1,2,3]\n"); // valid JSON, not an object
        bytes.extend_from_slice(good.render_line().as_bytes());
        // Torn tail: a crash mid-append leaves no trailing newline.
        bytes.extend_from_slice(b"{\"t\":123,\"arch\":\"x86");
        std::fs::write(&path, &bytes).unwrap();
        let runs = load_history(&path);
        assert_eq!(runs.len(), 2, "only the two well-formed lines survive");
        assert_eq!(runs[0], good);
        assert_eq!(runs[1], good);
        // Arbitrary bytes never panic.
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        for round in 0..100 {
            let mut fuzz = Vec::new();
            for _ in 0..(round * 11 % 400) {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                fuzz.push((state >> 33) as u8);
            }
            std::fs::write(&path, &fuzz).unwrap();
            let _ = load_history(&path);
        }
        let _ = std::fs::remove_file(&path);
        assert!(
            load_history(&path).is_empty(),
            "missing file = empty history"
        );
    }

    #[test]
    fn select_resolves_indices_and_commit_prefixes() {
        let mut a = run_with("auto", &[]);
        a.commit = Some("aaa111".to_string());
        let mut b = run_with("auto", &[]);
        b.commit = Some("bbb222".to_string());
        let runs = vec![a, b];
        assert_eq!(select(&runs, "1").unwrap().0, 1);
        assert_eq!(select(&runs, "2").unwrap().0, 2);
        assert_eq!(select(&runs, "-1").unwrap().0, 2);
        assert_eq!(select(&runs, "-2").unwrap().0, 1);
        assert_eq!(select(&runs, "bbb").unwrap().0, 2);
        assert!(select(&runs, "0").is_err());
        assert!(select(&runs, "3").is_err());
        assert!(select(&runs, "zzz").is_err());
        assert!(select(&[], "1").is_err());
    }

    #[test]
    fn compare_gates_only_within_run_ratios() {
        let shape = "1024x1024x1024";
        let base = run_with(
            "auto",
            &[
                ("none", "matmul_naive_ref", shape, 10e6),
                ("scalar", "matmul", shape, 5e6),
                ("avx2", "matmul", shape, 1.25e6),
            ],
        );
        // Same ratios, everything 30% slower in absolute terms: the
        // noise policy says advisory only, never a failure.
        let slower = run_with(
            "auto",
            &[
                ("none", "matmul_naive_ref", shape, 13e6),
                ("scalar", "matmul", shape, 6.5e6),
                ("avx2", "matmul", shape, 1.625e6),
            ],
        );
        let cmp = compare_runs(&base, &slower);
        assert!(cmp.regressions.is_empty(), "{:?}", cmp.regressions);
        assert!(!cmp.advisories.is_empty(), "30% deltas should be flagged");

        // AVX2 lost half its edge within-run: gateable regression.
        let regressed = run_with(
            "auto",
            &[
                ("none", "matmul_naive_ref", shape, 10e6),
                ("scalar", "matmul", shape, 5e6),
                ("avx2", "matmul", shape, 3.2e6),
            ],
        );
        let cmp = compare_runs(&base, &regressed);
        assert!(
            cmp.regressions.iter().any(|r| r.contains("avx2 vs scalar")),
            "{:?}",
            cmp.regressions
        );
    }

    #[test]
    fn trend_html_lists_every_run_and_kernel_series() {
        let runs = vec![
            run_with("scalar", &[("scalar", "matmul", "192x192x192", 2e6)]),
            run_with("auto", &[("scalar", "matmul", "192x192x192", 1.9e6)]),
        ];
        let html = render_trend_html(&runs);
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.contains("2 runs"), "{html}");
        assert!(html.contains("scalar matmul @ 192x192x192"), "{html}");
        assert!(html.contains("<polyline"), "sparkline rendered");
        assert!(html.contains("#1 commit=abc1234"), "{html}");
        assert!(html.contains("#2 commit=abc1234"), "{html}");
        let empty = render_trend_html(&[]);
        assert!(empty.contains("no kernel rows recorded"));
    }
}
