//! A minimal `std::net` HTTP/1.1 server exposing live telemetry.
//!
//! Zero-dependency like the rest of the crate: one accept-loop thread
//! (`cap-obs-serve`), connections handled inline, four read-only routes:
//!
//! | Route | Content | Format |
//! |---|---|---|
//! | `/metrics` | the [`crate::Registry`] | Prometheus text exposition ([`crate::expo`]) |
//! | `/healthz` | liveness | `ok` |
//! | `/report` | uptime + metrics + span tree | JSON (hand-rolled writer) |
//! | `/trace` | the flight recorder | chrome://tracing trace-event JSON |
//! | `/api/series` | recorded history ([`crate::recorder`]) | JSON (`?name=<series>&from=<seq>&to=<seq>&downsample=<n>`) |
//! | `/dash` | run-history dashboard ([`crate::dash`]) | self-contained HTML |
//! | `/prof` | live sampling-profiler flamegraph ([`crate::prof`] + [`crate::flame`]) | SVG |
//!
//! The server also observes itself: every request bumps a per-route
//! counter (`obs.http.requests.<route>`) and records its handling time
//! into the `obs.http.handle_us` histogram; the heavier rendering
//! routes (`/prof`, `/dash`, `/api/series`) additionally get their own
//! `obs.http.handle_us.<route>` histogram rows. All visible in
//! `/metrics`.
//!
//! The server only *reads* shared state, so leaving it running cannot
//! affect workload results — the determinism contract of `cap-par`
//! holds with the server enabled (pinned by the
//! `telemetry_integration` workspace test).
//!
//! Start it per-process from the `CAP_METRICS_ADDR` environment
//! variable via [`crate::init_telemetry`], or explicitly:
//!
//! ```
//! let _obs = cap_obs::test_lock();
//! let server = cap_obs::serve::Server::start("127.0.0.1:0").unwrap();
//! let addr = server.addr(); // scrape http://{addr}/metrics
//! server.stop();
//! ```

use crate::json;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Upper bound on request bytes we read (request line + headers).
const MAX_REQUEST_BYTES: usize = 8192;

/// Bind attempts before [`Server::start_resilient`] gives up on an
/// `EADDRINUSE` address and degrades to disabled.
const BIND_ATTEMPTS: u32 = 4;
/// First retry delay for an in-use address; doubles per attempt.
const BIND_BACKOFF: Duration = Duration::from_millis(20);

/// A running telemetry server. Dropping (or calling [`Server::stop`])
/// shuts the accept loop down and joins its thread.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:9184`, port `0` for ephemeral) and
    /// starts serving. Also flips the master obs gate on — a metrics
    /// server over a disabled registry would only ever serve emptiness.
    ///
    /// # Errors
    ///
    /// Returns the formatted I/O error when the address cannot be bound.
    pub fn start(addr: &str) -> Result<Server, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        Server::start_listener(listener)
    }

    /// Like [`Server::start`], but resilient to a taken address: an
    /// `EADDRINUSE` bind is retried [`BIND_ATTEMPTS`] times with capped
    /// exponential backoff, and if the address is *still* in use the
    /// server degrades to disabled — a warning on stderr and
    /// `Ok(None)` — instead of failing the run. Telemetry is an
    /// observer; losing it must never kill the workload it observes.
    /// Any other bind error is still reported as `Err`.
    ///
    /// # Errors
    ///
    /// Returns the formatted I/O error for non-`EADDRINUSE` failures.
    pub fn start_resilient(addr: &str) -> Result<Option<Server>, String> {
        let mut delay = BIND_BACKOFF;
        for attempt in 1..=BIND_ATTEMPTS {
            match TcpListener::bind(addr) {
                Ok(listener) => return Server::start_listener(listener).map(Some),
                Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
                    if attempt < BIND_ATTEMPTS {
                        eprintln!(
                            "cap-obs: {addr} in use (attempt {attempt}/{BIND_ATTEMPTS}), \
                             retrying in {}ms",
                            delay.as_millis()
                        );
                        std::thread::sleep(delay);
                        delay = delay.saturating_mul(2).min(Duration::from_millis(500));
                    }
                }
                Err(e) => return Err(format!("bind {addr}: {e}")),
            }
        }
        eprintln!(
            "cap-obs: warning: {addr} still in use after {BIND_ATTEMPTS} attempts — \
             telemetry server disabled for this run"
        );
        Ok(None)
    }

    fn start_listener(listener: TcpListener) -> Result<Server, String> {
        let local = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        crate::enable();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("cap-obs-serve".to_string())
            .spawn(move || accept_loop(&listener, &flag))
            .map_err(|e| format!("spawn cap-obs-serve: {e}"))?;
        Ok(Server {
            addr: local,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shuts the accept loop down and joins it.
    pub fn stop(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.shutdown.store(true, Ordering::Release);
        // Unblock the (blocking) accept with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        let _ = handle.join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

fn accept_loop(listener: &TcpListener, shutdown: &AtomicBool) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { continue };
        // A stuck client must not wedge the telemetry loop.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        handle_connection(stream);
    }
}

fn handle_connection(mut stream: TcpStream) {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    // Read until the end of the request head; body-less GETs only.
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > MAX_REQUEST_BYTES {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let started = crate::clock::now();
    let (status, content_type, body) = route(method, path);
    crate::counter_add("obs.http_requests_total", 1);
    crate::counter_add(route_counter(path), 1);
    let handle_us = started.elapsed().as_secs_f64() * 1e6;
    crate::histogram_record("obs.http.handle_us", handle_us);
    if let Some(name) = route_handle_histogram(path) {
        crate::histogram_record(name, handle_us);
    }
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// The self-observation counter for `path` (static names only — a
/// hostile path must not mint unbounded metric names).
fn route_counter(path: &str) -> &'static str {
    match path.split('?').next().unwrap_or("") {
        "/metrics" => "obs.http.requests.metrics",
        "/healthz" => "obs.http.requests.healthz",
        "/report" => "obs.http.requests.report",
        "/trace" => "obs.http.requests.trace",
        "/api/series" => "obs.http.requests.api_series",
        "/dash" => "obs.http.requests.dash",
        "/prof" => "obs.http.requests.prof",
        _ => "obs.http.requests.other",
    }
}

/// Per-route handle-duration histogram for the rendering routes whose
/// cost is worth watching individually (static names only, same rule
/// as [`route_counter`]). The cheap routes only feed the shared
/// `obs.http.handle_us`.
fn route_handle_histogram(path: &str) -> Option<&'static str> {
    match path.split('?').next().unwrap_or("") {
        "/api/series" => Some("obs.http.handle_us.api_series"),
        "/dash" => Some("obs.http.handle_us.dash"),
        "/prof" => Some("obs.http.handle_us.prof"),
        _ => None,
    }
}

/// A dynamic route handler: receives the (possibly empty) query string
/// and returns `(content_type, body)`.
type DynHandler = Box<dyn Fn(&str) -> (&'static str, String) + Send + Sync>;

fn dynamic_routes() -> &'static Mutex<BTreeMap<&'static str, DynHandler>> {
    static ROUTES: OnceLock<Mutex<BTreeMap<&'static str, DynHandler>>> = OnceLock::new();
    ROUTES.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Registers a process-global dynamic GET route served alongside the
/// built-in ones (e.g. `capfleet`'s `/fleet` aggregation page). The
/// path must start with `/` and not collide with a built-in route;
/// re-registering a path replaces its handler. Static paths only — the
/// route table must stay bounded.
pub fn register_route(
    path: &'static str,
    handler: impl Fn(&str) -> (&'static str, String) + Send + Sync + 'static,
) {
    debug_assert!(path.starts_with('/'), "route paths start with '/'");
    let mut routes = dynamic_routes().lock().unwrap_or_else(|p| p.into_inner());
    routes.insert(path, Box::new(handler));
}

/// Removes a dynamic route (no-op when absent).
pub fn unregister_route(path: &str) {
    let mut routes = dynamic_routes().lock().unwrap_or_else(|p| p.into_inner());
    routes.remove(path);
}

/// Serves `base` from the dynamic route table, if registered. The
/// handler runs under the table lock; handlers are expected to be
/// quick renderers (the accept loop is single-threaded anyway).
fn dynamic_response(base: &str, query: &str) -> Option<(&'static str, &'static str, String)> {
    let routes = dynamic_routes().lock().unwrap_or_else(|p| p.into_inner());
    let handler = routes.get(base)?;
    let (content_type, body) = handler(query);
    Some(("200 OK", content_type, body))
}

/// The registered dynamic route paths, space-separated (for the 404
/// route listing).
fn dynamic_route_names() -> String {
    let routes = dynamic_routes().lock().unwrap_or_else(|p| p.into_inner());
    routes.keys().fold(String::new(), |mut acc, k| {
        acc.push(' ');
        acc.push_str(k);
        acc
    })
}

fn route(method: &str, path: &str) -> (&'static str, &'static str, String) {
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_string(),
        );
    }
    let (base, query) = match path.split_once('?') {
        Some((b, q)) => (b, q),
        None => (path, ""),
    };
    match base {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            crate::expo::render(crate::registry()),
        ),
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        "/report" => ("200 OK", "application/json; charset=utf-8", report_json()),
        "/trace" => (
            "200 OK",
            "application/json; charset=utf-8",
            crate::flight::export_chrome_trace(),
        ),
        "/api/series" => match series_json(query) {
            Ok(body) => ("200 OK", "application/json; charset=utf-8", body),
            Err(e) => (
                "400 Bad Request",
                "text/plain; charset=utf-8",
                format!("bad query: {e}\n"),
            ),
        },
        "/dash" => (
            "200 OK",
            "text/html; charset=utf-8",
            crate::dash::render(&crate::recorder::memory_samples(), "live"),
        ),
        "/prof" => (
            "200 OK",
            "image/svg+xml; charset=utf-8",
            crate::flame::render_svg(&crate::prof::live_stacks(), "live profile"),
        ),
        _ => dynamic_response(base, query).unwrap_or_else(|| {
            (
                "404 Not Found",
                "text/plain; charset=utf-8",
                format!(
                    "routes: /metrics /healthz /report /trace /api/series /dash /prof{}\n",
                    dynamic_route_names()
                ),
            )
        }),
    }
}

/// Upper bound on an `/api/series` query string.
const MAX_QUERY_BYTES: usize = 1024;
/// Upper bound on the `downsample` parameter.
const MAX_DOWNSAMPLE: u64 = 100_000;

/// Parses and answers an `/api/series` query over the recorder's
/// in-memory history. The response is byte-stable: same history, same
/// query → identical bytes (sorted data, shortest-round-trip floats).
fn series_json(query: &str) -> Result<String, String> {
    if query.len() > MAX_QUERY_BYTES {
        return Err(format!(
            "query string over {MAX_QUERY_BYTES} bytes ({})",
            query.len()
        ));
    }
    let mut name: Option<&str> = None;
    let mut from: Option<u64> = None;
    let mut to: Option<u64> = None;
    let mut downsample: usize = 0;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got {pair:?}"))?;
        match key {
            "name" => {
                if value.is_empty() || value.len() > 256 {
                    return Err("name must be 1..=256 bytes".to_string());
                }
                if !value
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b':')
                {
                    return Err("name may only contain [A-Za-z0-9._:]".to_string());
                }
                name = Some(value);
            }
            "from" => from = Some(value.parse().map_err(|_| format!("bad from {value:?}"))?),
            "to" => to = Some(value.parse().map_err(|_| format!("bad to {value:?}"))?),
            "downsample" => {
                let n: u64 = value
                    .parse()
                    .map_err(|_| format!("bad downsample {value:?}"))?;
                if n == 0 || n > MAX_DOWNSAMPLE {
                    return Err(format!("downsample must be 1..={MAX_DOWNSAMPLE}"));
                }
                downsample = n as usize;
            }
            other => return Err(format!("unknown parameter {other:?}")),
        }
    }
    let name = name.ok_or_else(|| "missing required parameter name".to_string())?;
    let samples = crate::recorder::memory_samples();
    let points = crate::tsdb::query(&samples, name, from, to, downsample);
    let mut out = String::with_capacity(64 + points.len() * 24);
    out.push_str("{\"name\":");
    json::write_str(&mut out, name);
    out.push_str(",\"samples\":");
    out.push_str(&samples.len().to_string());
    out.push_str(",\"points\":[");
    for (i, (seq, t, value)) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        out.push_str(&seq.to_string());
        out.push(',');
        json::write_f64(&mut out, *t);
        out.push(',');
        json::write_f64(&mut out, *value);
        out.push(']');
    }
    out.push_str("]}\n");
    Ok(out)
}

/// The `/report` body: uptime, every metric (sorted-name order, same
/// fixed float policy as the text report), and the rendered span tree.
fn report_json() -> String {
    use crate::metrics::Metric;
    let mut out = String::with_capacity(512);
    out.push_str("{\"uptime_secs\":");
    json::write_f64(&mut out, (crate::uptime_secs() * 1e6).round() / 1e6);
    out.push_str(",\"metrics\":[");
    let mut first = true;
    for (name, metric) in crate::registry().snapshot() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":");
        json::write_str(&mut out, &name);
        match metric {
            Metric::Counter(c) => {
                out.push_str(",\"kind\":\"counter\",\"value\":");
                out.push_str(&c.to_string());
            }
            Metric::Gauge(g) => {
                out.push_str(",\"kind\":\"gauge\",\"value\":");
                json::write_f64(&mut out, g);
            }
            Metric::Histogram(h) => {
                out.push_str(",\"kind\":\"histogram\",\"count\":");
                out.push_str(&h.count().to_string());
                out.push_str(",\"sum\":");
                json::write_f64(&mut out, h.sum());
                out.push_str(",\"mean\":");
                json::write_f64(&mut out, h.mean());
                out.push_str(",\"p50\":");
                json::write_f64(&mut out, h.p50());
                out.push_str(",\"p95\":");
                json::write_f64(&mut out, h.p95());
                out.push_str(",\"max\":");
                json::write_f64(&mut out, h.max());
            }
        }
        out.push('}');
    }
    out.push_str("],\"span_report\":");
    json::write_str(&mut out, &crate::span_report());
    out.push_str("}\n");
    out
}

fn global_slot() -> &'static Mutex<Option<Server>> {
    static GLOBAL: OnceLock<Mutex<Option<Server>>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(None))
}

/// Starts the process-global server (used by `CAP_METRICS_ADDR` /
/// `--serve-metrics`) and enables the flight recorder so `/trace` has
/// something to show. Replaces any previous global server.
///
/// # Errors
///
/// Propagates [`Server::start`] errors.
pub fn start_global(addr: &str) -> Result<SocketAddr, String> {
    let server = Server::start(addr)?;
    Ok(install_global(server))
}

/// The resilient variant of [`start_global`]: an address that is still
/// in use after [`Server::start_resilient`]'s retries yields
/// `Ok(None)` (telemetry disabled, run continues) instead of an error.
///
/// # Errors
///
/// Propagates non-`EADDRINUSE` [`Server::start_resilient`] errors.
pub fn start_global_resilient(addr: &str) -> Result<Option<SocketAddr>, String> {
    Ok(Server::start_resilient(addr)?.map(install_global))
}

fn install_global(server: Server) -> SocketAddr {
    crate::flight::enable_from_env();
    let bound = server.addr();
    let mut slot = global_slot().lock().unwrap();
    if let Some(old) = slot.take() {
        old.stop();
    }
    *slot = Some(server);
    bound
}

/// Address of the running global server, if any.
pub fn global_addr() -> Option<SocketAddr> {
    global_slot().lock().unwrap().as_ref().map(Server::addr)
}

/// Stops the global server (no-op when none is running).
pub fn stop_global() {
    if let Some(server) = global_slot().lock().unwrap().take() {
        server.stop();
    }
}

/// Performs one blocking HTTP GET against `addr` and returns the
/// response body. This is the client the integration tests, the
/// self-scrape in `exp_suite`, and `bench_baseline` use; it speaks just
/// enough HTTP/1.1 for our own server.
///
/// # Errors
///
/// Returns a description of connect/read failures or a non-200 status.
pub fn http_get(addr: SocketAddr, path: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("write request: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read response: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed response: {response:?}"))?;
    let status_line = head.lines().next().unwrap_or("");
    if !status_line.contains("200") {
        return Err(format!("GET {path}: {status_line}"));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_reports_bound_addr_and_stops_cleanly() {
        let _guard = crate::test_lock();
        crate::reset();
        let server = Server::start("127.0.0.1:0").unwrap();
        let addr = server.addr();
        assert_ne!(addr.port(), 0);
        let body = http_get(addr, "/healthz").unwrap();
        assert_eq!(body, "ok\n");
        server.stop();
        // The port is released: a fresh bind on it succeeds (best
        // effort — other processes may race us, so only check errors
        // from our own server are gone).
        assert!(http_get(addr, "/healthz").is_err());
        crate::disable();
        crate::reset();
    }

    #[test]
    fn resilient_start_degrades_on_addr_in_use() {
        let _guard = crate::test_lock();
        crate::reset();
        // Squat a concrete port with a plain listener, then ask for a
        // resilient server on the same address: after its retries it
        // must degrade to Ok(None), not error.
        let squatter = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = squatter.local_addr().unwrap().to_string();
        let degraded = Server::start_resilient(&addr).unwrap();
        assert!(degraded.is_none(), "in-use addr must degrade to None");
        // A free address still starts normally through the same path.
        let server = Server::start_resilient("127.0.0.1:0").unwrap().unwrap();
        assert_ne!(server.addr().port(), 0);
        server.stop();
        drop(squatter);
        crate::disable();
        crate::reset();
    }

    #[test]
    fn dynamic_routes_are_served_and_listed() {
        let _guard = crate::test_lock();
        register_route("/fleet-test", |query| {
            ("text/plain; charset=utf-8", format!("q={query}"))
        });
        let (status, content_type, body) = route("GET", "/fleet-test?a=1");
        assert!(status.starts_with("200"), "{status}");
        assert!(content_type.starts_with("text/plain"));
        assert_eq!(body, "q=a=1");
        // The 404 listing advertises registered dynamic routes.
        let (status, _, body) = route("GET", "/nope");
        assert!(status.starts_with("404"));
        assert!(body.contains("/fleet-test"), "{body}");
        unregister_route("/fleet-test");
        let (status, _, _) = route("GET", "/fleet-test");
        assert!(status.starts_with("404"));
    }

    #[test]
    fn unknown_routes_and_methods_are_rejected() {
        let (status, _, _) = route("GET", "/nope");
        assert!(status.starts_with("404"));
        let (status, _, _) = route("POST", "/metrics");
        assert!(status.starts_with("405"));
        let (status, _, _) = route("GET", "/metrics?x=1");
        assert!(status.starts_with("200"));
    }

    #[test]
    fn api_series_queries_are_validated() {
        // Parameter validation is independent of recorder state.
        assert!(series_json("").is_err(), "name is required");
        assert!(series_json("name=").is_err());
        assert!(series_json("name=ok;drop").is_err(), "hostile charset");
        assert!(series_json("name=a&bogus=1").is_err(), "unknown parameter");
        assert!(series_json("name=a&from=x").is_err());
        assert!(series_json("name=a&downsample=0").is_err());
        assert!(series_json("name=a&downsample=999999999").is_err());
        assert!(series_json("noequals").is_err());
        let huge = format!("name={}", "a".repeat(2000));
        assert!(series_json(&huge).is_err(), "oversized query");
        let long_name = format!("name={}", "a".repeat(300));
        assert!(series_json(&long_name).is_err(), "oversized name");

        let (status, _, _) = route("GET", "/api/series?name=a&bogus=1");
        assert!(status.starts_with("400"), "{status}");
        let (status, _, body) = route("GET", "/api/series?name=nn.fit.loss");
        assert!(status.starts_with("200"), "{status}");
        let parsed = json::parse(body.trim()).unwrap();
        assert_eq!(
            parsed.get("name").unwrap().as_str(),
            Some("nn.fit.loss"),
            "{body}"
        );
        // Byte-stable: same state, same query, same bytes.
        let (_, _, again) = route("GET", "/api/series?name=nn.fit.loss");
        assert_eq!(body, again);
    }

    #[test]
    fn dash_route_serves_html() {
        let (status, content_type, body) = route("GET", "/dash");
        assert!(status.starts_with("200"));
        assert!(content_type.starts_with("text/html"));
        assert!(body.starts_with("<!doctype html>"), "{body}");
    }

    #[test]
    fn route_counters_use_static_names() {
        assert_eq!(route_counter("/metrics"), "obs.http.requests.metrics");
        assert_eq!(
            route_counter("/api/series?name=x"),
            "obs.http.requests.api_series"
        );
        assert_eq!(route_counter("/dash?x"), "obs.http.requests.dash");
        assert_eq!(route_counter("/prof"), "obs.http.requests.prof");
        assert_eq!(route_counter("/%2e%2e/etc"), "obs.http.requests.other");
        assert_eq!(
            route_handle_histogram("/prof?x"),
            Some("obs.http.handle_us.prof")
        );
        assert_eq!(
            route_handle_histogram("/dash"),
            Some("obs.http.handle_us.dash")
        );
        assert_eq!(
            route_handle_histogram("/api/series?name=x"),
            Some("obs.http.handle_us.api_series")
        );
        assert_eq!(route_handle_histogram("/metrics"), None);
        assert_eq!(route_handle_histogram("/%2e%2e/etc"), None);
    }

    #[test]
    fn prof_route_serves_svg_even_without_a_profiler() {
        let (status, content_type, body) = route("GET", "/prof");
        assert!(status.starts_with("200"));
        assert!(content_type.starts_with("image/svg+xml"));
        assert!(body.starts_with("<svg"), "{body}");
        assert!(body.ends_with("</svg>\n"), "{body}");
    }

    #[test]
    fn report_json_is_parseable() {
        let _guard = crate::test_lock();
        crate::reset();
        crate::enable();
        crate::counter_add("demo.count", 2);
        crate::histogram_record("demo.hist", 4.0);
        {
            let _span = crate::SpanGuard::enter("demo_span");
        }
        let body = report_json();
        let parsed = json::parse(body.trim()).unwrap();
        assert!(parsed.get("uptime_secs").unwrap().as_f64().unwrap() >= 0.0);
        let json::Json::Arr(metrics) = parsed.get("metrics").unwrap() else {
            panic!("metrics must be an array");
        };
        assert!(metrics.len() >= 3, "{body}");
        assert!(parsed.get("span_report").unwrap().as_str().is_some());
        crate::disable();
        crate::reset();
    }
}
