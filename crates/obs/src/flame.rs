//! Deterministic flamegraph rendering from folded stacks.
//!
//! Input is the folded-stack text format the profiler writes
//! (`profile.folded`): one stack per line, frames joined by `;`,
//! a space, then a sample count — e.g.
//!
//! ```text
//! capctl.run;core.prune.run;core.prune.finetune;nn.fit 124
//! ```
//!
//! [`parse_folded`] is hostile-input safe: arbitrary bytes never
//! panic, malformed lines are skipped, an unterminated final line
//! (torn tail from a reader racing a writer) is dropped cleanly, and
//! per-line length/depth caps bound memory.
//!
//! [`render_svg`] produces a self-contained SVG **byte-stably**: the
//! same stacks always render to byte-identical output (BTreeMap
//! ordering, fixed `{:.2}` coordinate formatting, name-hash colors —
//! no clocks, no randomness), so profile artifacts diff cleanly in CI.
//! [`render_diff_svg`] renders a differential flamegraph of two
//! profiles (e.g. `CAP_SIMD=scalar` vs `auto`): frame widths are
//! proportional to combined sample share so both runs stay visible,
//! and fill shifts red where the second profile spends a larger
//! fraction of its time, blue where a smaller one.

use std::collections::BTreeMap;

/// Longest folded line considered by the parser.
const MAX_LINE: usize = 4096;
/// Deepest stack considered by the parser.
const MAX_DEPTH: usize = 128;

const WIDTH: f64 = 1200.0;
const ROW: f64 = 17.0;
const HEADER: f64 = 38.0;
/// Approximate glyph advance of the embedded monospace font at 11px.
const CHAR_W: f64 = 6.6;

/// Parses folded-stack text into sorted `(stack, count)` pairs,
/// merging duplicate stacks. Never panics on arbitrary input: lines
/// that are overlong, missing a count, zero-count, over-deep, or
/// containing empty frames are skipped, and a final line without a
/// terminating newline (a torn tail) is ignored.
pub fn parse_folded(text: &str) -> Vec<(String, u64)> {
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    // Only newline-terminated lines are trusted; a writer may still be
    // appending to the last one.
    let complete = match text.rfind('\n') {
        Some(pos) => &text[..pos + 1],
        None => "",
    };
    for line in complete.lines() {
        if line.is_empty() || line.len() > MAX_LINE {
            continue;
        }
        let Some((stack, count)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(count) = count.parse::<u64>() else {
            continue;
        };
        let stack = stack.trim();
        if stack.is_empty() || count == 0 {
            continue;
        }
        let mut frames = 0usize;
        let mut bad = false;
        for frame in stack.split(';') {
            frames += 1;
            if frame.is_empty() {
                bad = true;
            }
        }
        if bad || frames > MAX_DEPTH {
            continue;
        }
        *agg.entry(stack.to_string()).or_insert(0) += count;
    }
    agg.into_iter().collect()
}

/// A frame-tree node; `total` counts the primary profile, `base` the
/// baseline profile (zero outside diff mode). Both are inclusive of
/// children.
#[derive(Default)]
struct Node {
    children: BTreeMap<String, Node>,
    total: u64,
    base: u64,
}

impl Node {
    fn insert(&mut self, frames: &[&str], count: u64, baseline: bool) {
        if baseline {
            self.base += count;
        } else {
            self.total += count;
        }
        if let Some((first, rest)) = frames.split_first() {
            self.children
                .entry((*first).to_string())
                .or_default()
                .insert(rest, count, baseline);
        }
    }

    /// Layout weight: in diff mode the sum is additive across both
    /// profiles, so children always tile their parent exactly.
    fn value(&self) -> u64 {
        self.total + self.base
    }

    fn depth(&self) -> usize {
        1 + self.children.values().map(Node::depth).max().unwrap_or(0)
    }
}

fn build_tree(stacks: &[(String, u64)], baseline: bool, root: &mut Node) {
    for (stack, count) in stacks {
        let frames: Vec<&str> = stack.split(';').collect();
        root.insert(&frames, *count, baseline);
    }
}

/// FNV-1a, the workspace's stock deterministic hash.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Classic warm flamegraph palette, deterministic per frame name.
fn warm_color(name: &str) -> String {
    let h = fnv1a(name);
    let r = 205 + (h % 50);
    let g = (h >> 8) % 180;
    let b = (h >> 16) % 55;
    format!("rgb({r},{g},{b})")
}

/// Diff palette: red where the frame's share of run time grew, blue
/// where it shrank, white when unchanged. Saturates at a 10-point
/// share shift.
fn diff_color(share_delta: f64) -> String {
    let k = (share_delta.abs() * 10.0).min(1.0);
    let fade = (255.0 - 195.0 * k).round() as u64;
    if share_delta >= 0.0 {
        format!("rgb(255,{fade},{fade})")
    } else {
        format!("rgb({fade},{fade},255)")
    }
}

enum Mode {
    Single,
    /// Baseline / primary grand totals, for share computations.
    Diff(f64, f64),
}

/// Renders a self-contained, byte-stable flamegraph SVG ("icicle"
/// orientation: root on top). An empty profile renders a valid SVG
/// stating that no samples were recorded.
pub fn render_svg(stacks: &[(String, u64)], title: &str) -> String {
    let mut root = Node::default();
    build_tree(stacks, false, &mut root);
    render(&root, title, &Mode::Single)
}

/// Renders a differential flamegraph: `a` is the baseline profile,
/// `b` the one under scrutiny. Frame widths are proportional to the
/// frame's combined sample count so frames present in only one
/// profile remain visible; color encodes the share shift from `a` to
/// `b`.
pub fn render_diff_svg(a: &[(String, u64)], b: &[(String, u64)], title: &str) -> String {
    let mut root = Node::default();
    build_tree(a, true, &mut root);
    build_tree(b, false, &mut root);
    render(
        &root,
        title,
        &Mode::Diff(root.base.max(1) as f64, root.total.max(1) as f64),
    )
}

fn esc(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

fn render(root: &Node, title: &str, mode: &Mode) -> String {
    let depth = if root.children.is_empty() {
        1
    } else {
        root.depth()
    };
    let height = HEADER + depth as f64 * ROW + 12.0;
    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{height:.2}\" \
         viewBox=\"0 0 {WIDTH} {height:.2}\" font-family=\"monospace\" font-size=\"11\">\n"
    ));
    out.push_str("<style>rect{stroke:#fff;stroke-width:0.5}text{pointer-events:none}</style>\n");
    out.push_str(&format!(
        "<rect x=\"0\" y=\"0\" width=\"{WIDTH}\" height=\"{height:.2}\" fill=\"#f8f8f8\"/>\n"
    ));
    let subtitle = match mode {
        Mode::Single => format!("{} samples", root.total),
        Mode::Diff(..) => format!("{} vs {} samples", root.base, root.total),
    };
    out.push_str(&format!(
        "<text x=\"8\" y=\"16\" font-size=\"13\" fill=\"#222\">{} — {}</text>\n",
        esc(title),
        subtitle
    ));
    if root.value() == 0 {
        out.push_str(&format!(
            "<text x=\"8\" y=\"{:.2}\" fill=\"#666\">no samples recorded</text>\n",
            HEADER + 12.0
        ));
        out.push_str("</svg>\n");
        return out;
    }
    let px = WIDTH / root.value() as f64;
    write_frame(&mut out, "all", root, 0.0, 0, px, root, mode);
    out.push_str("</svg>\n");
    out
}

#[allow(clippy::too_many_arguments)]
fn write_frame(
    out: &mut String,
    name: &str,
    node: &Node,
    x: f64,
    depth: usize,
    px: f64,
    root: &Node,
    mode: &Mode,
) {
    let w = node.value() as f64 * px;
    if w < 0.1 {
        return;
    }
    let y = HEADER + depth as f64 * ROW;
    let (fill, tip) = match mode {
        Mode::Single => {
            let pct = 100.0 * node.total as f64 / root.total.max(1) as f64;
            (
                warm_color(name),
                format!("{name}: {} samples ({pct:.1}%)", node.total),
            )
        }
        Mode::Diff(a_total, b_total) => {
            let a_share = node.base as f64 / a_total;
            let b_share = node.total as f64 / b_total;
            (
                diff_color(b_share - a_share),
                format!(
                    "{name}: {} → {} samples ({:.1}% → {:.1}%)",
                    node.base,
                    node.total,
                    100.0 * a_share,
                    100.0 * b_share
                ),
            )
        }
    };
    out.push_str(&format!(
        "<g><title>{}</title><rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" \
         height=\"{:.2}\" fill=\"{fill}\"/>",
        esc(&tip),
        ROW - 1.0
    ));
    let max_chars = ((w - 6.0) / CHAR_W) as usize;
    if max_chars >= 3 {
        let shown: String = if name.chars().count() > max_chars {
            let head: String = name.chars().take(max_chars.saturating_sub(2)).collect();
            format!("{head}..")
        } else {
            name.to_string()
        };
        out.push_str(&format!(
            "<text x=\"{:.2}\" y=\"{:.2}\" fill=\"#111\">{}</text>",
            x + 3.0,
            y + 12.0,
            esc(&shown)
        ));
    }
    out.push_str("</g>\n");
    let mut child_x = x;
    for (child_name, child) in &node.children {
        write_frame(out, child_name, child, child_x, depth + 1, px, root, mode);
        child_x += child.value() as f64 * px;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_valid_lines_and_merges_duplicates() {
        let text = "a;b 3\na;b 2\nc 1\n";
        assert_eq!(
            parse_folded(text),
            vec![("a;b".to_string(), 5), ("c".to_string(), 1)]
        );
    }

    #[test]
    fn parse_drops_torn_tail_and_malformed_lines() {
        let text = "ok 2\nno_count\nbad NaN\nempty;;frame 1\n 3\nzero 0\ntorn;tail 9";
        assert_eq!(parse_folded(text), vec![("ok".to_string(), 2)]);
        assert_eq!(parse_folded("no newline at all 5"), vec![]);
        assert_eq!(parse_folded(""), vec![]);
    }

    #[test]
    fn parse_caps_line_length_and_depth() {
        let long = format!("{} 1\n", "x".repeat(MAX_LINE + 10));
        assert_eq!(parse_folded(&long), vec![]);
        let deep = format!("{} 1\n", vec!["f"; MAX_DEPTH + 1].join(";"));
        assert_eq!(parse_folded(&deep), vec![]);
        let ok_deep = format!("{} 1\n", vec!["f"; MAX_DEPTH].join(";"));
        assert_eq!(parse_folded(&ok_deep).len(), 1);
    }

    /// Arbitrary bytes must never panic the parser — a cheap
    /// deterministic fuzz (LCG, fixed seed, no wall-clock involved).
    #[test]
    fn parse_survives_arbitrary_bytes() {
        let mut state: u64 = 0x1234_5678_9abc_def0;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        for round in 0..200 {
            let len = (round * 7) % 512;
            let bytes: Vec<u8> = (0..len).map(|_| next()).collect();
            let text = String::from_utf8_lossy(&bytes);
            let _ = parse_folded(&text); // must not panic
        }
        // Structured-ish hostile inputs too.
        for text in [
            "\n\n\n",
            ";;; 1\n",
            "a; 1\n",
            "a b c\n",
            "a 18446744073709551616\n", // u64 overflow
            "a -3\n",
            "\u{0}\u{0} 1\n",
            "a\tb 2\n",
        ] {
            let _ = parse_folded(text);
        }
        assert_eq!(parse_folded("a\tb 2\n"), vec![("a\tb".to_string(), 2)]);
    }

    #[test]
    fn identical_profiles_render_byte_identical_svgs() {
        let text = "capctl.run;core.prune.run;core.score 40\n\
                    capctl.run;core.prune.run;nn.fit;tensor.matmul 60\n\
                    capctl.run 5\n";
        let a = parse_folded(text);
        let b = parse_folded(text);
        let svg_a = render_svg(&a, "profile");
        let svg_b = render_svg(&b, "profile");
        assert_eq!(svg_a.as_bytes(), svg_b.as_bytes());
        assert_eq!(
            render_diff_svg(&a, &b, "diff").as_bytes(),
            render_diff_svg(&a, &b, "diff").as_bytes()
        );
    }

    #[test]
    fn svg_is_well_formed_and_labels_frames() {
        let stacks = parse_folded("root;child_one 30\nroot;child_two 70\n");
        let svg = render_svg(&stacks, "unit & test");
        assert!(svg.starts_with("<svg"), "{svg}");
        assert!(svg.ends_with("</svg>\n"), "{svg}");
        assert!(svg.contains("unit &amp; test"), "escaped title");
        assert!(svg.contains("child_one"), "{svg}");
        assert!(svg.contains("child_two"), "{svg}");
        assert!(svg.contains("100 samples"), "{svg}");
        // Every <g> opened is closed; rects carry the fixed 2-decimal format.
        assert_eq!(svg.matches("<g>").count(), svg.matches("</g>").count());
    }

    #[test]
    fn empty_profile_renders_a_valid_placeholder() {
        let svg = render_svg(&[], "empty");
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("no samples recorded"));
        assert!(svg.ends_with("</svg>\n"));
    }

    #[test]
    fn diff_colors_encode_share_shift() {
        let a = parse_folded("app;fast 80\napp;slow 20\n");
        let b = parse_folded("app;fast 20\napp;slow 80\n");
        let svg = render_diff_svg(&a, &b, "diff");
        // "slow" grew from 20% to 80% of run time → red family;
        // "fast" shrank → blue family.
        assert!(
            svg.contains("slow: 20 → 80 samples (20.0% → 80.0%)"),
            "{svg}"
        );
        assert!(
            svg.contains("fast: 80 → 20 samples (80.0% → 20.0%)"),
            "{svg}"
        );
        assert!(svg.contains("rgb(255,60,60)"), "saturated red: {svg}");
        assert!(svg.contains("rgb(60,60,255)"), "saturated blue: {svg}");
        // Unchanged root stays white.
        assert!(svg.contains("rgb(255,255,255)"), "{svg}");
    }

    #[test]
    fn frames_only_in_one_profile_stay_visible_in_the_diff() {
        let a = parse_folded("app;removed 50\n");
        let b = parse_folded("app;added 50\n");
        let svg = render_diff_svg(&a, &b, "diff");
        assert!(svg.contains("removed: 50 → 0 samples"), "{svg}");
        assert!(svg.contains("added: 0 → 50 samples"), "{svg}");
    }
}
