//! Structured telemetry events and their JSONL / pretty renderings.

use crate::json;

/// One field value of an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, sizes, FLOPs).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (losses, accuracies, seconds).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form text (names, phases, paths).
    Str(String),
}

/// A structured telemetry record: a type name, a timestamp relative to
/// observability start, and ordered key/value fields.
///
/// Build with the fluent setters and hand to [`crate::emit`]:
///
/// ```
/// use cap_obs::Event;
/// let e = Event::new("epoch").u64("epoch", 3).f64("lr", 0.01);
/// assert!(e.to_jsonl().starts_with("{\"type\":\"epoch\""));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event type, e.g. `"epoch"` or `"prune_iteration"`.
    pub kind: &'static str,
    /// Seconds since observability was initialised (monotonic).
    pub t: f64,
    /// Ordered fields.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Starts an event of type `kind`, stamped with the current
    /// monotonic offset.
    pub fn new(kind: &'static str) -> Self {
        Event {
            kind,
            t: crate::uptime_secs(),
            fields: Vec::new(),
        }
    }

    /// Adds an unsigned integer field.
    #[must_use]
    pub fn u64(mut self, key: &'static str, v: u64) -> Self {
        self.fields.push((key, Value::U64(v)));
        self
    }

    /// Adds a signed integer field.
    #[must_use]
    pub fn i64(mut self, key: &'static str, v: i64) -> Self {
        self.fields.push((key, Value::I64(v)));
        self
    }

    /// Adds a float field.
    #[must_use]
    pub fn f64(mut self, key: &'static str, v: f64) -> Self {
        self.fields.push((key, Value::F64(v)));
        self
    }

    /// Adds a boolean field.
    #[must_use]
    pub fn bool(mut self, key: &'static str, v: bool) -> Self {
        self.fields.push((key, Value::Bool(v)));
        self
    }

    /// Adds a string field.
    #[must_use]
    pub fn str(mut self, key: &'static str, v: impl Into<String>) -> Self {
        self.fields.push((key, Value::Str(v.into())));
        self
    }

    /// Renders the event as one JSON object (no trailing newline):
    /// `{"type":...,"t":...,<fields>}`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 16);
        out.push_str("{\"type\":");
        json::write_str(&mut out, self.kind);
        out.push_str(",\"t\":");
        json::write_f64(&mut out, (self.t * 1e6).round() / 1e6);
        for (key, value) in &self.fields {
            out.push(',');
            json::write_str(&mut out, key);
            out.push(':');
            match value {
                Value::U64(v) => out.push_str(&v.to_string()),
                Value::I64(v) => out.push_str(&v.to_string()),
                Value::F64(v) => json::write_f64(&mut out, *v),
                Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
                Value::Str(s) => json::write_str(&mut out, s),
            }
        }
        out.push('}');
        out
    }

    /// Renders the event as one aligned human-readable line:
    /// `[ +12.345s] epoch  epoch=3 lr=0.01`.
    pub fn to_pretty(&self) -> String {
        let mut out = format!("[{:>+9.3}s] {:<16}", self.t, self.kind);
        for (key, value) in &self.fields {
            out.push(' ');
            out.push_str(key);
            out.push('=');
            match value {
                Value::U64(v) => out.push_str(&v.to_string()),
                Value::I64(v) => out.push_str(&v.to_string()),
                Value::F64(v) => out.push_str(&format_compact_f64(*v)),
                Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
                Value::Str(s) => out.push_str(s),
            }
        }
        out
    }
}

/// Formats floats for the pretty sink: fixed-point for moderate
/// magnitudes, scientific for extremes, full digits never needed.
fn format_compact_f64(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a == 0.0 {
        "0".to_string()
    } else if !(1e-4..1e6).contains(&a) {
        format!("{v:.3e}")
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn jsonl_rendering_is_parseable_and_ordered() {
        let e = Event {
            kind: "epoch",
            t: 1.25,
            fields: vec![
                ("epoch", Value::U64(3)),
                ("loss", Value::F64(0.5)),
                ("note", Value::Str("a\"b".into())),
                ("done", Value::Bool(false)),
                ("delta", Value::I64(-4)),
            ],
        };
        let line = e.to_jsonl();
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("epoch"));
        assert_eq!(v.get("t").unwrap().as_f64(), Some(1.25));
        assert_eq!(v.get("epoch").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("loss").unwrap().as_f64(), Some(0.5));
        assert_eq!(v.get("note").unwrap().as_str(), Some("a\"b"));
        assert_eq!(v.get("done"), Some(&json::Json::Bool(false)));
        assert_eq!(v.get("delta").unwrap().as_f64(), Some(-4.0));
    }

    #[test]
    fn nan_fields_become_null() {
        let e = Event {
            kind: "x",
            t: 0.0,
            fields: vec![("v", Value::F64(f64::NAN))],
        };
        let v = json::parse(&e.to_jsonl()).unwrap();
        assert_eq!(v.get("v"), Some(&json::Json::Null));
    }

    #[test]
    fn pretty_line_contains_fields() {
        let e = Event {
            kind: "epoch",
            t: 2.0,
            fields: vec![("epoch", Value::U64(1)), ("lr", Value::F64(0.0099))],
        };
        let line = e.to_pretty();
        assert!(line.contains("epoch=1"), "{line}");
        assert!(line.contains("lr=0.0099"), "{line}");
        assert!(line.starts_with("[   +2.000s] epoch"), "{line}");
    }
}
