//! Crash-safe file writes shared by every dump/result writer in the
//! workspace.
//!
//! A plain `std::fs::write` interrupted by a crash can leave a torn
//! file that a later tool half-parses. [`atomic_write`] closes that
//! window: the bytes go to a temporary file in the destination
//! directory, are fsync'd, and the temporary is renamed over the
//! destination — readers observe either the old content or the new,
//! never a prefix.

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-process counter so concurrent writers of the same destination
/// never collide on a temporary name.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` atomically: temp file in the same
/// directory, `fsync`, rename over the destination, then a best-effort
/// `fsync` of the directory so the rename itself is durable.
///
/// # Errors
///
/// Returns the underlying I/O error; the temporary file is removed on
/// failure (best effort).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("atomic_write: {} has no file name", path.display()),
            )
        })?
        .to_os_string();
    let mut tmp_name = file_name;
    tmp_name.push(format!(
        ".{}.{}.tmp",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = dir.join(tmp_name);
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
        return result;
    }
    // Durability of the rename needs the directory entry flushed too;
    // not all platforms/filesystems support fsync on a directory, so
    // failures here are ignored.
    if let Ok(d) = std::fs::File::open(&dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// An append-only file handle for durable logs (journals, series,
/// alert streams).
///
/// Complements [`atomic_write`]: where that replaces a whole file
/// atomically, `AppendFile` grows one incrementally. Crash safety is
/// the reader's job — every workspace append format is framed or
/// line-delimited so a torn tail from a crash mid-append is detected
/// and discarded on the next open. [`AppendFile::sync`] (or
/// [`AppendFile::append_durable`]) forces the written bytes to disk
/// when the caller needs a durability point.
#[derive(Debug)]
pub struct AppendFile {
    file: std::fs::File,
}

impl AppendFile {
    /// Opens `path` for appending, creating it if absent.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn open(path: &Path) -> std::io::Result<AppendFile> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(AppendFile { file })
    }

    /// Appends `bytes` without forcing them to disk.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.file.write_all(bytes)
    }

    /// Appends `bytes` and fsyncs the file, making the write durable.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn append_durable(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.file.write_all(bytes)?;
        self.file.sync_all()
    }

    /// Forces everything appended so far to disk.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_all()
    }

    /// Truncates the file to `len` bytes (used by openers that detect a
    /// torn tail) and seeks the append position accordingly.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn truncate(&mut self, len: u64) -> std::io::Result<()> {
        self.file.set_len(len)
    }
}

/// [`atomic_write`] with a `String` error for callers in the
/// `Result<_, String>` style used by the dump paths.
///
/// # Errors
///
/// Returns `"write <path>: <io error>"`.
pub fn atomic_write_str(path: &str, bytes: &[u8]) -> Result<(), String> {
    atomic_write(Path::new(path), bytes).map_err(|e| format!("write {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("cap_fsx_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn writes_and_replaces() {
        let dir = tmp_dir("basic");
        let path = dir.join("out.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // No temporary litter left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failure_leaves_destination_untouched() {
        let dir = tmp_dir("fail");
        let path = dir.join("out.json");
        atomic_write(&path, b"good").unwrap();
        // A directory in the way of the temp-file rename target is the
        // easiest portable failure: make the destination a directory.
        let blocked = dir.join("blocked");
        std::fs::create_dir_all(blocked.join("x")).unwrap();
        assert!(atomic_write(&blocked, b"new").is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"good");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
