//! The workspace's single doorway to the wall clock.
//!
//! Every monotonic-time read outside `crates/obs` must go through
//! [`now`] (enforced by `caplint` rule R004). Centralising clock
//! access keeps timing observable from one place and leaves the door
//! open for a virtual clock (deterministic replay, simulated time in
//! tests) without hunting down scattered `Instant::now()` calls.
//!
//! Timing results never feed back into numerics, so this layer has no
//! effect on bit-identical replay — the rule exists to keep it that
//! way.

use std::time::Instant;

/// Reads the monotonic clock.
///
/// Identical to `Instant::now()` today; the indirection is the point
/// (see module docs).
#[inline]
#[must_use]
pub fn now() -> Instant {
    Instant::now()
}

/// Seconds elapsed since `start`, as `f64`.
///
/// The common consumer shape: phase timings in `IterationRecord`,
/// epoch timings in `EpochStats`.
#[inline]
#[must_use]
pub fn elapsed_secs(start: Instant) -> f64 {
    start.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let a = now();
        let b = now();
        assert!(b >= a);
        assert!(elapsed_secs(a) >= 0.0);
    }
}
