//! Prometheus text-format exposition of the metrics [`Registry`].
//!
//! [`render`] turns a registry snapshot into the exposition format
//! scraped from the `/metrics` endpoint of [`crate::serve`]. The output
//! is deterministic: metrics are emitted in sorted-name order and every
//! float uses one fixed format ([`fmt_value`]), so two scrapes of the
//! same registry state are byte-identical and golden-file tests diff
//! cleanly.
//!
//! Mapping from registry metrics to Prometheus families:
//!
//! | Registry | Exposition |
//! |---|---|
//! | `Counter` | `counter`, integer value |
//! | `Gauge` | `gauge`, fixed 6-decimal value |
//! | `Histogram` | `summary`: `{quantile="0.5"}`, `{quantile="0.95"}`, `_sum`, `_count` |
//!
//! Registry names are dot-paths (`par.worker.0.busy_seconds`); the
//! exposition sanitises every character outside `[a-zA-Z0-9_:]` to `_`
//! and prefixes `cap_`, so the example becomes
//! `cap_par_worker_0_busy_seconds`.

use crate::metrics::{Metric, Registry};

/// Formats one sample value the Prometheus way, with a fixed number of
/// decimals so repeated scrapes are textually stable. Non-finite values
/// use the exposition spellings `NaN` / `+Inf` / `-Inf`.
pub fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v:.6}")
    }
}

/// Sanitises a registry dot-path into a Prometheus metric name:
/// `cap_` prefix, every character outside `[a-zA-Z0-9_:]` replaced by
/// `_`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("cap_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders `registry` in Prometheus text exposition format (version
/// 0.0.4). Families appear in sorted sanitised-name order, each with a
/// `# TYPE` comment line.
pub fn render(registry: &Registry) -> String {
    let mut rows: Vec<(String, Metric)> = registry
        .snapshot()
        .into_iter()
        .map(|(name, metric)| (sanitize_name(&name), metric))
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::with_capacity(64 + rows.len() * 64);
    out.push_str(&format!(
        "# TYPE cap_obs_uptime_seconds gauge\ncap_obs_uptime_seconds {}\n",
        fmt_value(crate::uptime_secs())
    ));
    for (name, metric) in rows {
        match metric {
            Metric::Counter(c) => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {c}\n"));
            }
            Metric::Gauge(g) => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", fmt_value(g)));
            }
            Metric::Histogram(h) => {
                out.push_str(&format!("# TYPE {name} summary\n"));
                out.push_str(&format!(
                    "{name}{{quantile=\"0.5\"}} {}\n",
                    fmt_value(h.p50())
                ));
                out.push_str(&format!(
                    "{name}{{quantile=\"0.95\"}} {}\n",
                    fmt_value(h.p95())
                ));
                out.push_str(&format!("{name}_sum {}\n", fmt_value(h.sum())));
                out.push_str(&format!("{name}_count {}\n", h.count()));
            }
        }
    }
    out
}

/// Validates one exposition body against the text-format line grammar:
/// every line is a `# TYPE`/`# HELP` comment or a sample
/// `name[{labels}] value`. Returns the first offending line.
///
/// This is the checker the integration tests scrape `/metrics` through;
/// it accepts exactly what [`render`] can produce (plus `# HELP`, for
/// forward compatibility).
///
/// # Errors
///
/// Returns `Err(line)` describing the first line that does not parse.
pub fn validate(body: &str) -> Result<(), String> {
    fn valid_name(s: &str) -> bool {
        let mut chars = s.chars();
        match chars.next() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
            _ => return false,
        }
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    for (i, line) in body.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            let ok = match keyword {
                "TYPE" => {
                    valid_name(name)
                        && matches!(
                            parts.next(),
                            Some("counter" | "gauge" | "summary" | "histogram" | "untyped")
                        )
                }
                "HELP" => valid_name(name),
                _ => false,
            };
            if !ok {
                return Err(format!("line {}: bad comment {line:?}", i + 1));
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_part, value_part) = match line.rsplit_once(' ') {
            Some(split) => split,
            None => return Err(format!("line {}: no value separator in {line:?}", i + 1)),
        };
        let bare = match name_part.split_once('{') {
            Some((bare, labels)) => {
                if !labels.ends_with('}') {
                    return Err(format!("line {}: unterminated labels in {line:?}", i + 1));
                }
                bare
            }
            None => name_part,
        };
        if !valid_name(bare) {
            return Err(format!("line {}: bad metric name in {line:?}", i + 1));
        }
        let numeric =
            matches!(value_part, "NaN" | "+Inf" | "-Inf") || value_part.parse::<f64>().is_ok();
        if !numeric {
            return Err(format!("line {}: bad value in {line:?}", i + 1));
        }
    }
    Ok(())
}

/// Parses one exposition body back into `(name, value)` samples — the
/// inverse of [`render`], used by the fleet supervisor to federate a
/// worker's `/metrics` scrape into its own registry.
///
/// Deliberately lenient: comment lines, blank lines, malformed lines,
/// and non-finite values are skipped rather than reported, because a
/// scrape races the worker's writes and a half-useful scrape beats
/// none. Labelled samples (summary quantiles) are skipped too — the
/// plain `_sum`/`_count` rows carry the federable signal.
pub fn parse_exposition(body: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, value)) = line.rsplit_once(' ') else {
            continue;
        };
        if name.contains('{') || name.contains(' ') {
            continue;
        }
        let Ok(v) = value.parse::<f64>() else {
            continue;
        };
        if v.is_finite() {
            out.push((name.to_string(), v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_dot_paths() {
        assert_eq!(
            sanitize_name("par.worker.0.busy_seconds"),
            "cap_par_worker_0_busy_seconds"
        );
        assert_eq!(sanitize_name("span.fit/epoch"), "cap_span_fit_epoch");
    }

    #[test]
    fn fixed_float_format_is_stable() {
        assert_eq!(fmt_value(1.5), "1.500000");
        assert_eq!(fmt_value(0.0), "0.000000");
        assert_eq!(fmt_value(f64::NAN), "NaN");
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(f64::NEG_INFINITY), "-Inf");
    }

    #[test]
    fn renders_all_metric_kinds_in_sorted_order_and_validates() {
        let r = Registry::new();
        r.gauge_set("zzz.last", 2.5);
        r.counter_add("aaa.first", 3);
        r.histogram_record("mmm.mid", 10.0);
        r.histogram_record("mmm.mid", 20.0);
        let body = render(&r);
        validate(&body).unwrap();
        // Families render in sorted-name order after the leading uptime
        // gauge (within a summary family, quantiles/_sum/_count keep
        // the conventional exposition order).
        let families: Vec<&str> = body
            .lines()
            .filter(|l| l.starts_with("# TYPE "))
            .map(|l| l.split_whitespace().nth(2).unwrap())
            .collect();
        assert_eq!(families[0], "cap_obs_uptime_seconds");
        let mut sorted = families[1..].to_vec();
        sorted.sort();
        assert_eq!(families[1..], sorted[..], "{body}");
        assert!(body.contains("# TYPE cap_aaa_first counter\ncap_aaa_first 3\n"));
        assert!(body.contains("# TYPE cap_zzz_last gauge\ncap_zzz_last 2.500000\n"));
        assert!(body.contains("cap_mmm_mid_sum 30.000000\n"));
        assert!(body.contains("cap_mmm_mid_count 2\n"));
        assert!(body.contains("cap_mmm_mid{quantile=\"0.5\"}"));
    }

    #[test]
    fn parse_round_trips_render_and_tolerates_garbage() {
        let r = Registry::new();
        r.counter_add("fleet.demo.count", 3);
        r.gauge_set("fleet.demo.gauge", 1.25);
        r.histogram_record("fleet.demo.hist", 2.0);
        let parsed = parse_exposition(&render(&r));
        let get = |name: &str| {
            parsed
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing {name} in {parsed:?}"))
        };
        assert_eq!(get("cap_fleet_demo_count"), 3.0);
        assert!((get("cap_fleet_demo_gauge") - 1.25).abs() < 1e-9);
        assert_eq!(get("cap_fleet_demo_hist_count"), 1.0);
        // Labelled quantile rows are skipped, not mangled.
        assert!(parsed.iter().all(|(n, _)| !n.contains('{')), "{parsed:?}");
        // Hostile input: garbage lines are dropped, good lines kept.
        let hostile = "# HELP x y\nok_metric 2\nbroken\nbad NaNish\nnan_metric NaN\n";
        assert_eq!(parse_exposition(hostile), vec![("ok_metric".into(), 2.0)]);
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate("ok_metric 1.0\n").is_ok());
        assert!(validate("bad metric name 1.0\n").is_err());
        assert!(validate("no_value\n").is_err());
        assert!(validate("metric not-a-number\n").is_err());
        assert!(validate("# TYPE x bogus\n").is_err());
        assert!(validate("m{quantile=\"0.5\"} 0.25\n").is_ok());
    }
}
