//! Pluggable event sinks: pretty (stderr), JSONL (file), capture (test).

use crate::event::Event;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Receives every emitted [`Event`].
///
/// Implementations must be internally synchronised — the global sink is
/// shared across threads.
pub trait Sink: Send + Sync {
    /// Handles one event.
    fn emit(&self, event: &Event);

    /// Flushes buffered output (called on [`crate::flush`] and when the
    /// sink is replaced).
    fn flush(&self) {}
}

/// Human-readable narration to stderr, one line per event.
///
/// Writes to stderr so binaries keep stdout byte-stable for their data
/// artefacts (tables, figures) while narration goes to the tty / log.
#[derive(Debug, Default)]
pub struct PrettySink;

impl Sink for PrettySink {
    fn emit(&self, event: &Event) {
        eprintln!("{}", event.to_pretty());
    }
}

/// Machine-readable JSON-lines to a file: one JSON object per event.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<std::io::BufWriter<std::fs::File>>,
}

impl JsonlSink {
    /// Creates (truncating) `path` and returns a sink writing to it.
    ///
    /// # Errors
    ///
    /// Returns the formatted I/O error when the file cannot be created.
    pub fn create(path: &str) -> Result<Self, String> {
        let file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        Ok(JsonlSink {
            writer: Mutex::new(std::io::BufWriter::new(file)),
        })
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event) {
        let mut w = self.writer.lock().unwrap();
        // A failed telemetry write must never take down the workload.
        let _ = writeln!(w, "{}", event.to_jsonl());
    }

    fn flush(&self) {
        let _ = self.writer.lock().unwrap().flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(mut w) = self.writer.lock() {
            let _ = w.flush();
        }
    }
}

/// Test sink buffering JSONL renderings in memory.
///
/// Clone the handle before installing the sink; the clone shares the
/// buffer:
///
/// ```
/// use cap_obs::sink::{CaptureSink, Sink};
/// let sink = CaptureSink::new();
/// let handle = sink.handle();
/// sink.emit(&cap_obs::Event::new("x"));
/// assert_eq!(handle.lines().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct CaptureSink {
    lines: Arc<Mutex<Vec<String>>>,
}

/// Read-side handle of a [`CaptureSink`].
#[derive(Debug, Clone, Default)]
pub struct CaptureHandle {
    lines: Arc<Mutex<Vec<String>>>,
}

impl CaptureSink {
    /// Creates an empty capture sink.
    pub fn new() -> Self {
        CaptureSink::default()
    }

    /// A handle that reads this sink's buffer even after the sink moved
    /// into the global slot.
    pub fn handle(&self) -> CaptureHandle {
        CaptureHandle {
            lines: Arc::clone(&self.lines),
        }
    }
}

impl CaptureHandle {
    /// Copy of all captured JSONL lines.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().unwrap().clone()
    }

    /// Clears the buffer.
    pub fn clear(&self) {
        self.lines.lock().unwrap().clear();
    }
}

impl Sink for CaptureSink {
    fn emit(&self, event: &Event) {
        self.lines.lock().unwrap().push(event.to_jsonl());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cap_obs_sink_test_{}.jsonl", std::process::id()));
        let path_str = path.to_str().unwrap().to_string();
        {
            let sink = JsonlSink::create(&path_str).unwrap();
            sink.emit(&Event::new("alpha").u64("n", 1));
            sink.emit(&Event::new("beta").str("s", "x\ny"));
            sink.flush();
        }
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            crate::json::parse(line).unwrap();
        }
        assert!(lines[1].contains("x\\ny"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn jsonl_sink_create_reports_errors() {
        assert!(JsonlSink::create("/nonexistent-dir-zzz/x.jsonl").is_err());
    }

    #[test]
    fn capture_sink_shares_buffer_with_handle() {
        let sink = CaptureSink::new();
        let handle = sink.handle();
        sink.emit(&Event::new("one"));
        sink.emit(&Event::new("two"));
        let lines = handle.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"one\""));
        handle.clear();
        assert!(handle.lines().is_empty());
    }
}
