//! Hand-rolled JSON writing and a minimal reader.
//!
//! The writer keeps the JSONL sink dependency-free; the reader exists so
//! integration tests (and tools) can validate emitted event streams
//! without `serde`. Both cover exactly the JSON subset the sinks
//! produce: objects, arrays, strings, finite numbers, booleans, null.

/// Appends `s` to `out` as a JSON string literal (with surrounding
/// quotes), escaping per RFC 8259.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number; non-finite values become `null`
/// (JSON has no NaN/Infinity).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Shortest round-trip representation Rust gives us.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also produced for non-finite numbers by the writer).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders this value back to JSON text using the same writer the
    /// sinks use, so `parse(v.render())` round-trips ([`write_str`] /
    /// [`write_f64`] conventions: RFC 8259 escapes, shortest float
    /// form, non-finite numbers as `null`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_f64(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, key);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses one JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid keyword at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("invalid utf-8 in string: {e}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape: {e}"))?;
                            // Surrogate pairs are not produced by the
                            // writer (it emits raw UTF-8 above 0x1F);
                            // map lone surrogates to the replacement
                            // character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "invalid escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_pathological_strings() {
        let cases = [
            ("plain", "\"plain\""),
            ("quote\"back\\slash", "\"quote\\\"back\\\\slash\""),
            ("new\nline\ttab\rret", "\"new\\nline\\ttab\\rret\""),
            ("nul\u{0}bell\u{7}", "\"nul\\u0000bell\\u0007\""),
            ("unicode: λ→∞ 🦀", "\"unicode: λ→∞ 🦀\""),
        ];
        for (input, expected) in cases {
            let mut out = String::new();
            write_str(&mut out, input);
            assert_eq!(out, expected);
            // Round-trip through the reader.
            assert_eq!(parse(&out).unwrap(), Json::Str(input.to_string()));
        }
    }

    #[test]
    fn writes_non_finite_as_null() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut out = String::new();
            write_f64(&mut out, v);
            assert_eq!(out, "null");
        }
        let mut out = String::new();
        write_f64(&mut out, 0.25);
        assert_eq!(out, "0.25");
    }

    #[test]
    fn parses_nested_documents() {
        let doc =
            r#"{"type":"epoch","t":1.5,"n":3,"ok":true,"tags":["a","b"],"nested":{"x":null}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("epoch"));
        assert_eq!(v.get("t").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            v.get("tags"),
            Some(&Json::Arr(vec![
                Json::Str("a".into()),
                Json::Str("b".into())
            ]))
        );
        assert_eq!(v.get("nested").unwrap().get("x"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "tru", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(parse("-12.5e2").unwrap().as_f64(), Some(-1250.0));
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
    }
}
