//! A small alert-rules engine evaluated on series ingest.
//!
//! Rules watch named series in the samples the recorder appends
//! ([`evaluate_sample`] is called once per ingested [`Sample`]). When a
//! rule trips it fires exactly once per installation (latched — a
//! breached threshold at a 4 Hz cadence must not spam 4 alerts a
//! second): an `alert` event is emitted, `obs.alerts_total` is bumped,
//! the flight recorder is dumped next to the run history, and one JSON
//! line is appended durably to `alerts.jsonl`.
//!
//! Rule semantics (DESIGN.md §12):
//!
//! - **Threshold** — fires when the watched value is strictly above
//!   (or strictly below) the limit. A value exactly at the limit does
//!   not fire; NaN never fires a threshold.
//! - **Stall** — fires when the watched series keeps the same bit
//!   pattern for more than `window` consecutive samples (progress
//!   gauges that stop moving). Samples missing the series don't count.
//! - **NaN-rate** — watches a monotone fault counter (e.g.
//!   `nn.numeric_faults_total`) and fires when it increases by more
//!   than `max_increase` within `window_secs` of sample time. With
//!   `max_increase = 0` any fault fires, which is how
//!   `TrainConfig::fault_policy` numeric faults route into the alert
//!   stream.
//! - **Accuracy-drop** — fires when `baseline - value` is strictly
//!   above the limit (the alert-side mirror of the pruner's rollback
//!   guard).

use crate::fsx::AppendFile;
use crate::json;
use crate::tsdb::Sample;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

/// What a rule watches and when it trips.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleKind {
    /// Value of `series` strictly above `limit`.
    ThresholdAbove {
        /// Watched series name.
        series: String,
        /// Exclusive upper bound.
        limit: f64,
    },
    /// Value of `series` strictly below `limit`.
    ThresholdBelow {
        /// Watched series name.
        series: String,
        /// Exclusive lower bound.
        limit: f64,
    },
    /// `series` unchanged (bit-identical) for more than `window`
    /// consecutive samples.
    Stall {
        /// Watched series name.
        series: String,
        /// Number of *repeats* tolerated; the `window + 1`-th
        /// consecutive sample with the same bits fires.
        window: usize,
    },
    /// Monotone counter `series` grew by more than `max_increase`
    /// within the trailing `window_secs` of sample time.
    NanRate {
        /// Watched (counter-valued) series name.
        series: String,
        /// Tolerated increase within the window.
        max_increase: f64,
        /// Trailing window, in sample-time seconds.
        window_secs: f64,
    },
    /// `baseline - series` strictly above `max_drop`.
    AccuracyDrop {
        /// Watched series name.
        series: String,
        /// Reference value recorded before pruning began.
        baseline: f64,
        /// Exclusive tolerated drop.
        max_drop: f64,
    },
}

/// A named alert rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Stable rule name (appears in events and `alerts.jsonl`).
    pub name: String,
    /// Trigger semantics.
    pub kind: RuleKind,
}

/// Per-rule evaluation state across samples.
#[derive(Debug, Default)]
pub struct RuleState {
    fired: bool,
    stall_bits: Option<u64>,
    stall_run: usize,
    rate_window: VecDeque<(f64, f64)>,
}

/// One fired alert.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Name of the rule that fired.
    pub rule: String,
    /// Series the rule watched.
    pub series: String,
    /// Sequence number of the triggering sample.
    pub seq: u64,
    /// Sample time of the triggering sample.
    pub t: f64,
    /// Observed value that tripped the rule.
    pub value: f64,
    /// Human-readable description.
    pub message: String,
}

impl Rule {
    /// The series this rule watches.
    pub fn series(&self) -> &str {
        match &self.kind {
            RuleKind::ThresholdAbove { series, .. }
            | RuleKind::ThresholdBelow { series, .. }
            | RuleKind::Stall { series, .. }
            | RuleKind::NanRate { series, .. }
            | RuleKind::AccuracyDrop { series, .. } => series,
        }
    }

    /// Evaluates this rule against one sample, updating `state`.
    /// Returns the fired alert, if any. Pure state-machine logic — no
    /// I/O, no globals — so boundary conditions are unit-testable.
    pub fn check(&self, state: &mut RuleState, sample: &Sample) -> Option<Alert> {
        if state.fired {
            return None;
        }
        let value = sample.value(self.series());
        let fired: Option<(f64, String)> = match &self.kind {
            RuleKind::ThresholdAbove { limit, .. } => value
                .filter(|v| *v > *limit)
                .map(|v| (v, format!("value {v} above limit {limit}"))),
            RuleKind::ThresholdBelow { limit, .. } => value
                .filter(|v| *v < *limit)
                .map(|v| (v, format!("value {v} below limit {limit}"))),
            RuleKind::Stall { window, .. } => value.and_then(|v| {
                let bits = v.to_bits();
                if state.stall_bits == Some(bits) {
                    state.stall_run += 1;
                } else {
                    state.stall_bits = Some(bits);
                    state.stall_run = 0;
                }
                (state.stall_run > *window).then(|| {
                    (
                        v,
                        format!(
                            "no progress: {} repeats beyond window {window}",
                            state.stall_run
                        ),
                    )
                })
            }),
            RuleKind::NanRate {
                max_increase,
                window_secs,
                ..
            } => value.and_then(|v| {
                state.rate_window.push_back((sample.t, v));
                while let Some(&(t0, _)) = state.rate_window.front() {
                    if sample.t - t0 > *window_secs && state.rate_window.len() > 1 {
                        state.rate_window.pop_front();
                    } else {
                        break;
                    }
                }
                let oldest = state.rate_window.front().map_or(v, |&(_, v0)| v0);
                let increase = v - oldest;
                // The very first observation of a non-zero fault
                // counter also counts as an increase from zero.
                let increase = if state.rate_window.len() == 1 {
                    v
                } else {
                    increase
                };
                (increase > *max_increase).then(|| {
                    (
                        v,
                        format!(
                            "counter rose by {increase} in {window_secs}s (max {max_increase})"
                        ),
                    )
                })
            }),
            RuleKind::AccuracyDrop {
                baseline, max_drop, ..
            } => value.filter(|v| baseline - v > *max_drop).map(|v| {
                (
                    v,
                    format!(
                        "dropped {} below baseline {baseline} (max {max_drop})",
                        baseline - v
                    ),
                )
            }),
        };
        let (value, message) = fired?;
        state.fired = true;
        Some(Alert {
            rule: self.name.clone(),
            series: self.series().to_string(),
            seq: sample.seq,
            t: sample.t,
            value,
            message,
        })
    }
}

/// The installed rule set plus its output paths.
struct Engine {
    rules: Vec<Rule>,
    states: Vec<RuleState>,
    alerts_path: Option<PathBuf>,
    flight_dump: Option<PathBuf>,
    fired: Vec<Alert>,
}

fn engine_slot() -> &'static Mutex<Option<Engine>> {
    static ENGINE: OnceLock<Mutex<Option<Engine>>> = OnceLock::new();
    ENGINE.get_or_init(|| Mutex::new(None))
}

/// Installs `rules` as the process-global alert set, replacing any
/// previous installation (and its latched state). Fired alerts append
/// to `alerts_path` (JSONL) and dump the flight recorder to
/// `flight_dump` when given.
pub fn install(rules: Vec<Rule>, alerts_path: Option<PathBuf>, flight_dump: Option<PathBuf>) {
    let states = rules.iter().map(|_| RuleState::default()).collect();
    *engine_slot().lock().unwrap() = Some(Engine {
        states,
        rules,
        alerts_path,
        flight_dump,
        fired: Vec::new(),
    });
}

/// Removes the installed rules (test isolation / end of run).
pub fn clear() {
    *engine_slot().lock().unwrap() = None;
}

/// Alerts fired since [`install`].
pub fn fired() -> Vec<Alert> {
    engine_slot()
        .lock()
        .unwrap()
        .as_ref()
        .map(|e| e.fired.clone())
        .unwrap_or_default()
}

/// The JSONL rendering of one alert (stable field order).
pub fn alert_line(alert: &Alert) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"type\":\"alert\",\"rule\":");
    json::write_str(&mut out, &alert.rule);
    out.push_str(",\"series\":");
    json::write_str(&mut out, &alert.series);
    out.push_str(",\"seq\":");
    out.push_str(&alert.seq.to_string());
    out.push_str(",\"t\":");
    json::write_f64(&mut out, alert.t);
    out.push_str(",\"value\":");
    json::write_f64(&mut out, alert.value);
    out.push_str(",\"message\":");
    json::write_str(&mut out, &alert.message);
    out.push_str("}\n");
    out
}

/// Runs every installed rule against `sample`, firing side effects for
/// newly tripped rules. No-op without an installation.
pub fn evaluate_sample(sample: &Sample) {
    let mut slot = engine_slot().lock().unwrap();
    let Some(engine) = slot.as_mut() else {
        return;
    };
    let mut new_alerts = Vec::new();
    for (rule, state) in engine.rules.iter().zip(engine.states.iter_mut()) {
        if let Some(alert) = rule.check(state, sample) {
            new_alerts.push(alert);
        }
    }
    if new_alerts.is_empty() {
        return;
    }
    for alert in &new_alerts {
        crate::counter_add("obs.alerts_total", 1);
        crate::emit(
            crate::Event::new("alert")
                .str("rule", alert.rule.clone())
                .str("series", alert.series.clone())
                .u64("seq", alert.seq)
                .f64("value", alert.value)
                .str("message", alert.message.clone()),
        );
        if let Some(path) = &engine.alerts_path {
            if let Ok(mut f) = AppendFile::open(path) {
                let _ = f.append_durable(alert_line(alert).as_bytes());
            }
        }
    }
    if let Some(path) = &engine.flight_dump {
        let _ = crate::flight::dump_to_file(&path.display().to_string());
    }
    engine.fired.extend(new_alerts);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seq: u64, t: f64, vals: &[(&str, f64)]) -> Sample {
        Sample {
            seq,
            t,
            points: vals.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
        }
    }

    fn rule(kind: RuleKind) -> Rule {
        Rule {
            name: "r".into(),
            kind,
        }
    }

    #[test]
    fn threshold_boundaries_are_strict() {
        let r = rule(RuleKind::ThresholdAbove {
            series: "x".into(),
            limit: 1.0,
        });
        let mut s = RuleState::default();
        assert!(r.check(&mut s, &sample(0, 0.0, &[("x", 1.0)])).is_none());
        assert!(r
            .check(&mut s, &sample(1, 0.1, &[("x", f64::NAN)]))
            .is_none());
        assert!(r.check(&mut s, &sample(2, 0.2, &[("y", 9.0)])).is_none());
        let fired = r.check(&mut s, &sample(3, 0.3, &[("x", 1.0000001)]));
        assert!(fired.is_some());
        // Latched: never fires twice.
        assert!(r.check(&mut s, &sample(4, 0.4, &[("x", 99.0)])).is_none());

        let r = rule(RuleKind::ThresholdBelow {
            series: "x".into(),
            limit: 0.0,
        });
        let mut s = RuleState::default();
        assert!(r.check(&mut s, &sample(0, 0.0, &[("x", 0.0)])).is_none());
        assert!(r.check(&mut s, &sample(1, 0.1, &[("x", -0.5)])).is_some());
    }

    #[test]
    fn stall_fires_only_beyond_window() {
        let r = rule(RuleKind::Stall {
            series: "iter".into(),
            window: 2,
        });
        let mut s = RuleState::default();
        assert!(r.check(&mut s, &sample(0, 0.0, &[("iter", 3.0)])).is_none());
        assert!(r.check(&mut s, &sample(1, 0.1, &[("iter", 3.0)])).is_none());
        assert!(r.check(&mut s, &sample(2, 0.2, &[("iter", 3.0)])).is_none());
        // A change resets the run.
        assert!(r.check(&mut s, &sample(3, 0.3, &[("iter", 4.0)])).is_none());
        assert!(r.check(&mut s, &sample(4, 0.4, &[("iter", 4.0)])).is_none());
        assert!(r.check(&mut s, &sample(5, 0.5, &[("iter", 4.0)])).is_none());
        let fired = r.check(&mut s, &sample(6, 0.6, &[("iter", 4.0)]));
        assert!(
            fired.is_some(),
            "4th identical sample = 3 repeats > window 2"
        );
    }

    #[test]
    fn nan_rate_counts_increase_within_window() {
        let r = rule(RuleKind::NanRate {
            series: "faults".into(),
            max_increase: 0.0,
            window_secs: 10.0,
        });
        let mut s = RuleState::default();
        assert!(r
            .check(&mut s, &sample(0, 0.0, &[("faults", 0.0)]))
            .is_none());
        assert!(r
            .check(&mut s, &sample(1, 1.0, &[("faults", 0.0)]))
            .is_none());
        let fired = r.check(&mut s, &sample(2, 2.0, &[("faults", 1.0)]));
        assert!(fired.is_some(), "any increase fires with max 0");

        // First-ever sample already carrying faults fires too.
        let mut s = RuleState::default();
        assert!(r
            .check(&mut s, &sample(0, 0.0, &[("faults", 2.0)]))
            .is_some());

        // Tolerant rule: increase within budget stays quiet.
        let r = rule(RuleKind::NanRate {
            series: "faults".into(),
            max_increase: 5.0,
            window_secs: 10.0,
        });
        let mut s = RuleState::default();
        assert!(r
            .check(&mut s, &sample(0, 0.0, &[("faults", 0.0)]))
            .is_none());
        assert!(r
            .check(&mut s, &sample(1, 1.0, &[("faults", 5.0)]))
            .is_none());
        assert!(r
            .check(&mut s, &sample(2, 2.0, &[("faults", 6.0)]))
            .is_some());
    }

    #[test]
    fn accuracy_drop_compares_against_baseline() {
        let r = rule(RuleKind::AccuracyDrop {
            series: "acc".into(),
            baseline: 0.9,
            max_drop: 0.1,
        });
        let mut s = RuleState::default();
        assert!(r.check(&mut s, &sample(0, 0.0, &[("acc", 0.85)])).is_none());
        assert!(
            r.check(&mut s, &sample(1, 0.1, &[("acc", 0.8)])).is_none(),
            "exactly at the limit"
        );
        let fired = r.check(&mut s, &sample(2, 0.2, &[("acc", 0.79)]));
        assert!(fired.is_some());
    }

    #[test]
    fn engine_latches_writes_jsonl_and_counts() {
        let _guard = crate::test_lock();
        crate::reset();
        crate::enable();
        let dir = std::env::temp_dir().join(format!("cap_alerts_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("alerts.jsonl");
        install(
            vec![rule(RuleKind::ThresholdAbove {
                series: "loss".into(),
                limit: 10.0,
            })],
            Some(path.clone()),
            None,
        );
        evaluate_sample(&sample(0, 0.0, &[("loss", 1.0)]));
        evaluate_sample(&sample(1, 0.5, &[("loss", 50.0)]));
        evaluate_sample(&sample(2, 1.0, &[("loss", 60.0)]));
        let alerts = fired();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].seq, 1);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        let doc = json::parse(text.trim()).unwrap();
        assert_eq!(doc.get("type").unwrap().as_str(), Some("alert"));
        assert_eq!(doc.get("rule").unwrap().as_str(), Some("r"));
        assert_eq!(doc.get("seq").unwrap().as_u64(), Some(1));
        match crate::registry()
            .snapshot()
            .iter()
            .find(|(n, _)| n == "obs.alerts_total")
            .map(|(_, m)| m.clone())
        {
            Some(crate::Metric::Counter(1)) => {}
            other => panic!("bad alert counter: {other:?}"),
        }
        clear();
        let _ = std::fs::remove_dir_all(&dir);
        crate::disable();
        crate::reset();
    }
}
