//! Self-contained HTML dashboard over recorded series.
//!
//! [`render`] turns a sample history (the recorder's live memory ring,
//! or a `series.capts` read back from disk) into one HTML document with
//! zero external references: styles are inline and every chart is
//! inline SVG, so the output works from a `file://` export as well as
//! the live `/dash` route.
//!
//! Panels, keyed by series-name convention:
//!
//! - sparklines for `nn.fit.loss`, `nn.fit.accuracy`, `core.accuracy`,
//!   `core.flops`, and `core.remaining_filters`;
//! - one sparkline per class for `core.class_accuracy.<k>`;
//! - an iteration×class heatmap over `core.class_importance.<k>`,
//!   sampled at `core.prune.iteration` boundaries.

use crate::tsdb::Sample;

/// Sparkline canvas size.
const SPARK_W: f64 = 280.0;
const SPARK_H: f64 = 60.0;

pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Finite `(t, value)` points of one series.
fn series_points(samples: &[Sample], name: &str) -> Vec<(f64, f64)> {
    samples
        .iter()
        .filter_map(|s| s.value(name).map(|v| (s.t, v)))
        .filter(|(t, v)| t.is_finite() && v.is_finite())
        .collect()
}

/// Sorted list of `u32` suffixes for series named `<prefix><k>`.
fn numeric_suffixes(samples: &[Sample], prefix: &str) -> Vec<u32> {
    let mut ks: Vec<u32> = Vec::new();
    for s in samples {
        for (name, _) in &s.points {
            if let Some(rest) = name.strip_prefix(prefix) {
                if let Ok(k) = rest.parse::<u32>() {
                    if !ks.contains(&k) {
                        ks.push(k);
                    }
                }
            }
        }
    }
    ks.sort_unstable();
    ks
}

pub(crate) fn fmt(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if !(1e-3..1e6).contains(&a) {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

/// One inline-SVG sparkline with min/max/last labels. Shared with the
/// perf-trend page ([`crate::trend`]), which plots run index on the x
/// axis instead of time.
pub(crate) fn sparkline(title: &str, points: &[(f64, f64)]) -> String {
    if points.is_empty() {
        return format!(
            "<div class=\"panel\"><h3>{}</h3><p class=\"empty\">no data</p></div>\n",
            esc(title)
        );
    }
    let (mut tmin, mut tmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut vmin, mut vmax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(t, v) in points {
        tmin = tmin.min(t);
        tmax = tmax.max(t);
        vmin = vmin.min(v);
        vmax = vmax.max(v);
    }
    let tspan = (tmax - tmin).max(1e-9);
    let vspan = (vmax - vmin).max(1e-12);
    let mut poly = String::new();
    for &(t, v) in points {
        let x = (t - tmin) / tspan * (SPARK_W - 8.0) + 4.0;
        let y = SPARK_H - 4.0 - (v - vmin) / vspan * (SPARK_H - 8.0);
        poly.push_str(&format!("{x:.1},{y:.1} "));
    }
    let last = points.last().map_or(0.0, |&(_, v)| v);
    format!(
        "<div class=\"panel\"><h3>{}</h3>\
         <svg viewBox=\"0 0 {SPARK_W} {SPARK_H}\" width=\"{SPARK_W}\" height=\"{SPARK_H}\">\
         <polyline fill=\"none\" stroke=\"#2563eb\" stroke-width=\"1.5\" points=\"{}\"/>\
         </svg>\
         <p class=\"stats\">min {} · max {} · last {}</p></div>\n",
        esc(title),
        poly.trim_end(),
        fmt(vmin),
        fmt(vmax),
        fmt(last)
    )
}

/// The iteration×class importance heatmap: for each pruning iteration
/// (the last sample at each `core.prune.iteration` value), one cell per
/// `core.class_importance.<k>` series, shaded by value relative to the
/// grid maximum.
fn heatmap(samples: &[Sample]) -> String {
    let classes = numeric_suffixes(samples, "core.class_importance.");
    if classes.is_empty() {
        return "<div class=\"panel wide\"><h3>iteration × class importance</h3>\
                <p class=\"empty\">no attribution series recorded</p></div>\n"
            .to_string();
    }
    // Last sample per iteration value, in first-seen iteration order.
    let mut iters: Vec<(u64, &Sample)> = Vec::new();
    for s in samples {
        let Some(it) = s.value("core.prune.iteration") else {
            continue;
        };
        if !it.is_finite() || it < 0.0 {
            continue;
        }
        let it = it as u64;
        match iters.iter_mut().find(|(i, _)| *i == it) {
            Some(slot) => slot.1 = s,
            None => iters.push((it, s)),
        }
    }
    if iters.is_empty() {
        return "<div class=\"panel wide\"><h3>iteration × class importance</h3>\
                <p class=\"empty\">no iterations recorded</p></div>\n"
            .to_string();
    }
    let mut grid: Vec<Vec<Option<f64>>> = Vec::with_capacity(iters.len());
    let mut vmax = 0.0f64;
    for (_, s) in &iters {
        let row: Vec<Option<f64>> = classes
            .iter()
            .map(|k| {
                let v = s.value(&format!("core.class_importance.{k}"));
                if let Some(v) = v {
                    if v.is_finite() && v > vmax {
                        vmax = v;
                    }
                }
                v
            })
            .collect();
        grid.push(row);
    }
    let cell = 22.0;
    let label = 60.0;
    let w = label + classes.len() as f64 * cell + 4.0;
    let h = 20.0 + iters.len() as f64 * cell + 4.0;
    let mut svg = format!("<svg viewBox=\"0 0 {w} {h}\" width=\"{w}\" height=\"{h}\">");
    for (ci, k) in classes.iter().enumerate() {
        svg.push_str(&format!(
            "<text x=\"{:.1}\" y=\"14\" font-size=\"10\" text-anchor=\"middle\">c{k}</text>",
            label + (ci as f64 + 0.5) * cell
        ));
    }
    for (ri, ((it, _), row)) in iters.iter().zip(grid.iter()).enumerate() {
        let y = 20.0 + ri as f64 * cell;
        svg.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"10\" text-anchor=\"end\">iter {it}</text>",
            label - 6.0,
            y + cell * 0.7
        ));
        for (ci, v) in row.iter().enumerate() {
            let x = label + ci as f64 * cell;
            match v {
                Some(v) if v.is_finite() => {
                    let frac = if vmax > 0.0 {
                        (v / vmax).clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    svg.push_str(&format!(
                        "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{:.1}\" height=\"{:.1}\" \
                         fill=\"#dc2626\" fill-opacity=\"{frac:.3}\" stroke=\"#e5e7eb\">\
                         <title>iter {it} class {}: {}</title></rect>",
                        cell - 2.0,
                        cell - 2.0,
                        classes[ci],
                        fmt(*v)
                    ));
                }
                _ => {
                    svg.push_str(&format!(
                        "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{:.1}\" height=\"{:.1}\" \
                         fill=\"none\" stroke=\"#e5e7eb\"/>",
                        cell - 2.0,
                        cell - 2.0
                    ));
                }
            }
        }
    }
    svg.push_str("</svg>");
    format!(
        "<div class=\"panel wide\" id=\"heatmap\"><h3>iteration × class importance</h3>{svg}\
         <p class=\"stats\">cell shade = class importance of the filters \
         scored that iteration, relative to grid max {}</p></div>\n",
        fmt(vmax)
    )
}

/// Renders the dashboard HTML for `samples` (may be empty). `title`
/// names the source (a run directory or "live").
pub fn render(samples: &[Sample], title: &str) -> String {
    let mut body = String::new();
    for (label, name) in [
        ("training loss (nn.fit.loss)", "nn.fit.loss"),
        ("training accuracy (nn.fit.accuracy)", "nn.fit.accuracy"),
        ("test accuracy (core.accuracy)", "core.accuracy"),
        ("FLOPs (core.flops)", "core.flops"),
        ("remaining filters", "core.remaining_filters"),
        ("pruning iteration", "core.prune.iteration"),
    ] {
        body.push_str(&sparkline(label, &series_points(samples, name)));
    }
    let class_acc = numeric_suffixes(samples, "core.class_accuracy.");
    for k in &class_acc {
        let name = format!("core.class_accuracy.{k}");
        body.push_str(&sparkline(
            &format!("class {k} accuracy"),
            &series_points(samples, &name),
        ));
    }
    let map = heatmap(samples);
    let n = samples.len();
    let span = match (samples.first(), samples.last()) {
        (Some(a), Some(b)) => format!("t {:.1}s – {:.1}s", a.t, b.t),
        _ => "empty history".to_string(),
    };
    format!(
        "<!doctype html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\
         <title>cap dashboard — {title}</title>\
         <style>\
         body{{font-family:system-ui,sans-serif;margin:1.5rem;background:#f8fafc;color:#0f172a}}\
         .grid{{display:flex;flex-wrap:wrap;gap:1rem}}\
         .panel{{background:#fff;border:1px solid #e2e8f0;border-radius:8px;padding:.75rem 1rem}}\
         .panel.wide{{flex-basis:100%}}\
         h1{{font-size:1.2rem}}h3{{margin:.1rem 0 .4rem;font-size:.85rem;font-weight:600}}\
         .stats,.empty,.meta{{color:#64748b;font-size:.75rem;margin:.3rem 0 0}}\
         </style></head><body>\
         <h1>class-aware pruning — run history ({})</h1>\
         <p class=\"meta\">{n} samples · {span}</p>\
         <div class=\"grid\">\n{body}{map}</div></body></html>\n",
        esc(title)
    )
}

/// One worker row on the fleet dashboard ([`render_fleet`]). Filled by
/// the `capfleet` supervisor from its slot table + federated scrapes.
#[derive(Debug, Clone, Default)]
pub struct FleetWorkerRow {
    /// Worker slot index (stable across restarts of the child process).
    pub slot: usize,
    /// Whether a live child currently occupies the slot.
    pub up: bool,
    /// Child pid (0 when the slot is idle).
    pub pid: u32,
    /// Spec id the slot is executing, or empty when idle.
    pub spec: String,
    /// Child restarts charged to this slot so far.
    pub restarts: u64,
    /// Last heartbeat counter observed from the worker's run dir.
    pub heartbeat: u64,
    /// Free-form status detail (e.g. `"backoff 800ms"`, `"scrape ok"`).
    pub detail: String,
}

/// Fleet-level queue summary for [`render_fleet`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetSummary {
    /// Specs waiting for a free worker (includes retry-scheduled).
    pub pending: u64,
    /// Specs currently executing on a worker.
    pub running: u64,
    /// Specs completed successfully.
    pub done: u64,
    /// Specs abandoned after exhausting their retry budget.
    pub poisoned: u64,
    /// Worker child restarts across the whole fleet.
    pub restarts_total: u64,
}

impl FleetSummary {
    /// Total specs across all states.
    pub fn total(&self) -> u64 {
        self.pending + self.running + self.done + self.poisoned
    }
}

/// Renders the `/fleet` aggregation page: queue progress plus one row
/// per worker slot. Self-contained HTML like [`render`]; deterministic
/// for a given input so tests can assert on substrings.
pub fn render_fleet(summary: &FleetSummary, workers: &[FleetWorkerRow], title: &str) -> String {
    let total = summary.total();
    let done_frac = if total > 0 {
        summary.done as f64 / total as f64
    } else {
        0.0
    };
    let bar_w = 420.0;
    let mut rows = String::new();
    for w in workers {
        let state = if w.up { "up" } else { "down" };
        rows.push_str(&format!(
            "<tr><td>{}</td><td class=\"{state}\">{state}</td><td>{}</td>\
             <td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
            w.slot,
            if w.pid == 0 {
                "-".to_string()
            } else {
                w.pid.to_string()
            },
            if w.spec.is_empty() { "-" } else { &w.spec },
            w.restarts,
            w.heartbeat,
            esc(&w.detail)
        ));
    }
    format!(
        "<!doctype html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\
         <title>cap fleet — {title}</title>\
         <style>\
         body{{font-family:system-ui,sans-serif;margin:1.5rem;background:#f8fafc;color:#0f172a}}\
         .panel{{background:#fff;border:1px solid #e2e8f0;border-radius:8px;padding:.75rem 1rem;\
         margin-bottom:1rem}}\
         h1{{font-size:1.2rem}}h3{{margin:.1rem 0 .4rem;font-size:.85rem;font-weight:600}}\
         table{{border-collapse:collapse;font-size:.8rem}}\
         td,th{{border:1px solid #e2e8f0;padding:.25rem .6rem;text-align:left}}\
         .up{{color:#16a34a}}.down{{color:#dc2626}}\
         .stats,.meta{{color:#64748b;font-size:.75rem;margin:.3rem 0 0}}\
         </style></head><body>\
         <h1>capfleet — {}</h1>\
         <div class=\"panel\"><h3>queue</h3>\
         <svg viewBox=\"0 0 {bar_w} 18\" width=\"{bar_w}\" height=\"18\">\
         <rect x=\"0\" y=\"0\" width=\"{bar_w}\" height=\"18\" fill=\"#e2e8f0\"/>\
         <rect x=\"0\" y=\"0\" width=\"{:.1}\" height=\"18\" fill=\"#16a34a\"/>\
         </svg>\
         <p class=\"stats\" id=\"queue-stats\">{} done / {total} total · {} pending · \
         {} running · {} poisoned · {} restarts</p></div>\
         <div class=\"panel\"><h3>workers</h3>\
         <table><tr><th>slot</th><th>state</th><th>pid</th><th>spec</th>\
         <th>restarts</th><th>heartbeat</th><th>detail</th></tr>\n{rows}</table></div>\
         </body></html>\n",
        esc(title),
        done_frac * bar_w,
        summary.done,
        summary.pending,
        summary.running,
        summary.poisoned,
        summary.restarts_total,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seq: u64, t: f64, vals: &[(&str, f64)]) -> Sample {
        Sample {
            seq,
            t,
            points: vals.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn renders_fleet_summary_and_worker_rows() {
        let summary = FleetSummary {
            pending: 2,
            running: 1,
            done: 3,
            poisoned: 1,
            restarts_total: 4,
        };
        let workers = vec![
            FleetWorkerRow {
                slot: 0,
                up: true,
                pid: 1234,
                spec: "vgg16-c10-p10".to_string(),
                restarts: 1,
                heartbeat: 42,
                detail: "scrape ok".to_string(),
            },
            FleetWorkerRow {
                slot: 1,
                up: false,
                detail: "backoff <800ms>".to_string(),
                ..FleetWorkerRow::default()
            },
        ];
        let html = render_fleet(&summary, &workers, "smoke <sweep>");
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.contains("smoke &lt;sweep&gt;"), "title escaped");
        assert!(html.contains("3 done / 7 total"));
        assert!(html.contains("2 pending"));
        assert!(html.contains("1 poisoned"));
        assert!(html.contains("4 restarts"));
        assert!(html.contains("vgg16-c10-p10"));
        assert!(html.contains("backoff &lt;800ms&gt;"), "detail escaped");
        assert!(html.contains("class=\"up\""));
        assert!(html.contains("class=\"down\""));
        // Idle slot renders placeholders, not empties.
        assert!(html.contains("<td>-</td>"));
        // Deterministic render.
        assert_eq!(html, render_fleet(&summary, &workers, "smoke <sweep>"));
    }

    #[test]
    fn renders_empty_history() {
        let html = render(&[], "empty");
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.contains("no data"));
        assert!(html.contains("no attribution series recorded"));
    }

    #[test]
    fn renders_sparklines_class_accuracy_and_heatmap() {
        let samples: Vec<Sample> = (0..4)
            .map(|i| {
                sample(
                    i,
                    i as f64,
                    &[
                        ("core.accuracy", 0.9 - 0.01 * i as f64),
                        ("core.class_accuracy.0", 0.95),
                        ("core.class_accuracy.1", 0.80 + 0.01 * i as f64),
                        ("core.class_importance.0", 0.1 * i as f64),
                        ("core.class_importance.1", 0.5),
                        ("core.prune.iteration", (i / 2) as f64),
                        ("nn.fit.loss", 2.0 / (i + 1) as f64),
                    ],
                )
            })
            .collect();
        let html = render(&samples, "unit <test>");
        assert!(html.contains("unit &lt;test&gt;"), "title escaped");
        assert!(html.contains("class 0 accuracy"));
        assert!(html.contains("class 1 accuracy"));
        assert!(html.contains("id=\"heatmap\""));
        assert!(html.contains("iter 0"));
        assert!(html.contains("iter 1"));
        assert!(html.contains("<polyline"));
        // Two iterations × two classes of filled cells.
        assert!(html.matches("<title>iter ").count() >= 4, "{html}");
    }
}
