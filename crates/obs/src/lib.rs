#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

//! `cap-obs` — zero-dependency observability for the class-aware
//! pruning workspace: scoped span timers, a metrics registry, and
//! pluggable event sinks.
//!
//! # Model
//!
//! - **Spans** ([`span!`]) are RAII scope timers. They nest via a
//!   thread-local stack, so per-layer forward/backward time and the
//!   im2col/matmul kernel time inside it roll up into a call tree
//!   ([`span_report`]). Disabled spans cost one relaxed atomic load.
//! - **Metrics** live in a process-global [`Registry`]: counters,
//!   gauges, and log-bucketed histograms with p50/p95/max summaries.
//! - **Events** ([`Event`]) are structured records (epoch finished,
//!   pruning iteration done, …) routed to the installed [`Sink`]: a
//!   human-readable pretty printer on stderr or a machine-readable
//!   JSONL file compatible with the `BENCH_*.json` perf-record style.
//!
//! Everything is **off by default** and cheap when off: no allocation,
//! no clock reads, no locks on the disabled path (verified by the
//! `obs_overhead` benchmark in `cap-bench`).
//!
//! # Quickstart
//!
//! ```
//! // Programmatic: enable + capture events in memory.
//! use cap_obs as obs;
//! let sink = obs::sink::CaptureSink::new();
//! let handle = sink.handle();
//! let _obs = obs::test_lock(); // serialise global state (tests only)
//! obs::reset();
//! obs::set_sink(Box::new(sink));
//! obs::enable();
//! {
//!     let _span = obs::span!("demo.work");
//!     obs::emit(obs::Event::new("demo").u64("n", 1));
//! }
//! obs::flush();
//! assert_eq!(handle.lines().len(), 1);
//! obs::disable();
//! obs::reset();
//! ```
//!
//! From a binary, configuration comes from one environment variable or
//! CLI flag (`--trace` in `capctl` and the bench binaries):
//!
//! ```text
//! CAP_TRACE=pretty                 narrate lifecycle events to stderr
//! CAP_TRACE=jsonl:run.jsonl        stream events to run.jsonl
//! CAP_TRACE=jsonl:run.jsonl,detail also emit per-span and per-batch events
//! ```
//!
//! Span names follow `crate.component.op` (see DESIGN.md §7), e.g.
//! `tensor.matmul`, `nn.conv2d.forward`, `core.prune.finetune`.

pub mod alerts;
pub mod clock;
pub mod dash;
pub mod expo;
pub mod flame;
pub mod flight;
pub mod fsx;
pub mod json;
pub mod metrics;
pub mod prof;
pub mod recorder;
pub mod serve;
pub mod sink;
pub mod trend;
pub mod tsdb;

mod event;
mod span;

pub use event::{Event, Value};
pub use metrics::{Histogram, Metric, Registry};
pub use sink::Sink;
pub use span::{span_report, SpanGuard};

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Master gate: when false every instrumentation point is a no-op.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Detail gate: when true, per-span and per-batch events are emitted
/// too (high volume; lifecycle events only by default).
static DETAIL: AtomicBool = AtomicBool::new(false);

static REGISTRY: OnceLock<Registry> = OnceLock::new();
static SINK: OnceLock<Mutex<Option<Box<dyn Sink>>>> = OnceLock::new();
static START: OnceLock<Instant> = OnceLock::new();
static TEST_LOCK: OnceLock<Mutex<()>> = OnceLock::new();

/// Opens a timed span; expands to a [`SpanGuard`] that must be bound:
/// `let _span = obs::span!("tensor.matmul");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}

/// Turns instrumentation on.
pub fn enable() {
    let _ = START.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::Release);
}

/// Turns instrumentation off (spans/metrics/events become no-ops).
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether instrumentation is on. One relaxed atomic load — this is the
/// entire cost of a disabled span or event.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether high-volume detail events (per-span, per-batch) are on.
#[inline]
pub fn detail() -> bool {
    DETAIL.load(Ordering::Relaxed)
}

/// Switches high-volume detail events on or off.
pub fn set_detail(on: bool) {
    DETAIL.store(on, Ordering::Release);
}

/// Seconds since instrumentation was first enabled (0.0 before that).
pub fn uptime_secs() -> f64 {
    START
        .get()
        .map(|s| s.elapsed().as_secs_f64())
        .unwrap_or(0.0)
}

/// Microseconds between observability start and `t` (0.0 before
/// [`enable`] or for instants predating it). Used to place flight
/// recorder records on the same clock as [`Event::t`].
pub(crate) fn instant_offset_us(t: Instant) -> f64 {
    START
        .get()
        .map(|s| {
            t.checked_duration_since(*s)
                .unwrap_or_default()
                .as_secs_f64()
                * 1e6
        })
        .unwrap_or(0.0)
}

/// The process-global metrics registry.
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::new)
}

fn sink_slot() -> &'static Mutex<Option<Box<dyn Sink>>> {
    SINK.get_or_init(|| Mutex::new(None))
}

/// Installs the global event sink, flushing and replacing any previous
/// one.
pub fn set_sink(sink: Box<dyn Sink>) {
    let mut slot = sink_slot().lock().unwrap();
    if let Some(old) = slot.take() {
        old.flush();
    }
    *slot = Some(sink);
}

/// Removes the global sink (flushing it).
pub fn clear_sink() {
    let mut slot = sink_slot().lock().unwrap();
    if let Some(old) = slot.take() {
        old.flush();
    }
}

/// Flushes the installed sink, if any.
pub fn flush() {
    if let Some(sink) = sink_slot().lock().unwrap().as_ref() {
        sink.flush();
    }
}

/// Routes `event` to the installed sink. No-op (without rendering the
/// event) when instrumentation is disabled or no sink is installed.
pub fn emit(event: Event) {
    if !enabled() {
        return;
    }
    if flight::enabled() {
        flight::record_instant(event.kind, event.t);
    }
    if let Some(sink) = sink_slot().lock().unwrap().as_ref() {
        sink.emit(&event);
    }
}

/// Adds `n` to global counter `name` (no-op when disabled).
pub fn counter_add(name: &str, n: u64) {
    if enabled() {
        registry().counter_add(name, n);
    }
}

/// Sets global gauge `name` (no-op when disabled).
pub fn gauge_set(name: &str, v: f64) {
    if enabled() {
        registry().gauge_set(name, v);
    }
}

/// Records into global histogram `name` (no-op when disabled).
pub fn histogram_record(name: &str, v: f64) {
    if enabled() {
        registry().histogram_record(name, v);
    }
}

/// Renders every metric plus the span tree as a human-readable report.
///
/// Metrics appear in sorted-name order with one fixed float format
/// ([`expo::fmt_value`]), so two reports over the same registry state —
/// and a report vs a `/metrics` scrape — diff cleanly.
pub fn report() -> String {
    let mut out = String::new();
    let spans = span_report();
    if !spans.is_empty() {
        out.push_str(&spans);
    }
    let mut wrote_header = false;
    for (name, metric) in registry().snapshot() {
        if name.starts_with("span.") {
            continue;
        }
        if !wrote_header {
            out.push_str("metric                                    value\n");
            wrote_header = true;
        }
        match metric {
            Metric::Counter(c) => out.push_str(&format!("{name:<40} {c}\n")),
            Metric::Gauge(g) => {
                out.push_str(&format!("{name:<40} {}\n", expo::fmt_value(g)));
            }
            Metric::Histogram(h) => out.push_str(&format!(
                "{name:<40} n={} mean={} p50={} p95={} max={}\n",
                h.count(),
                expo::fmt_value(h.mean()),
                expo::fmt_value(h.p50()),
                expo::fmt_value(h.p95()),
                expo::fmt_value(h.max())
            )),
        }
    }
    out
}

/// Clears the registry, the flight recorder rings, and removes the
/// sink. Leaves the enable flags untouched; meant for test isolation
/// together with [`test_lock`].
pub fn reset() {
    registry().reset();
    clear_sink();
    flight::clear();
    set_detail(false);
}

/// Serialises tests that touch the process-global observability state
/// (enable flag, registry, sink). Hold the returned guard for the whole
/// test.
pub fn test_lock() -> MutexGuard<'static, ()> {
    TEST_LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Configures observability from a spec string (the `--trace` argument
/// / `CAP_TRACE` value): `pretty`, `jsonl:<path>`, with an optional
/// `,detail` suffix enabling per-span/per-batch events.
///
/// # Errors
///
/// Returns a description of an unknown mode or an unopenable file.
pub fn init_from_spec(spec: &str) -> Result<(), String> {
    let (mode, detail_flag) = match spec.strip_suffix(",detail") {
        Some(rest) => (rest, true),
        None => (spec, false),
    };
    if mode == "pretty" {
        set_sink(Box::new(sink::PrettySink));
    } else if let Some(path) = mode.strip_prefix("jsonl:") {
        if path.is_empty() {
            return Err("jsonl: requires a path, e.g. jsonl:run.jsonl".to_string());
        }
        set_sink(Box::new(sink::JsonlSink::create(path)?));
    } else {
        return Err(format!(
            "unknown trace spec {spec:?}; expected pretty or jsonl:<path> (optionally ,detail)"
        ));
    }
    set_detail(detail_flag);
    enable();
    Ok(())
}

/// Reads `CAP_TRACE` and calls [`init_from_spec`]. Returns whether
/// observability was enabled.
///
/// # Errors
///
/// Propagates [`init_from_spec`] errors (the variable being unset is
/// `Ok(false)`, not an error).
pub fn init_from_env() -> Result<bool, String> {
    match std::env::var("CAP_TRACE") {
        Ok(spec) if !spec.is_empty() => init_from_spec(&spec).map(|()| true),
        _ => Ok(false),
    }
}

/// What [`init_telemetry`] switched on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Telemetry {
    /// Whether an event sink was installed (via the CLI spec or
    /// `CAP_TRACE`).
    pub tracing: bool,
    /// Address of the live telemetry server, when `CAP_METRICS_ADDR`
    /// started one.
    pub serving: Option<SocketAddr>,
    /// Whether `CAP_PROF_HZ` started the sampling profiler.
    pub profiling: bool,
}

/// One-call telemetry setup shared by every binary in the workspace
/// (`capctl` and all `cap-bench` bins route through this), so
/// `CAP_TRACE` and `CAP_METRICS_ADDR` behave identically everywhere:
///
/// 1. installs the event sink from `cli_trace` (a `--trace` argument)
///    when given, else from `CAP_TRACE`;
/// 2. when `CAP_METRICS_ADDR` is set (e.g. `127.0.0.1:9184`), starts
///    the process-global [`serve`] server there — which also enables
///    instrumentation and the [`flight`] recorder;
/// 3. when `CAP_PROF_HZ` is set, starts the sampling [`prof`]iler at
///    that rate (writing to `CAP_PROF_OUT` if given; a run directory
///    opened later retargets the output to its `profile.folded`).
///
/// # Errors
///
/// Propagates [`init_from_spec`] errors, server bind failures, and
/// profiler spawn failures.
pub fn init_telemetry(cli_trace: Option<&str>) -> Result<Telemetry, String> {
    let tracing = match cli_trace {
        Some(spec) => init_from_spec(spec).map(|()| true)?,
        None => init_from_env()?,
    };
    // Resilient bind: an address squatted by another process retries
    // with backoff, then degrades to disabled-with-warning — telemetry
    // loss must not error the run it observes.
    let serving = match std::env::var("CAP_METRICS_ADDR") {
        Ok(addr) if !addr.is_empty() => serve::start_global_resilient(&addr)?,
        _ => None,
    };
    let profiling = match prof::hz_from_env() {
        Some(hz) => {
            let out = std::env::var("CAP_PROF_OUT")
                .ok()
                .filter(|p| !p.is_empty())
                .map(std::path::PathBuf::from);
            prof::start_global(hz, out)?
        }
        None => false,
    };
    Ok(Telemetry {
        tracing,
        serving,
        profiling,
    })
}

/// The shared end-of-process counterpart to [`init_telemetry`], routed
/// through by `capctl` and `cap-bench`'s `finalize_telemetry` so every
/// binary tears telemetry down the same way:
///
/// 1. honours `CAP_FLIGHT_DUMP=<path>` by writing the flight-recorder
///    chrome trace there (emitting a `flight_dump` event either way);
/// 2. stops the sampling [`recorder`] (final fsync'd sample);
/// 3. stops the sampling [`prof`]iler (final `profile.folded` write);
/// 4. stops the global [`serve`] server;
/// 5. flushes the event sink.
///
/// # Errors
///
/// Returns the flight-dump failure, after still running the remaining
/// shutdown steps.
pub fn finalize_process() -> Result<(), String> {
    let mut result = Ok(());
    if flight::enabled() {
        if let Ok(path) = std::env::var("CAP_FLIGHT_DUMP") {
            if !path.is_empty() {
                let dump = flight::dump_to_file(&path);
                emit(match &dump {
                    Ok(()) => Event::new("flight_dump").str("path", path),
                    Err(e) => Event::new("flight_dump").str("error", e.clone()),
                });
                result = dump;
            }
        }
    }
    recorder::stop_global();
    prof::stop_global();
    serve::stop_global();
    flush();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_routes_to_sink_only_when_enabled() {
        let _guard = test_lock();
        reset();
        disable();
        let sink = sink::CaptureSink::new();
        let handle = sink.handle();
        set_sink(Box::new(sink));
        emit(Event::new("dropped"));
        assert!(handle.lines().is_empty());
        enable();
        emit(Event::new("kept").u64("n", 7));
        assert_eq!(handle.lines().len(), 1);
        assert!(handle.lines()[0].contains("\"kept\""));
        disable();
        reset();
    }

    #[test]
    fn metric_helpers_respect_gate() {
        let _guard = test_lock();
        reset();
        disable();
        counter_add("c", 1);
        gauge_set("g", 1.0);
        histogram_record("h", 1.0);
        assert!(registry().snapshot().is_empty());
        enable();
        counter_add("c", 2);
        gauge_set("g", 3.0);
        histogram_record("h", 4.0);
        assert_eq!(registry().snapshot().len(), 3);
        let text = report();
        assert!(text.contains("c "), "{text}");
        assert!(text.contains("n=1"), "{text}");
        disable();
        reset();
    }

    #[test]
    fn init_from_spec_variants() {
        let _guard = test_lock();
        reset();
        assert!(init_from_spec("nonsense").is_err());
        assert!(init_from_spec("jsonl:").is_err());
        init_from_spec("pretty").unwrap();
        assert!(enabled());
        assert!(!detail());
        let path = std::env::temp_dir().join(format!("cap_obs_spec_{}.jsonl", std::process::id()));
        init_from_spec(&format!("jsonl:{},detail", path.display())).unwrap();
        assert!(detail());
        emit(Event::new("ping"));
        flush();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"ping\""));
        let _ = std::fs::remove_file(&path);
        disable();
        reset();
    }

    /// Pins the stable-output contract: metrics render in sorted-name
    /// order with the fixed float format, in both the text report and
    /// the Prometheus exposition.
    #[test]
    fn report_and_exposition_are_sorted_with_fixed_floats() {
        let _guard = test_lock();
        reset();
        enable();
        // Insert deliberately out of order.
        gauge_set("zeta.gauge", 1.25);
        counter_add("alpha.count", 7);
        histogram_record("mid.hist", 3.0);
        gauge_set("beta.gauge", 2.0);

        let text = report();
        let metric_names: Vec<&str> = text
            .lines()
            .skip(1) // header
            .filter_map(|l| l.split_whitespace().next())
            .collect();
        assert_eq!(
            metric_names,
            vec!["alpha.count", "beta.gauge", "mid.hist", "zeta.gauge"],
            "{text}"
        );
        assert!(text.contains("beta.gauge"), "{text}");
        assert!(text.contains("2.000000"), "{text}");
        assert!(text.contains("zeta.gauge"), "{text}");
        assert!(text.contains("1.250000"), "{text}");

        let body = expo::render(registry());
        expo::validate(&body).unwrap();
        let families: Vec<&str> = body
            .lines()
            .filter(|l| l.starts_with("# TYPE "))
            .map(|l| l.split_whitespace().nth(2).unwrap())
            .collect();
        assert_eq!(
            families,
            vec![
                "cap_obs_uptime_seconds",
                "cap_alpha_count",
                "cap_beta_gauge",
                "cap_mid_hist",
                "cap_zeta_gauge",
            ],
            "{body}"
        );
        assert!(body.contains("cap_beta_gauge 2.000000\n"), "{body}");
        // Two scrapes of an unchanged registry are byte-identical
        // modulo the uptime gauge line.
        let strip = |s: &str| -> String {
            s.lines()
                .filter(|l| !l.contains("cap_obs_uptime_seconds"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&body), strip(&expo::render(registry())));
        disable();
        reset();
    }

    #[test]
    fn concurrent_emitters_do_not_lose_events() {
        let _guard = test_lock();
        reset();
        enable();
        let sink = sink::CaptureSink::new();
        let handle = sink.handle();
        set_sink(Box::new(sink));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for i in 0..250 {
                        emit(Event::new("tick").u64("i", i));
                        counter_add("ticks", 1);
                        let _span = crate::span!("ticker");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(handle.lines().len(), 1000);
        let snap = registry().snapshot();
        match snap.iter().find(|(n, _)| n == "ticks").map(|(_, m)| m) {
            Some(Metric::Counter(c)) => assert_eq!(*c, 1000),
            other => panic!("bad counter {other:?}"),
        }
        match snap
            .iter()
            .find(|(n, _)| n == "span.ticker")
            .map(|(_, m)| m)
        {
            Some(Metric::Histogram(h)) => assert_eq!(h.count(), 1000),
            other => panic!("bad span histogram {other:?}"),
        }
        disable();
        reset();
    }
}
