//! RAII span timers with nesting, rolled up into the metrics registry.

use crate::metrics::Metric;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// A scoped timer created by [`crate::span!`]; records its elapsed time
/// on drop under the full nested path (`outer/inner`).
///
/// When observability is disabled the guard is inert: construction is
/// one relaxed atomic load and drop is a `None` check — no allocation,
/// no clock read.
#[must_use = "a span guard times the scope it lives in; bind it with `let _span = ...`"]
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<(Instant, &'static str)>,
}

impl SpanGuard {
    /// Starts a span named `name` (convention: `crate.component.op`).
    pub fn enter(name: &'static str) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard { active: None };
        }
        STACK.with(|s| s.borrow_mut().push(name));
        // Mirror the push for the sampling profiler (one relaxed load
        // when off; the disabled-span path above is untouched).
        if crate::prof::mirroring() {
            crate::prof::on_span_enter(name);
        }
        SpanGuard {
            active: Some((Instant::now(), name)),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((start, name)) = self.active.take() else {
            return;
        };
        let elapsed_ns = start.elapsed().as_nanos() as f64;
        let path = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            // Defensive: only pop our own frame even if a nested guard
            // leaked past its scope.
            if stack.last() == Some(&name) {
                stack.pop();
            }
            path
        });
        if crate::prof::mirroring() {
            crate::prof::on_span_exit(name);
        }
        crate::registry().histogram_record(&format!("span.{path}"), elapsed_ns);
        if crate::flight::enabled() {
            crate::flight::record_span(&path, crate::instant_offset_us(start), elapsed_ns / 1e3);
        }
        if crate::detail() {
            crate::emit(
                crate::Event::new("span")
                    .str("path", path)
                    .f64("ns", elapsed_ns),
            );
        }
    }
}

/// Renders every `span.*` histogram in the registry as an indented
/// call-tree with count / total / p50 / p95 / max columns.
///
/// Returns an empty string when nothing was recorded.
pub fn span_report() -> String {
    let snapshot = crate::registry().snapshot();
    let spans: Vec<(&str, &crate::metrics::Histogram)> = snapshot
        .iter()
        .filter_map(|(name, metric)| match metric {
            Metric::Histogram(h) => name.strip_prefix("span.").map(|p| (p, h)),
            _ => None,
        })
        .collect();
    if spans.is_empty() {
        return String::new();
    }
    let mut out = String::from(
        "span                                      count      total      p50      p95      max\n",
    );
    // BTreeMap ordering means a path sorts directly after its parent
    // prefix, so indenting by depth renders the tree.
    for (path, h) in spans {
        let depth = path.matches('/').count();
        let label = format!(
            "{}{}",
            "  ".repeat(depth),
            path.rsplit('/').next().unwrap_or(path)
        );
        out.push_str(&format!(
            "{label:<40} {:>6} {:>10} {:>8} {:>8} {:>8}\n",
            h.count(),
            fmt_ns(h.sum()),
            fmt_ns(h.p50()),
            fmt_ns(h.p95()),
            fmt_ns(h.max()),
        ));
    }
    out
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.1}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share the process-global enable flag and registry, so
    // they serialise on a lock (the rest of the obs unit tests do not
    // touch global state).
    fn with_global_obs(f: impl FnOnce()) {
        let _guard = crate::test_lock();
        crate::reset();
        crate::enable();
        f();
        crate::disable();
        crate::reset();
    }

    #[test]
    fn nested_spans_record_full_paths() {
        with_global_obs(|| {
            {
                let _outer = SpanGuard::enter("outer");
                std::thread::sleep(std::time::Duration::from_millis(2));
                {
                    let _inner = SpanGuard::enter("inner");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                {
                    let _inner = SpanGuard::enter("inner");
                }
            }
            let snap = crate::registry().snapshot();
            let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
            assert!(names.contains(&"span.outer"), "{names:?}");
            assert!(names.contains(&"span.outer/inner"), "{names:?}");
            let (_, inner) = snap.iter().find(|(n, _)| n == "span.outer/inner").unwrap();
            let (_, outer) = snap.iter().find(|(n, _)| n == "span.outer").unwrap();
            match (inner, outer) {
                (Metric::Histogram(i), Metric::Histogram(o)) => {
                    assert_eq!(i.count(), 2);
                    assert_eq!(o.count(), 1);
                    assert!(
                        o.sum() > i.sum(),
                        "outer must include inner time: {} vs {}",
                        o.sum(),
                        i.sum()
                    );
                }
                other => panic!("unexpected metrics {other:?}"),
            }
        });
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = crate::test_lock();
        crate::reset();
        crate::disable();
        {
            let _span = SpanGuard::enter("ghost");
        }
        assert!(crate::registry().snapshot().is_empty());
    }

    #[test]
    fn report_renders_tree() {
        with_global_obs(|| {
            {
                let _a = SpanGuard::enter("fit");
                let _b = SpanGuard::enter("batch");
            }
            let report = span_report();
            assert!(report.contains("fit"), "{report}");
            assert!(report.contains("  batch"), "{report}");
            assert!(report.lines().count() >= 3, "{report}");
        });
    }

    #[test]
    fn span_paths_are_per_thread() {
        with_global_obs(|| {
            let t = std::thread::spawn(|| {
                let _a = SpanGuard::enter("worker");
                std::thread::sleep(std::time::Duration::from_millis(1));
            });
            {
                let _m = SpanGuard::enter("main_side");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            t.join().unwrap();
            let snap = crate::registry().snapshot();
            let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
            // Neither thread nests inside the other.
            assert!(names.contains(&"span.worker"), "{names:?}");
            assert!(names.contains(&"span.main_side"), "{names:?}");
            assert!(!names.iter().any(|n| n.contains('/')), "{names:?}");
        });
    }
}
