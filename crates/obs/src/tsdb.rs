//! An embedded, append-only time-series store (`series.capts`).
//!
//! Zero-dependency like the rest of the crate, and built on the same
//! hostile-input discipline as the checkpoint v2 format: every frame is
//! length-prefixed and CRC32-guarded, every length field is bounded
//! before allocation, and a reader presented with arbitrary bytes never
//! panics — it returns the longest valid prefix.
//!
//! # Wire format
//!
//! ```text
//! file   := "CAPT" u32:version(=1) frame*
//! frame  := u32:payload_len u32:crc32(payload) payload
//! payload:= u64:seq f64:t u8:kind varint:n_points point{n_points}
//! point  := kind=0 (full):  varint:name_len name_bytes varint:value_bits
//!           kind=1 (delta): varint:(value_bits XOR previous value_bits)
//! ```
//!
//! All fixed-width integers are little-endian; `varint` is LEB128.
//! A *full* frame (kind 0) carries the sorted series names inline; a
//! *delta* frame (kind 1) reuses the name list of the immediately
//! preceding frame and XOR-encodes each value against the previous
//! frame's value at the same index, so an unchanged gauge costs one
//! byte. The first frame after opening a writer is always full, which
//! keeps appends after a crash/resume self-describing.
//!
//! Crash safety: appends go through [`crate::fsx::AppendFile`]; a crash
//! mid-append leaves a torn final frame that the next
//! [`SeriesWriter::open`] detects (length/CRC mismatch) and truncates
//! away, exactly like the run-dir journal's torn-line handling.

use crate::fsx::AppendFile;
use std::io::Read;
use std::path::Path;

/// File magic ("CAPT").
const MAGIC: &[u8; 4] = b"CAPT";
/// Current wire-format version.
const VERSION: u32 = 1;
/// Header length in bytes: magic + version.
const HEADER_LEN: u64 = 8;
/// Upper bound on one frame payload; anything larger is corruption.
const MAX_PAYLOAD: u32 = 1 << 20;
/// Upper bound on points per frame (a registry snapshot is far smaller).
const MAX_POINTS: u64 = 65_536;
/// Upper bound on a series name.
const MAX_NAME: u64 = 512;

/// Errors from the time-series store.
#[derive(Debug)]
pub enum TsdbError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a series log (bad magic or unsupported version).
    Format(String),
}

impl std::fmt::Display for TsdbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsdbError::Io(e) => write!(f, "series io: {e}"),
            TsdbError::Format(m) => write!(f, "series format: {m}"),
        }
    }
}

impl std::error::Error for TsdbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TsdbError::Io(e) => Some(e),
            TsdbError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for TsdbError {
    fn from(e: std::io::Error) -> Self {
        TsdbError::Io(e)
    }
}

/// One recorded registry snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Monotone sample number, contiguous across resume.
    pub seq: u64,
    /// Process uptime (seconds, [`crate::uptime_secs`] clock) at capture.
    pub t: f64,
    /// `(series name, value)` pairs, sorted by name.
    pub points: Vec<(String, f64)>,
}

impl Sample {
    /// The value of series `name` in this sample, if present.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.points
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.points[i].1)
    }
}

/// CRC-32 (IEEE 802.3) lookup table, same polynomial and construction
/// as the checkpoint v2 format. `cap-obs` sits below `cap-nn` in the
/// dependency order, so the 1 KiB table is carried here rather than
/// imported.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint; `None` on truncation or overlong encoding.
fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(*pos)?;
        *pos += 1;
        if shift == 63 && b > 1 {
            return None;
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Encodes one sample against the previous frame's state. `prev` is
/// emptied state after open, forcing a full frame.
fn encode_payload(
    seq: u64,
    t: f64,
    points: &[(String, f64)],
    prev_names: &[String],
    prev_bits: &[u64],
) -> Vec<u8> {
    let delta = !prev_names.is_empty()
        && prev_names.len() == points.len()
        && prev_names
            .iter()
            .zip(points.iter())
            .all(|(a, (b, _))| a == b);
    let mut payload = Vec::with_capacity(32 + points.len() * 12);
    payload.extend_from_slice(&seq.to_le_bytes());
    payload.extend_from_slice(&t.to_bits().to_le_bytes());
    payload.push(u8::from(delta));
    push_varint(&mut payload, points.len() as u64);
    for (i, (name, value)) in points.iter().enumerate() {
        let bits = value.to_bits();
        if delta {
            push_varint(&mut payload, bits ^ prev_bits[i]);
        } else {
            push_varint(&mut payload, name.len() as u64);
            payload.extend_from_slice(name.as_bytes());
            push_varint(&mut payload, bits);
        }
    }
    payload
}

/// Decodes one frame payload. `prev` supplies the name list and value
/// bits for delta frames. Returns the sample and its value bits.
fn decode_payload(
    payload: &[u8],
    prev_names: &[String],
    prev_bits: &[u64],
) -> Option<(Sample, Vec<String>, Vec<u64>)> {
    let mut pos = 0usize;
    let seq = u64::from_le_bytes(payload.get(pos..pos + 8)?.try_into().ok()?);
    pos += 8;
    let t = f64::from_bits(u64::from_le_bytes(
        payload.get(pos..pos + 8)?.try_into().ok()?,
    ));
    pos += 8;
    let kind = *payload.get(pos)?;
    pos += 1;
    if kind > 1 {
        return None;
    }
    let n = read_varint(payload, &mut pos)?;
    if n > MAX_POINTS {
        return None;
    }
    let n = n as usize;
    let mut names: Vec<String>;
    let mut bits: Vec<u64> = Vec::with_capacity(n);
    if kind == 1 {
        if prev_names.len() != n {
            return None;
        }
        names = prev_names.to_vec();
        for &prev in prev_bits.iter().take(n) {
            bits.push(read_varint(payload, &mut pos)? ^ prev);
        }
    } else {
        names = Vec::with_capacity(n);
        for _ in 0..n {
            let len = read_varint(payload, &mut pos)?;
            if len > MAX_NAME {
                return None;
            }
            let len = len as usize;
            let raw = payload.get(pos..pos + len)?;
            pos += len;
            names.push(std::str::from_utf8(raw).ok()?.to_string());
            bits.push(read_varint(payload, &mut pos)?);
        }
    }
    if pos != payload.len() {
        return None;
    }
    let points: Vec<(String, f64)> = names
        .iter()
        .zip(bits.iter())
        .map(|(name, &b)| (name.clone(), f64::from_bits(b)))
        .collect();
    names.shrink_to_fit();
    Some((Sample { seq, t, points }, names, bits))
}

/// Result of scanning a series file: the decoded samples and how far
/// the valid prefix reaches.
#[derive(Debug)]
pub struct ScanOutcome {
    /// Every sample in the valid prefix, in file order.
    pub samples: Vec<Sample>,
    /// Byte length of the valid prefix (header + intact frames).
    pub valid_len: u64,
    /// Whether bytes beyond `valid_len` were present (torn tail or
    /// corruption).
    pub truncated: bool,
}

/// Scans in-memory series bytes, returning the longest valid prefix.
/// Never panics on arbitrary input.
///
/// # Errors
///
/// Returns [`TsdbError::Format`] when the 8-byte header itself is
/// missing or wrong — there is no usable prefix to salvage then.
pub fn scan_bytes(bytes: &[u8]) -> Result<ScanOutcome, TsdbError> {
    if bytes.len() < HEADER_LEN as usize {
        return Err(TsdbError::Format(format!(
            "header truncated ({} bytes)",
            bytes.len()
        )));
    }
    if &bytes[0..4] != MAGIC {
        return Err(TsdbError::Format("bad magic (not a series file)".into()));
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != VERSION {
        return Err(TsdbError::Format(format!(
            "unsupported version {version} (expected {VERSION})"
        )));
    }
    let mut samples = Vec::new();
    let mut names: Vec<String> = Vec::new();
    let mut bits: Vec<u64> = Vec::new();
    let mut pos = HEADER_LEN as usize;
    while let Some(head) = bytes.get(pos..pos + 8) {
        let payload_len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
        let crc = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
        if payload_len > MAX_PAYLOAD {
            break;
        }
        let start = pos + 8;
        let Some(payload) = bytes.get(start..start + payload_len as usize) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        let Some((sample, new_names, new_bits)) = decode_payload(payload, &names, &bits) else {
            break;
        };
        samples.push(sample);
        names = new_names;
        bits = new_bits;
        pos = start + payload_len as usize;
    }
    Ok(ScanOutcome {
        truncated: pos != bytes.len(),
        valid_len: pos as u64,
        samples,
    })
}

/// Reads every valid sample from `path` (torn tails and trailing
/// corruption are silently dropped, mirroring the journal reader).
///
/// # Errors
///
/// Returns [`TsdbError::Io`] on read failures and [`TsdbError::Format`]
/// when the file header is unusable.
pub fn read_samples(path: &Path) -> Result<Vec<Sample>, TsdbError> {
    let bytes = read_bounded(path)?;
    Ok(scan_bytes(&bytes)?.samples)
}

/// Reads `path` in bounded chunks so a hostile file size cannot force a
/// single oversized allocation up front.
fn read_bounded(path: &Path) -> Result<Vec<u8>, TsdbError> {
    let mut f = std::fs::File::open(path)?;
    let mut out = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    loop {
        let n = f.read(&mut chunk)?;
        if n == 0 {
            return Ok(out);
        }
        out.extend_from_slice(&chunk[..n]);
    }
}

/// An append handle for one `series.capts` file.
///
/// Opening scans the existing file, truncates any torn tail, and
/// continues the `seq` numbering where the valid prefix ended — so a
/// resumed run appends contiguously to the history of the crashed one.
#[derive(Debug)]
pub struct SeriesWriter {
    file: AppendFile,
    prev_names: Vec<String>,
    prev_bits: Vec<u64>,
    next_seq: u64,
}

impl SeriesWriter {
    /// Opens (or creates) the series log at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`TsdbError::Io`] on I/O failure and
    /// [`TsdbError::Format`] when an existing file is not a series log.
    pub fn open(path: &Path) -> Result<SeriesWriter, TsdbError> {
        let existing = match std::fs::metadata(path) {
            Ok(m) if m.len() > 0 => Some(read_bounded(path)?),
            _ => None,
        };
        let mut next_seq = 0u64;
        let mut truncate_to: Option<u64> = None;
        let mut fresh_header = true;
        if let Some(bytes) = existing {
            let scan = scan_bytes(&bytes)?;
            if let Some(last) = scan.samples.last() {
                next_seq = last.seq + 1;
            }
            if scan.truncated {
                truncate_to = Some(scan.valid_len);
            }
            fresh_header = false;
        }
        let mut file = AppendFile::open(path)?;
        if let Some(len) = truncate_to {
            file.truncate(len)?;
        }
        if fresh_header {
            let mut header = Vec::with_capacity(HEADER_LEN as usize);
            header.extend_from_slice(MAGIC);
            header.extend_from_slice(&VERSION.to_le_bytes());
            file.append_durable(&header)?;
        }
        Ok(SeriesWriter {
            file,
            // Force the first appended frame to be full: the previous
            // process's delta chain is unknown to a reopened writer.
            prev_names: Vec::new(),
            prev_bits: Vec::new(),
            next_seq,
        })
    }

    /// Sequence number the next append will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends one sample and returns it (with its assigned `seq`).
    /// `durable` fsyncs the frame — boundary samples use it; cadence
    /// samples skip the fsync and rely on torn-tail truncation.
    ///
    /// # Errors
    ///
    /// Returns [`TsdbError::Io`] on write failure.
    pub fn append(
        &mut self,
        t: f64,
        points: Vec<(String, f64)>,
        durable: bool,
    ) -> Result<Sample, TsdbError> {
        let seq = self.next_seq;
        let payload = encode_payload(seq, t, &points, &self.prev_names, &self.prev_bits);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        if durable {
            self.file.append_durable(&frame)?;
        } else {
            self.file.append(&frame)?;
        }
        self.next_seq = seq + 1;
        self.prev_bits = points.iter().map(|(_, v)| v.to_bits()).collect();
        self.prev_names = points.iter().map(|(n, _)| n.clone()).collect();
        Ok(Sample { seq, t, points })
    }

    /// Forces all appended frames to disk.
    ///
    /// # Errors
    ///
    /// Returns [`TsdbError::Io`] on fsync failure.
    pub fn sync(&mut self) -> Result<(), TsdbError> {
        self.file.sync()?;
        Ok(())
    }
}

/// Flattens the metrics registry snapshot into series points: counters
/// and gauges map 1:1; histograms expand to `<name>.count` and
/// `<name>.mean`. Output stays sorted by name.
pub fn snapshot_points() -> Vec<(String, f64)> {
    let mut points = Vec::new();
    for (name, metric) in crate::registry().snapshot() {
        match metric {
            crate::Metric::Counter(c) => points.push((name, c as f64)),
            crate::Metric::Gauge(g) => points.push((name, g)),
            crate::Metric::Histogram(h) => {
                points.push((format!("{name}.count"), h.count() as f64));
                points.push((format!("{name}.mean"), h.mean()));
            }
        }
    }
    points
}

/// One queried point: `(seq, t, value)`.
pub type QueryPoint = (u64, f64, f64);

/// Extracts series `name` from `samples`, keeping `seq` in
/// `[from, to]`, then downsamples by striding to at most `downsample`
/// points (0 = no limit). Deterministic: the stride always keeps the
/// first point of each bucket and the final point.
pub fn query(
    samples: &[Sample],
    name: &str,
    from: Option<u64>,
    to: Option<u64>,
    downsample: usize,
) -> Vec<QueryPoint> {
    let mut points: Vec<QueryPoint> = samples
        .iter()
        .filter(|s| from.is_none_or(|f| s.seq >= f) && to.is_none_or(|t| s.seq <= t))
        .filter_map(|s| s.value(name).map(|v| (s.seq, s.t, v)))
        .collect();
    if downsample > 0 && points.len() > downsample {
        let stride = points.len().div_ceil(downsample);
        let last = *points.last().expect("non-empty: len > downsample >= 1");
        let mut kept: Vec<QueryPoint> = points.iter().step_by(stride).copied().collect();
        if kept.last() != Some(&last) {
            kept.push(last);
        }
        points = kept;
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("cap_tsdb_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d.join("series.capts")
    }

    fn pts(vals: &[(&str, f64)]) -> Vec<(String, f64)> {
        vals.iter().map(|(n, v)| (n.to_string(), *v)).collect()
    }

    #[test]
    fn roundtrips_full_and_delta_frames() {
        let path = tmp("roundtrip");
        let mut w = SeriesWriter::open(&path).unwrap();
        w.append(0.5, pts(&[("a", 1.0), ("b", 2.0)]), false)
            .unwrap();
        w.append(1.0, pts(&[("a", 1.0), ("b", 2.5)]), false)
            .unwrap();
        // Name-set change forces a full frame mid-file.
        w.append(1.5, pts(&[("a", 3.0), ("b", 2.5), ("c", -1.0)]), true)
            .unwrap();
        let samples = read_samples(&path).unwrap();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].seq, 0);
        assert_eq!(samples[1].value("b"), Some(2.5));
        assert_eq!(samples[2].value("c"), Some(-1.0));
        assert_eq!(samples[2].seq, 2);
    }

    #[test]
    fn values_roundtrip_bit_exactly() {
        let path = tmp("bits");
        let mut w = SeriesWriter::open(&path).unwrap();
        let exotic = [0.1 + 0.2, f64::MIN_POSITIVE, -0.0, 1e308, f64::NAN];
        for (i, &v) in exotic.iter().enumerate() {
            w.append(i as f64, pts(&[("x", v)]), false).unwrap();
        }
        w.sync().unwrap();
        let samples = read_samples(&path).unwrap();
        for (s, &v) in samples.iter().zip(exotic.iter()) {
            let got = s.value("x").unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn reopen_continues_seq_and_truncates_torn_tail() {
        let path = tmp("reopen");
        {
            let mut w = SeriesWriter::open(&path).unwrap();
            w.append(0.0, pts(&[("a", 1.0)]), true).unwrap();
            w.append(1.0, pts(&[("a", 2.0)]), true).unwrap();
        }
        // Simulate a crash mid-append: half a frame of garbage.
        let mut bytes = std::fs::read(&path).unwrap();
        let intact = bytes.len();
        bytes.extend_from_slice(&[0x77, 0x66, 0x55]);
        std::fs::write(&path, &bytes).unwrap();
        {
            let mut w = SeriesWriter::open(&path).unwrap();
            assert_eq!(w.next_seq(), 2);
            w.append(2.0, pts(&[("a", 3.0)]), true).unwrap();
        }
        let raw = std::fs::read(&path).unwrap();
        assert!(raw.len() > intact, "tail replaced, not appended after");
        let samples = read_samples(&path).unwrap();
        let seqs: Vec<u64> = samples.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2], "contiguous across reopen");
        assert_eq!(samples[2].value("a"), Some(3.0));
    }

    #[test]
    fn scan_rejects_non_series_files() {
        assert!(scan_bytes(b"").is_err());
        assert!(scan_bytes(b"CAPN\x02\x00\x00\x00").is_err());
        assert!(scan_bytes(b"CAPT\x07\x00\x00\x00").is_err());
        let ok = scan_bytes(b"CAPT\x01\x00\x00\x00").unwrap();
        assert!(ok.samples.is_empty() && !ok.truncated);
    }

    #[test]
    fn query_filters_and_downsamples_deterministically() {
        let samples: Vec<Sample> = (0..100)
            .map(|i| Sample {
                seq: i,
                t: i as f64,
                points: pts(&[("loss", 100.0 - i as f64)]),
            })
            .collect();
        let all = query(&samples, "loss", None, None, 0);
        assert_eq!(all.len(), 100);
        let ranged = query(&samples, "loss", Some(10), Some(19), 0);
        assert_eq!(ranged.len(), 10);
        assert_eq!(ranged[0].0, 10);
        let down = query(&samples, "loss", None, None, 10);
        assert!(down.len() <= 11, "{}", down.len());
        assert_eq!(down[0].0, 0);
        assert_eq!(down.last().unwrap().0, 99, "final point always kept");
        assert_eq!(down, query(&samples, "loss", None, None, 10));
        assert!(query(&samples, "absent", None, None, 0).is_empty());
    }

    #[test]
    fn varint_rejects_overlong_and_truncated() {
        let mut pos = 0;
        assert_eq!(read_varint(&[0x80], &mut pos), None);
        pos = 0;
        assert_eq!(
            read_varint(
                &[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F],
                &mut pos
            ),
            None,
            "10-byte encodings above u64::MAX are rejected"
        );
        pos = 0;
        assert_eq!(read_varint(&[0x00], &mut pos), Some(0));
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            buf.clear();
            push_varint(&mut buf, v);
            let mut p = 0;
            assert_eq!(read_varint(&buf, &mut p), Some(v));
            assert_eq!(p, buf.len());
        }
    }
}
