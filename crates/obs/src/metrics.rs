//! The metrics registry: counters, gauges, and log-bucketed histograms
//! with percentile summaries, behind one process-wide thread-safe store.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Sub-buckets per power of two. Four gives ~19% bucket-width relative
/// error on percentile estimates, plenty for latency telemetry.
const SUB: f64 = 4.0;
/// Number of histogram buckets: bucket 0 holds values `< 1.0`; the rest
/// cover `[1, 2^63)` in `SUB` buckets per octave.
const BUCKETS: usize = 1 + 63 * 4;

/// A log-bucketed histogram over non-negative samples.
///
/// Records are O(1); summaries walk the fixed bucket array. Exact
/// `min`/`max`/`sum`/`count` are tracked alongside the buckets, so
/// `mean` and `max` are exact while `p50`/`p95` are bucket-resolution
/// estimates.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

fn bucket_index(v: f64) -> usize {
    // Negative, NaN and sub-unit samples land in bucket 0.
    if v.is_nan() || v < 1.0 {
        return 0;
    }
    let idx = 1 + (v.log2() * SUB).floor() as usize;
    idx.min(BUCKETS - 1)
}

/// Lower edge of bucket `idx` (inverse of [`bucket_index`]).
fn bucket_lower(idx: usize) -> f64 {
    if idx == 0 {
        0.0
    } else {
        2f64.powf((idx - 1) as f64 / SUB)
    }
}

impl Histogram {
    /// Adds one sample.
    pub fn record(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact maximum, or 0 for an empty histogram.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Exact minimum, or 0 for an empty histogram.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Bucket-resolution estimate of quantile `q` in `[0, 1]`: the
    /// geometric centre of the bucket holding the `ceil(q · count)`-th
    /// sample, clamped to the exact `[min, max]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let lo = bucket_lower(idx);
                let hi = bucket_lower(idx + 1);
                let mid = if idx == 0 { 0.5 } else { (lo * hi).sqrt() };
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Shorthand for [`Histogram::quantile`]`(0.5)`.
    pub fn p50(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Shorthand for [`Histogram::quantile`]`(0.95)`.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }
}

/// One metric slot in the registry.
#[derive(Debug, Clone)]
pub enum Metric {
    /// Monotone event count.
    Counter(u64),
    /// Last-write-wins value.
    Gauge(f64),
    /// Sample distribution.
    Histogram(Histogram),
}

/// A thread-safe named metric store.
///
/// All mutating entry points lock one internal mutex; with sub-µs
/// critical sections this stays negligible next to the work being
/// measured, and keeps the store correct under future data-parallel
/// training (rayon-style worker pools hammering one registry).
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `n` to counter `name`, creating it at zero first if needed.
    pub fn counter_add(&self, name: &str, n: u64) {
        let mut m = self.metrics.lock().unwrap();
        match m.entry(name.to_string()).or_insert(Metric::Counter(0)) {
            Metric::Counter(c) => *c += n,
            other => *other = Metric::Counter(n),
        }
    }

    /// Sets gauge `name` to `v`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        let mut m = self.metrics.lock().unwrap();
        m.insert(name.to_string(), Metric::Gauge(v));
    }

    /// Records sample `v` into histogram `name`.
    pub fn histogram_record(&self, name: &str, v: f64) {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.record(v),
            other => {
                let mut h = Histogram::default();
                h.record(v);
                *other = Metric::Histogram(h);
            }
        }
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, Metric)> {
        let m = self.metrics.lock().unwrap();
        m.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// Removes every metric (test isolation).
    pub fn reset(&self) {
        self.metrics.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_monotone_and_inverse_consistent() {
        let mut last = 0;
        for i in 0..2000 {
            let v = 1.1f64.powi(i);
            let idx = bucket_index(v);
            assert!(idx >= last, "index must be monotone in the sample");
            last = idx;
            if idx > 0 && idx < BUCKETS - 1 {
                assert!(bucket_lower(idx) <= v * 1.0001, "lower edge above sample");
                assert!(
                    bucket_lower(idx + 1) >= v * 0.9999,
                    "upper edge below sample"
                );
            }
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(0.999), 0);
        assert_eq!(bucket_index(1.0), 1);
    }

    #[test]
    fn histogram_summaries_track_uniform_data() {
        let mut h = Histogram::default();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000.0);
        assert_eq!(h.min(), 1.0);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        // Log-bucketed estimates: allow one bucket (~19%) of error.
        let p50 = h.p50();
        assert!((400.0..=620.0).contains(&p50), "p50 {p50}");
        let p95 = h.p95();
        assert!((780.0..=1000.0).contains(&p95), "p95 {p95}");
    }

    #[test]
    fn histogram_extremes_and_empty() {
        let h = Histogram::default();
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0.0);

        let mut h = Histogram::default();
        h.record(f64::NAN); // dropped
        h.record(0.0);
        h.record(1e30);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 1e30);
        assert_eq!(h.min(), 0.0);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = Histogram::default();
        for i in 0..500 {
            h.record((i * 7 % 997) as f64);
        }
        let mut last = 0.0;
        for step in 0..=20 {
            let q = step as f64 / 20.0;
            let v = h.quantile(q);
            assert!(v >= last, "quantile({q}) = {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn registry_counter_gauge_histogram() {
        let r = Registry::new();
        r.counter_add("events", 2);
        r.counter_add("events", 3);
        r.gauge_set("lr", 0.01);
        r.gauge_set("lr", 0.005);
        r.histogram_record("lat", 10.0);
        r.histogram_record("lat", 20.0);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 3);
        match snap.iter().find(|(k, _)| k == "events").map(|(_, v)| v) {
            Some(Metric::Counter(5)) => {}
            other => panic!("bad counter: {other:?}"),
        }
        match snap.iter().find(|(k, _)| k == "lr").map(|(_, v)| v) {
            Some(Metric::Gauge(v)) => assert_eq!(*v, 0.005),
            other => panic!("bad gauge: {other:?}"),
        }
        match snap.iter().find(|(k, _)| k == "lat").map(|(_, v)| v) {
            Some(Metric::Histogram(h)) => {
                assert_eq!(h.count(), 2);
                assert_eq!(h.sum(), 30.0);
            }
            other => panic!("bad histogram: {other:?}"),
        }
        r.reset();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn registry_survives_concurrent_hammering() {
        use std::sync::Arc;
        let r = Arc::new(Registry::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        r.counter_add("shared.counter", 1);
                        r.histogram_record("shared.hist", (t * 1000 + i) as f64);
                        r.gauge_set("shared.gauge", i as f64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = r.snapshot();
        match snap
            .iter()
            .find(|(k, _)| k == "shared.counter")
            .map(|(_, v)| v)
        {
            Some(Metric::Counter(c)) => assert_eq!(*c, 8000),
            other => panic!("bad counter: {other:?}"),
        }
        match snap
            .iter()
            .find(|(k, _)| k == "shared.hist")
            .map(|(_, v)| v)
        {
            Some(Metric::Histogram(h)) => assert_eq!(h.count(), 8000),
            other => panic!("bad histogram: {other:?}"),
        }
    }
}
