//! Hostile-input properties of the series store: arbitrary, truncated,
//! or bit-flipped `series.capts` bytes must never panic, and every
//! recoverable prefix must decode to exactly the samples that were
//! written — never to silently corrupted ones.

use cap_obs::tsdb::{scan_bytes, SeriesWriter};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

const HEADER_LEN: usize = 8;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cap_tsdb_hostile_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A well-formed series file: four samples over a changing point set,
/// so the bytes cover full frames, delta frames, and a name-set change.
fn valid_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let dir = scratch_dir("seed");
        let path = dir.join("series.capts");
        let mut w = SeriesWriter::open(&path).expect("open writer");
        let p = |pairs: &[(&str, f64)]| -> Vec<(String, f64)> {
            pairs.iter().map(|(n, v)| (n.to_string(), *v)).collect()
        };
        w.append(0.0, p(&[("a", 1.0), ("b", 2.0)]), false)
            .expect("append");
        w.append(0.5, p(&[("a", 1.5), ("b", 2.0)]), false)
            .expect("append");
        w.append(1.0, p(&[("a", 1.5), ("b", -4.0), ("c", 0.25)]), false)
            .expect("append");
        w.append(1.5, p(&[("a", 9.0), ("b", -4.0), ("c", 0.5)]), true)
            .expect("append");
        drop(w);
        let bytes = std::fs::read(&path).expect("read series file");
        let _ = std::fs::remove_dir_all(&dir);
        bytes
    })
}

fn assert_sample_prefix(outcome: &cap_obs::tsdb::ScanOutcome) {
    let full = scan_bytes(valid_bytes()).expect("seed bytes scan").samples;
    assert!(outcome.samples.len() <= full.len());
    for (got, want) in outcome.samples.iter().zip(full.iter()) {
        assert_eq!(got.seq, want.seq);
        assert_eq!(got.t.to_bits(), want.t.to_bits());
        assert_eq!(got.points, want.points);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary byte soup: `scan_bytes` returns `Err` (bad header) or a
    /// valid prefix — it never panics or loops.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..512)) {
        let _ = scan_bytes(&bytes);
    }

    /// Byte soup behind a valid magic+version header exercises the frame
    /// parser (lengths, CRCs, varints) rather than dying at the magic
    /// check; whatever survives must be a clean prefix.
    #[test]
    fn framed_garbage_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..512)) {
        let mut buf = Vec::with_capacity(bytes.len() + HEADER_LEN);
        buf.extend_from_slice(b"CAPT");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&bytes);
        let outcome = scan_bytes(&buf).expect("valid header always scans");
        prop_assert!(outcome.valid_len >= HEADER_LEN as u64);
    }

    /// Every truncation of a valid file decodes to an exact prefix of
    /// the original samples (torn-tail semantics); cutting into the
    /// header is the only fatal case.
    #[test]
    fn truncations_yield_exact_prefix(cut in 0usize..1_000_000) {
        let full = valid_bytes();
        let cut = cut % full.len();
        match scan_bytes(&full[..cut]) {
            Ok(outcome) => {
                prop_assert!(cut >= HEADER_LEN);
                prop_assert!(outcome.valid_len as usize <= cut);
                assert_sample_prefix(&outcome);
            }
            Err(_) => prop_assert!(cut < HEADER_LEN, "valid header rejected at cut {cut}"),
        }
    }

    /// Any single bit flip is contained: the CRC (or header check)
    /// stops decoding at the damaged frame, and everything before it is
    /// returned intact. A flip may never alter a decoded value.
    #[test]
    fn single_bitflips_never_corrupt_decoded_samples(bit in 0usize..1_000_000) {
        let mut bytes = valid_bytes().to_vec();
        let bit = bit % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        let n_full = scan_bytes(valid_bytes()).expect("seed bytes scan").samples.len();
        match scan_bytes(&bytes) {
            Ok(outcome) => {
                prop_assert!(
                    outcome.samples.len() < n_full,
                    "flip of bit {bit} left all {n_full} samples standing"
                );
                assert_sample_prefix(&outcome);
            }
            Err(_) => prop_assert!(bit / 8 < HEADER_LEN, "body flip at bit {bit} broke the header"),
        }
    }

    /// Writer recovery: reopening over a torn tail truncates it and the
    /// next append continues `seq` contiguously from the valid prefix.
    #[test]
    fn reopen_over_torn_tail_appends_contiguously(cut in 0usize..1_000_000) {
        let full = valid_bytes();
        let cut = HEADER_LEN + cut % (full.len() - HEADER_LEN);
        let dir = scratch_dir("reopen");
        let path = dir.join("series.capts");
        std::fs::write(&path, &full[..cut]).expect("write torn file");
        let before = scan_bytes(&full[..cut]).expect("torn prefix scans").samples;
        let mut w = SeriesWriter::open(&path).expect("reopen over torn tail");
        prop_assert_eq!(w.next_seq(), before.len() as u64);
        w.append(9.0, vec![("z".to_string(), 7.0)], true).expect("append after reopen");
        let after = cap_obs::tsdb::read_samples(&path).expect("read back");
        prop_assert_eq!(after.len(), before.len() + 1);
        for (i, s) in after.iter().enumerate() {
            prop_assert_eq!(s.seq, i as u64);
        }
        let last = after.last().expect("appended sample");
        prop_assert_eq!(last.value("z"), Some(7.0));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
