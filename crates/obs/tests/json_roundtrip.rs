//! Round-trip property test for the hand-rolled JSON layer:
//! `render → parse → render` is a fixpoint for arbitrary values
//! (including NaN/±Inf numbers, which the writer canonicalises to
//! `null`, and strings exercising every escape class).

use cap_obs::json::{parse, Json};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Characters spanning every branch of the string escaper: plain ASCII,
/// the two mandatory escapes, the short escapes, other control chars
/// (forced into `\u00xx` form), and multi-byte scalars.
const CHAR_POOL: &[char] = &[
    'a', 'Z', '0', ' ', '/', ':', '{', '[', '"', '\\', '\n', '\r', '\t', '\u{08}', '\u{0c}',
    '\u{01}', '\u{1f}', 'é', '漢', '🦀',
];

fn gen_string(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0usize..12);
    (0..len)
        .map(|_| CHAR_POOL[rng.gen_range(0..CHAR_POOL.len())])
        .collect()
}

fn gen_num(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0u32..6) {
        0 => rng.gen_range(-1_000_000i64..1_000_000) as f64,
        1 => rng.gen_range(-1.0f64..1.0),
        2 => rng.gen_range(-1.0f64..1.0) * 1e300,
        3 => rng.gen_range(-1.0f64..1.0) * 1e-300,
        // Arbitrary bit patterns: subnormals, NaNs and infinities
        // included — the writer must canonicalise non-finite to null.
        4 => f64::from_bits(rng.gen_range(0u64..=u64::MAX)),
        _ => 0.0,
    }
}

fn gen_json(rng: &mut StdRng, depth: u32) -> Json {
    // Leaves only below depth 3 so documents stay small.
    let kinds = if depth >= 3 { 4 } else { 6 };
    match rng.gen_range(0..kinds) {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_range(0u32..2) == 1),
        2 => Json::Num(gen_num(rng)),
        3 => Json::Str(gen_string(rng)),
        4 => Json::Arr(
            (0..rng.gen_range(0usize..5))
                .map(|_| gen_json(rng, depth + 1))
                .collect(),
        ),
        _ => Json::Obj(
            (0..rng.gen_range(0usize..5))
                .map(|_| (gen_string(rng), gen_json(rng, depth + 1)))
                .collect(),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn render_parse_render_is_a_fixpoint(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let value = gen_json(&mut rng, 0);
        let first = value.render();
        let reparsed = match parse(&first) {
            Ok(v) => v,
            Err(e) => return Err(proptest::TestCaseError::fail(
                format!("writer output must parse: {e}\n{first}"),
            )),
        };
        let second = reparsed.render();
        prop_assert_eq!(&first, &second);
        // And the parsed form is stable too (no NaN survives the first
        // pass, so structural equality is well-defined).
        let reparsed2 = parse(&second).expect("second render must parse");
        prop_assert_eq!(reparsed, reparsed2);
    }

    #[test]
    fn parse_rejects_trailing_garbage(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let value = gen_json(&mut rng, 2);
        let doc = value.render();
        prop_assert!(parse(&format!("{doc}]")).is_err() || doc.is_empty());
    }
}
