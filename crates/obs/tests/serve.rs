//! Integration tests for the live telemetry server: bind an ephemeral
//! port, drive real HTTP requests against every route, and validate the
//! exposition grammar and chrome-trace structure end to end.

use cap_obs::json::Json;

/// Sets up enabled obs + flight recording, runs `f` against a live
/// server, then tears every piece of global state back down.
fn with_server(f: impl FnOnce(std::net::SocketAddr)) {
    let _lock = cap_obs::test_lock();
    cap_obs::reset();
    cap_obs::flight::enable();
    let server = cap_obs::serve::Server::start("127.0.0.1:0").expect("bind ephemeral port");
    f(server.addr());
    server.stop();
    cap_obs::flight::disable();
    cap_obs::disable();
    cap_obs::reset();
}

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    cap_obs::serve::http_get(addr, path).unwrap_or_else(|e| panic!("GET {path}: {e}"))
}

#[test]
fn metrics_route_serves_valid_prometheus_text() {
    with_server(|addr| {
        cap_obs::counter_add("serve_test.requests", 7);
        cap_obs::gauge_set("par.worker.0.busy_seconds", 1.25);
        cap_obs::registry().histogram_record("serve_test.latency", 250.0);
        let body = get(addr, "/metrics");
        cap_obs::expo::validate(&body).expect("exposition grammar");
        assert!(body.contains("cap_serve_test_requests 7\n"), "{body}");
        assert!(
            body.contains("cap_par_worker_0_busy_seconds 1.250000\n"),
            "{body}"
        );
        assert!(
            body.contains("# TYPE cap_serve_test_latency summary"),
            "{body}"
        );
        assert!(body.contains("cap_obs_uptime_seconds"), "{body}");
        // Scrapes are byte-stable modulo the samples the scrape itself
        // moves (uptime, the server's own request counters and
        // handling-time histogram).
        let strip = |b: &str| {
            b.lines()
                .filter(|l| !l.contains("cap_obs_uptime_seconds ") && !l.contains("cap_obs_http"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let again = get(addr, "/metrics");
        assert_eq!(strip(&body), strip(&again));
    });
}

#[test]
fn healthz_and_report_routes_respond() {
    with_server(|addr| {
        assert_eq!(get(addr, "/healthz"), "ok\n");
        cap_obs::counter_add("serve_test.reported", 3);
        let report = get(addr, "/report");
        let doc = cap_obs::json::parse(&report).expect("report is JSON");
        assert!(doc.get("uptime_secs").and_then(Json::as_f64).is_some());
        let metrics = match doc.get("metrics") {
            Some(Json::Arr(items)) => items,
            other => panic!("metrics array missing: {other:?}"),
        };
        assert!(metrics.iter().any(|m| {
            m.get("name").and_then(Json::as_str) == Some("serve_test.reported")
                && m.get("value").and_then(Json::as_u64) == Some(3)
        }));
    });
}

#[test]
fn trace_route_exports_consistent_chrome_trace() {
    with_server(|addr| {
        for _ in 0..3 {
            let _outer = cap_obs::SpanGuard::enter("outer");
            let _inner = cap_obs::SpanGuard::enter("inner");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        cap_obs::emit(cap_obs::Event::new("marker"));
        let body = get(addr, "/trace");
        let doc = cap_obs::json::parse(&body).expect("trace is JSON");
        let events = match doc {
            Json::Arr(items) => items,
            other => panic!("trace must be an event array: {other:?}"),
        };
        let mut spans = 0;
        let mut instants = 0;
        let mut last_ts = f64::NEG_INFINITY;
        for e in &events {
            match e.get("ph").and_then(Json::as_str) {
                Some("M") => {
                    assert_eq!(e.get("name").and_then(Json::as_str), Some("thread_name"));
                    continue;
                }
                Some("X") => {
                    spans += 1;
                    let dur = e.get("dur").and_then(Json::as_f64).expect("dur");
                    assert!(dur >= 0.0, "negative duration: {e:?}");
                }
                Some("i") => instants += 1,
                other => panic!("unexpected phase {other:?} in {e:?}"),
            }
            let ts = e.get("ts").and_then(Json::as_f64).expect("ts");
            assert!(ts >= 0.0 && ts.is_finite(), "bad ts in {e:?}");
            // Non-metadata rows are sorted by start time.
            assert!(ts >= last_ts, "ts not monotonic: {ts} < {last_ts}");
            last_ts = ts;
        }
        assert_eq!(spans, 6, "3 iterations x (outer + inner)");
        assert_eq!(instants, 1, "the marker event");
    });
}

#[test]
fn routes_reject_bad_requests() {
    with_server(|addr| {
        let body = cap_obs::serve::http_get(addr, "/nope");
        assert!(body.is_err(), "404 should surface as an error: {body:?}");
    });
}
