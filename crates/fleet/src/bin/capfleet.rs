//! `capfleet` — crash-supervised experiment fleet CLI.
//!
//! ```text
//! capfleet init   --fleet-dir D (--demo N | --suite [--scale S] | --specs FILE)
//! capfleet run    --fleet-dir D [--workers N] [--retry-budget K]
//!                 [--backoff-base-ms B] [--backoff-cap-ms C]
//!                 [--stall-timeout-ms T] [--poll-ms P] [--metrics-addr A]
//! capfleet resume --fleet-dir D [same flags as run]
//! capfleet status --fleet-dir D
//! capfleet worker --fleet-dir D --spec ID        (internal: one child run)
//! ```
//!
//! Exit codes: `0` sweep drained with every spec done, `1` sweep
//! drained but some specs were poisoned, `2` usage, `3` runtime error.

use cap_fleet::queue::Queue;
use cap_fleet::spec::Spec;
use cap_fleet::supervisor::{render_status, run_fleet, FleetConfig};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: capfleet <init|run|resume|status|worker> --fleet-dir DIR [flags]
  init    --demo N | --suite [--scale smoke|small|full] | --specs FILE
  run     [--workers N] [--retry-budget K] [--backoff-base-ms B] [--backoff-cap-ms C]
          [--stall-timeout-ms T] [--poll-ms P] [--metrics-addr ADDR]
  resume  same flags as run (reconciles a killed supervisor's queue first)
  status  print queue state
  worker  --spec ID (internal)
";

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.iter();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                // Boolean flags take no value.
                if matches!(name, "suite") {
                    flags.push((name.to_string(), "true".to_string()));
                    continue;
                }
                let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                flags.push((name.to_string(), value.clone()));
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Args { positional, flags })
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn u64_flag(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v.parse::<u64>().map_err(|e| format!("--{name} {v:?}: {e}")),
        }
    }

    fn fleet_dir(&self) -> Result<PathBuf, String> {
        self.flag("fleet-dir")
            .map(PathBuf::from)
            .ok_or_else(|| "--fleet-dir is required".to_string())
    }
}

fn fleet_config(args: &Args) -> Result<FleetConfig, String> {
    let defaults = FleetConfig::default();
    Ok(FleetConfig {
        workers: args.u64_flag("workers", defaults.workers as u64)?.max(1) as usize,
        retry_budget: args.u64_flag("retry-budget", defaults.retry_budget)?.max(1),
        backoff_base_ms: args.u64_flag("backoff-base-ms", defaults.backoff_base_ms)?,
        backoff_cap_ms: args.u64_flag("backoff-cap-ms", defaults.backoff_cap_ms)?,
        stall_timeout_ms: args.u64_flag("stall-timeout-ms", defaults.stall_timeout_ms)?,
        poll_ms: args.u64_flag("poll-ms", defaults.poll_ms)?,
        metrics_addr: args
            .flag("metrics-addr")
            .unwrap_or(&defaults.metrics_addr)
            .to_string(),
    })
}

/// Reads a specs file: one JSON object per line, spec-shaped (the
/// `"type":"spec"` tag is optional). Blank lines and `#` comments skip.
fn read_specs_file(path: &str) -> Result<Vec<Spec>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut specs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let obj = cap_obs::json::parse(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        specs.push(Spec::from_json(&obj).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?);
    }
    if specs.is_empty() {
        return Err(format!("{path}: no specs"));
    }
    Ok(specs)
}

fn cmd_init(args: &Args) -> Result<(), String> {
    let fleet_dir = args.fleet_dir()?;
    let specs = if let Some(n) = args.flag("demo") {
        let n: u64 = n.parse().map_err(|e| format!("--demo {n:?}: {e}"))?;
        (0..n)
            .map(|i| Spec::demo(format!("demo-{i:03}"), 100 + i))
            .collect()
    } else if args.flag("suite").is_some() {
        let scale = args.flag("scale").unwrap_or("smoke").to_string();
        if !matches!(scale.as_str(), "smoke" | "small" | "full") {
            return Err(format!("--scale {scale:?} (want smoke|small|full)"));
        }
        cap_bench::specs::suite_specs()
            .into_iter()
            .map(|s| Spec::suite(s.id, scale.clone()))
            .collect()
    } else if let Some(path) = args.flag("specs") {
        read_specs_file(path)?
    } else {
        return Err("init needs --demo N, --suite or --specs FILE".to_string());
    };
    let n = specs.len();
    Queue::create(&fleet_dir, &specs)?;
    println!(
        "initialised fleet at {} with {n} spec(s); `capfleet run --fleet-dir {}` starts it",
        fleet_dir.display(),
        fleet_dir.display()
    );
    Ok(())
}

fn cmd_run(args: &Args) -> Result<ExitCode, String> {
    let fleet_dir = args.fleet_dir()?;
    let cfg = fleet_config(args)?;
    let report = run_fleet(&fleet_dir, &cfg)?;
    println!(
        "{} done, {} poisoned, {} restarts",
        report.done, report.poisoned, report.restarts
    );
    Ok(if report.poisoned == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn cmd_status(args: &Args) -> Result<(), String> {
    let fleet_dir = args.fleet_dir()?;
    let queue = Queue::load(&fleet_dir)?;
    print!("{}", render_status(&queue));
    Ok(())
}

fn cmd_worker(args: &Args) -> Result<(), String> {
    let fleet_dir = args.fleet_dir()?;
    let spec_id = args
        .flag("spec")
        .ok_or_else(|| "worker needs --spec ID".to_string())?;
    cap_fleet::worker::run_worker(&fleet_dir, spec_id)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = raw.first().cloned() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let args = match Args::parse(&raw[1..]) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("capfleet: {e}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if !args.positional.is_empty() {
        eprintln!("capfleet: unexpected argument {:?}", args.positional[0]);
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }
    let result = match command.as_str() {
        "init" => cmd_init(&args).map(|()| ExitCode::SUCCESS),
        // `run` and `resume` share one path: run_fleet always
        // reconciles, so resuming a SIGKILLed sweep is the same loop.
        "run" | "resume" => cmd_run(&args),
        "status" => cmd_status(&args).map(|()| ExitCode::SUCCESS),
        "worker" => cmd_worker(&args).map(|()| ExitCode::SUCCESS),
        other => {
            eprintln!("capfleet: unknown command {other:?}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("capfleet: {e}");
            ExitCode::from(3)
        }
    }
}
