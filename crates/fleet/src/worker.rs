//! The worker process: executes exactly one spec inside its run dir.
//!
//! A worker is a `capfleet worker --fleet-dir D --spec ID` child. It
//! owns `D/runs/ID/`, arms the [`cap_nn::heartbeat`] at
//! `runs/ID/heartbeat` (so the supervisor can tell wedged from slow),
//! serves its own ephemeral `/metrics` (address published to
//! `runs/ID/metrics.addr` for the supervisor's federation scrape), and
//! runs the spec through the crash-safe `RunDir` path: a fresh dir
//! starts `run_with_dir`, a dir holding a journal resumes
//! bit-identically through [`ClassAwarePruner::resume`].
//!
//! Success is *two* signals, both required by the supervisor: exit
//! status 0 **and** a `DONE.json` marker written atomically with the
//! final checkpoint's CRC. The marker is what makes "done" survive a
//! supervisor SIGKILL: reconciliation trusts the run dir, not the
//! supervisor's memory, so a completed spec is never executed twice.

use crate::spec::{parse_strategy, Spec};
use cap_core::{ClassAwarePruner, PruneConfig, PruneOutcome};
use cap_data::{DatasetSpec, SyntheticDataset};
use cap_nn::layer::{BatchNorm2d, Conv2d, GlobalAvgPool, Linear, Relu};
use cap_nn::{Network, RunDir, TrainConfig};
use cap_obs::json;
use rand::SeedableRng;
use std::path::Path;

/// Heartbeat file name inside a run dir.
pub const HEARTBEAT_FILE: &str = "heartbeat";
/// Worker metrics address file inside a run dir.
pub const METRICS_ADDR_FILE: &str = "metrics.addr";
/// Completion marker inside a run dir.
pub const DONE_FILE: &str = "DONE.json";

/// Run directory for `spec_id` inside `fleet_dir`.
pub fn run_dir_path(fleet_dir: &Path, spec_id: &str) -> std::path::PathBuf {
    fleet_dir.join("runs").join(spec_id)
}

/// The small synthetic network demo specs prune (the `capctl prune`
/// topology, width-parameterised).
fn demo_net(width: usize, seed: u64) -> Result<Network, String> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut net = Network::new();
    net.push(Conv2d::new(3, width, 3, 1, 1, false, &mut rng).map_err(|e| format!("conv: {e}"))?);
    net.push(BatchNorm2d::new(width).map_err(|e| format!("bn: {e}"))?);
    net.push(Relu::new());
    net.push(
        Conv2d::new(width, width, 3, 1, 1, false, &mut rng).map_err(|e| format!("conv: {e}"))?,
    );
    net.push(BatchNorm2d::new(width).map_err(|e| format!("bn: {e}"))?);
    net.push(Relu::new());
    net.push(GlobalAvgPool::new());
    net.push(Linear::new(width, 10, &mut rng).map_err(|e| format!("linear: {e}"))?);
    Ok(net)
}

fn run_demo(spec: &Spec, run_dir: &Path) -> Result<(f64, f64), String> {
    let data = SyntheticDataset::generate(
        &DatasetSpec::cifar10_like()
            .with_image_size(8)
            .with_counts(12, 4),
    )
    .map_err(|e| format!("dataset: {e}"))?;
    let pruner = ClassAwarePruner::new(PruneConfig {
        strategy: parse_strategy(&spec.strategy)?,
        finetune: TrainConfig {
            epochs: 2,
            batch_size: 20,
            lr: 0.02,
            ..TrainConfig::default()
        },
        max_iterations: spec.iters as usize,
        accuracy_drop_limit: 1.0,
        ..PruneConfig::default()
    })
    .map_err(|e| format!("config: {e}"))?;
    let outcome: PruneOutcome = if run_dir.join("journal.jsonl").exists() {
        let dir = RunDir::open(run_dir).map_err(|e| format!("open run dir: {e}"))?;
        let (_, outcome) = pruner
            .resume(data.train(), data.test(), &dir)
            .map_err(|e| format!("resume: {e}"))?;
        outcome
    } else {
        let dir = RunDir::create(run_dir).map_err(|e| format!("create run dir: {e}"))?;
        let mut net = demo_net(spec.width as usize, spec.seed)?;
        pruner
            .run_with_dir(&mut net, data.train(), data.test(), &dir)
            .map_err(|e| format!("prune: {e}"))?
    };
    Ok((outcome.final_accuracy, outcome.pruning_ratio()))
}

fn run_suite(spec: &Spec, fleet_dir: &Path, run_dir: &Path) -> Result<(f64, f64), String> {
    let scale = match spec.scale.as_str() {
        "smoke" | "" => cap_bench::ExperimentScale::smoke(),
        "small" => cap_bench::ExperimentScale::small(),
        "full" => cap_bench::ExperimentScale::full(),
        other => return Err(format!("unknown scale {other:?}")),
    };
    let suite_spec = cap_bench::specs::find_spec(&spec.id)
        .ok_or_else(|| format!("{:?} is not an exp_suite spec id", spec.id))?;
    let outcome =
        cap_bench::specs::run_spec(&suite_spec, &scale, &fleet_dir.join("cache"), Some(run_dir))?;
    Ok((outcome.final_accuracy, outcome.pruning_ratio))
}

/// CRC32 of the newest checkpoint in `run_dir/ckpt`, with its file
/// name. `None` when the run kept no checkpoints (baseline specs).
fn latest_ckpt_crc(run_dir: &Path) -> Option<(String, u32)> {
    let ckpt_dir = run_dir.join("ckpt");
    let mut names: Vec<String> = std::fs::read_dir(&ckpt_dir)
        .ok()?
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("gen-") && n.ends_with(".capn"))
        .collect();
    names.sort();
    let newest = names.pop()?;
    let bytes = std::fs::read(ckpt_dir.join(&newest)).ok()?;
    Some((newest, cap_obs::tsdb::crc32(&bytes)))
}

/// Executes `spec_id` to completion inside `fleet_dir`. On success the
/// run dir holds `DONE.json`; any error is returned for the binary to
/// print and convert into a nonzero exit the supervisor will see.
///
/// # Errors
///
/// Returns a description of whatever stage failed.
pub fn run_worker(fleet_dir: &Path, spec_id: &str) -> Result<(), String> {
    let queue = crate::queue::Queue::load(fleet_dir)?;
    let spec = queue
        .get(spec_id)
        .ok_or_else(|| format!("spec {spec_id:?} not in queue"))?
        .spec
        .clone();
    let run_dir = run_dir_path(fleet_dir, spec_id);
    std::fs::create_dir_all(&run_dir).map_err(|e| format!("create {}: {e}", run_dir.display()))?;
    cap_nn::heartbeat::arm(run_dir.join(HEARTBEAT_FILE));
    // A persistently-failing spec exits before doing any work.
    cap_faults::maybe_exit_at_start();
    // Each worker serves its own ephemeral /metrics; the supervisor
    // scrapes it through the published address and federates it.
    let server = cap_obs::serve::Server::start("127.0.0.1:0")
        .map_err(|e| format!("worker metrics server: {e}"))?;
    cap_obs::fsx::atomic_write(
        &run_dir.join(METRICS_ADDR_FILE),
        server.addr().to_string().as_bytes(),
    )
    .map_err(|e| format!("write metrics.addr: {e}"))?;
    cap_obs::gauge_set("fleet.spec.iters", spec.iters as f64);

    let (final_accuracy, pruning_ratio) = match spec.kind.as_str() {
        "demo" => run_demo(&spec, &run_dir)?,
        "suite" => run_suite(&spec, fleet_dir, &run_dir)?,
        other => return Err(format!("unknown spec kind {other:?}")),
    };

    let mut done = String::with_capacity(128);
    done.push_str("{\"id\":");
    json::write_str(&mut done, spec_id);
    done.push_str(",\"final_accuracy\":");
    json::write_f64(&mut done, final_accuracy);
    done.push_str(",\"pruning_ratio\":");
    json::write_f64(&mut done, pruning_ratio);
    if let Some((name, crc)) = latest_ckpt_crc(&run_dir) {
        done.push_str(",\"ckpt\":");
        json::write_str(&mut done, &name);
        done.push_str(",\"ckpt_crc\":");
        done.push_str(&crc.to_string());
    }
    done.push_str("}\n");
    cap_obs::fsx::atomic_write(&run_dir.join(DONE_FILE), done.as_bytes())
        .map_err(|e| format!("write DONE.json: {e}"))?;
    cap_nn::heartbeat::beat();
    server.stop();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_net_honours_width() {
        let net = demo_net(8, 1).unwrap();
        assert_eq!(net.layers().len(), 8);
        assert!(demo_net(0, 1).is_err(), "zero width must fail cleanly");
    }

    #[test]
    fn latest_ckpt_crc_picks_newest_generation() {
        let dir = std::env::temp_dir().join(format!("cap_fleet_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("ckpt")).unwrap();
        assert_eq!(latest_ckpt_crc(&dir), None, "empty ckpt dir");
        cap_obs::fsx::atomic_write(&dir.join("ckpt/gen-000001.capn"), b"one").unwrap();
        cap_obs::fsx::atomic_write(&dir.join("ckpt/gen-000002.capn"), b"two").unwrap();
        cap_obs::fsx::atomic_write(&dir.join("ckpt/junk.txt"), b"x").unwrap();
        let (name, crc) = latest_ckpt_crc(&dir).unwrap();
        assert_eq!(name, "gen-000002.capn");
        assert_eq!(crc, cap_obs::tsdb::crc32(b"two"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
