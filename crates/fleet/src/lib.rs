//! cap-fleet: crash-supervised multi-process experiment fleet.
//!
//! The fleet turns a list of experiment [`spec::Spec`]s into completed
//! run directories, surviving every failure the `cap-faults` chaos
//! grammar can inject — worker crashes mid-iteration, wedged workers
//! that stop heartbeating, workers that die at startup, and SIGKILL of
//! the supervisor itself.
//!
//! Architecture (one module per responsibility):
//!
//! - [`spec`] — the unit of work: demo runs (seconds) or `exp_suite`
//!   grid cells, serialised as single JSON lines.
//! - [`queue`] — the durable truth: an append-only, fsync'd
//!   `queue.jsonl` event log replayed leniently on load, so a torn
//!   tail or garbage never takes the fleet down.
//! - [`worker`] — one child process, one spec, one run dir: heartbeat
//!   armed, own `/metrics` served, crash-safe execution through
//!   `RunDir` create/resume, `DONE.json` marker on success.
//! - [`supervisor`] — the loop: fill slots, watch heartbeats, SIGKILL
//!   wedges, retry with capped exponential backoff, poison after the
//!   retry budget, reconcile queue state against run-dir truth after
//!   its own death, and federate every worker's metrics into one
//!   `/metrics` + `/fleet` surface.
//!
//! The binary is `capfleet` (`init` / `run` / `resume` / `status` /
//! `worker`); see `DESIGN.md` §15 for the full protocol.

#![warn(missing_docs)]

pub mod queue;
pub mod spec;
pub mod supervisor;
pub mod worker;

pub use queue::{Queue, SpecState};
pub use spec::Spec;
pub use supervisor::{run_fleet, FleetConfig, FleetReport};
