//! The supervisor: N worker children, one durable queue, one federated
//! telemetry surface.
//!
//! ## Failure policy
//!
//! - **Death** — a child that exits nonzero (or is killed by a signal)
//!   failed its attempt. The attempt is charged durably to the queue.
//! - **Wedge** — a child whose heartbeat file stops advancing for
//!   longer than `stall_timeout_ms` is SIGKILLed and charged like a
//!   death. Heartbeats come for free from the run's durable progress
//!   points ([`cap_nn::heartbeat`]).
//! - **Retry** — failed specs return to `pending` with capped
//!   exponential backoff (`backoff_base_ms * 2^(attempt-1)`, capped at
//!   `backoff_cap_ms`). After `retry_budget` failed attempts the spec
//!   is marked `poisoned` and never retried, so one broken spec cannot
//!   starve the fleet.
//! - **Resume** — a rescheduled run re-enters through the run dir: the
//!   journal makes [`ClassAwarePruner::resume`] replay completed
//!   iterations bit-identically, so a crashed-and-rescheduled run's
//!   final checkpoint equals an uninterrupted run's.
//! - **Supervisor death** — the queue and the run dirs are the truth,
//!   not this process's memory. [`reconcile`] (run at every startup)
//!   resolves stale `running` entries: a run dir holding `DONE.json`
//!   is done (a completed spec is never executed twice); a live orphan
//!   worker from the previous supervisor is SIGKILLed before its spec
//!   is requeued (two writers on one run dir would corrupt it).
//!
//! ## Federation
//!
//! Every worker serves its own ephemeral `/metrics` and publishes the
//! address into its run dir; each supervisor tick scrapes them and
//! republishes every sample as `fleet.worker.<slot>.<name>` gauges,
//! alongside the supervisor's own queue gauges
//! (`fleet.specs_{pending,running,done,poisoned}`), per-slot
//! `up`/`restarts`/`backoff_ms` gauges and the `fleet.restarts_total`
//! counter — one scrape shows the whole fleet. The `/fleet` route
//! (registered dynamically on the supervisor's server) renders the
//! same view as HTML.

use crate::queue::{Queue, SpecState};
use crate::worker::{DONE_FILE, HEARTBEAT_FILE, METRICS_ADDR_FILE};
use cap_obs::dash::{FleetSummary, FleetWorkerRow};
use std::collections::BTreeMap;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Supervisor tuning knobs (every one has a CLI flag).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Concurrent worker children.
    pub workers: usize,
    /// Failed attempts before a spec is poisoned.
    pub retry_budget: u64,
    /// First retry delay; doubles per failed attempt.
    pub backoff_base_ms: u64,
    /// Upper bound on the retry delay.
    pub backoff_cap_ms: u64,
    /// Heartbeat silence that counts as a wedge.
    pub stall_timeout_ms: u64,
    /// Supervisor loop tick.
    pub poll_ms: u64,
    /// Supervisor telemetry bind address; empty disables the server.
    pub metrics_addr: String,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 2,
            retry_budget: 3,
            backoff_base_ms: 200,
            backoff_cap_ms: 5_000,
            stall_timeout_ms: 15_000,
            poll_ms: 200,
            metrics_addr: "127.0.0.1:0".to_string(),
        }
    }
}

/// Final tally returned by [`run_fleet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetReport {
    /// Specs completed successfully.
    pub done: u64,
    /// Specs abandoned after exhausting their retry budget.
    pub poisoned: u64,
    /// Worker child restarts across the sweep.
    pub restarts: u64,
}

struct Slot {
    child: Child,
    spec_id: String,
    attempt: u64,
    beat: u64,
    beat_at: Instant,
    killed_for_stall: bool,
}

/// Capped exponential backoff after the `attempt`-th failure.
fn backoff_ms(cfg: &FleetConfig, attempt: u64) -> u64 {
    let shift = attempt.saturating_sub(1).min(20) as u32;
    cfg.backoff_base_ms
        .saturating_mul(1u64 << shift)
        .min(cfg.backoff_cap_ms)
}

/// Whether `pid` is a live `capfleet` process (guards against pid
/// reuse before we SIGKILL an orphan).
fn is_live_capfleet(pid: u32) -> bool {
    match std::fs::read(format!("/proc/{pid}/cmdline")) {
        Ok(cmdline) => String::from_utf8_lossy(&cmdline).contains("capfleet"),
        Err(_) => false,
    }
}

fn kill_pid(pid: u32) {
    let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
}

/// Resolves stale `running` entries against run-dir truth (see module
/// docs). Also promotes any entry whose run dir already holds
/// `DONE.json` — completed work is never redone, whatever state the
/// dying supervisor managed to record.
///
/// # Errors
///
/// Propagates queue-append failures.
pub fn reconcile(queue: &mut Queue, fleet_dir: &Path) -> Result<(), String> {
    let snapshot: Vec<(String, SpecState, u64)> = queue
        .entries()
        .iter()
        .map(|e| (e.spec.id.clone(), e.state, e.attempts))
        .collect();
    for (id, state, attempts) in snapshot {
        if state == SpecState::Done || state == SpecState::Poisoned {
            continue;
        }
        let run_dir = crate::worker::run_dir_path(fleet_dir, &id);
        if run_dir.join(DONE_FILE).exists() {
            eprintln!("capfleet: reconcile: {id} already completed (DONE.json), marking done");
            queue.mark(&id, SpecState::Done, attempts)?;
            continue;
        }
        if state != SpecState::Running {
            continue;
        }
        // A stale running entry: the previous supervisor died. Its
        // worker may still be alive — kill it before requeueing, two
        // writers on one run dir would corrupt the journal.
        if let Some((_, pid)) = cap_nn::heartbeat::read(&run_dir.join(HEARTBEAT_FILE)) {
            if is_live_capfleet(pid) {
                eprintln!("capfleet: reconcile: killing orphan worker pid {pid} for {id}");
                kill_pid(pid);
                let deadline = cap_obs::clock::now() + Duration::from_secs(5);
                while is_live_capfleet(pid) && cap_obs::clock::now() < deadline {
                    std::thread::sleep(Duration::from_millis(20));
                }
                if is_live_capfleet(pid) {
                    return Err(format!("orphan worker pid {pid} for {id} survived SIGKILL"));
                }
            }
        }
        eprintln!("capfleet: reconcile: requeueing interrupted spec {id}");
        queue.mark(&id, SpecState::Pending, attempts)?;
    }
    Ok(())
}

/// Scrapes one worker's `/metrics` and republishes every sample under
/// `fleet.worker.<slot>.`. Returns a short status for the dashboard.
fn federate_slot(slot_idx: usize, run_dir: &Path) -> String {
    let Ok(addr_text) = std::fs::read_to_string(run_dir.join(METRICS_ADDR_FILE)) else {
        return "no metrics.addr yet".to_string();
    };
    let Ok(addr) = addr_text.trim().parse::<std::net::SocketAddr>() else {
        return format!("bad metrics.addr {addr_text:?}");
    };
    match cap_obs::serve::http_get(addr, "/metrics") {
        Ok(body) => {
            let samples = cap_obs::expo::parse_exposition(&body);
            let n = samples.len();
            for (name, value) in samples {
                cap_obs::gauge_set(&format!("fleet.worker.{slot_idx}.{name}"), value);
            }
            format!("scrape ok ({n} series)")
        }
        Err(e) => format!("scrape failed: {e}"),
    }
}

/// Runs the fleet in `fleet_dir` until the queue drains (every spec
/// `done` or `poisoned`). Always reconciles first, so `run` after a
/// supervisor SIGKILL behaves like `resume`.
///
/// # Errors
///
/// Returns setup failures (queue, spawn path, telemetry bind errors
/// other than `EADDRINUSE`) and queue-append failures.
pub fn run_fleet(fleet_dir: &Path, cfg: &FleetConfig) -> Result<FleetReport, String> {
    let mut queue = Queue::load(fleet_dir)?;
    reconcile(&mut queue, fleet_dir)?;
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let server = if cfg.metrics_addr.is_empty() {
        None
    } else {
        cap_obs::serve::Server::start_resilient(&cfg.metrics_addr)?
    };
    let view: Arc<Mutex<(FleetSummary, Vec<FleetWorkerRow>)>> =
        Arc::new(Mutex::new((FleetSummary::default(), Vec::new())));
    if let Some(server) = &server {
        cap_obs::fsx::atomic_write(
            &fleet_dir.join("supervisor.addr"),
            server.addr().to_string().as_bytes(),
        )
        .map_err(|e| format!("write supervisor.addr: {e}"))?;
        let route_view = Arc::clone(&view);
        let title = fleet_dir.display().to_string();
        cap_obs::serve::register_route("/fleet", move |_query| {
            let guard = route_view.lock().unwrap_or_else(|p| p.into_inner());
            (
                "text/html; charset=utf-8",
                cap_obs::dash::render_fleet(&guard.0, &guard.1, &title),
            )
        });
        eprintln!(
            "capfleet: supervisor metrics on http://{}/metrics (fleet view: /fleet)",
            server.addr()
        );
    }
    cap_obs::enable();

    let mut slots: Vec<Option<Slot>> = (0..cfg.workers.max(1)).map(|_| None).collect();
    let mut slot_restarts = vec![0u64; slots.len()];
    let mut slot_backoff_ms = vec![0u64; slots.len()];
    let mut restarts_total = 0u64;
    let mut eligible_at: BTreeMap<String, Instant> = BTreeMap::new();

    loop {
        // 1. Reap exited children and charge failures.
        for (i, slot_opt) in slots.iter_mut().enumerate() {
            let Some(slot) = slot_opt else { continue };
            match slot.child.try_wait() {
                Ok(Some(status)) => {
                    let run_dir = crate::worker::run_dir_path(fleet_dir, &slot.spec_id);
                    let completed = status.success() && run_dir.join(DONE_FILE).exists();
                    if completed {
                        eprintln!("capfleet: {} done (attempt {})", slot.spec_id, slot.attempt);
                        queue.mark(&slot.spec_id, SpecState::Done, slot.attempt)?;
                    } else {
                        restarts_total += 1;
                        slot_restarts[i] += 1;
                        cap_obs::counter_add("fleet.restarts_total", 1);
                        let why = if slot.killed_for_stall {
                            "wedged (heartbeat stall)".to_string()
                        } else {
                            format!("exited {status}")
                        };
                        if slot.attempt >= cfg.retry_budget {
                            eprintln!(
                                "capfleet: {} {why}; retry budget ({}) exhausted — poisoned",
                                slot.spec_id, cfg.retry_budget
                            );
                            queue.mark(&slot.spec_id, SpecState::Poisoned, slot.attempt)?;
                        } else {
                            let delay = backoff_ms(cfg, slot.attempt);
                            slot_backoff_ms[i] = delay;
                            eprintln!(
                                "capfleet: {} {why}; retrying in {delay}ms (attempt {}/{})",
                                slot.spec_id, slot.attempt, cfg.retry_budget
                            );
                            queue.mark_failed(&slot.spec_id, slot.attempt)?;
                            eligible_at.insert(
                                slot.spec_id.clone(),
                                cap_obs::clock::now() + Duration::from_millis(delay),
                            );
                        }
                    }
                    *slot_opt = None;
                }
                Ok(None) => {
                    // Still running: advance the heartbeat watch.
                    let run_dir = crate::worker::run_dir_path(fleet_dir, &slot.spec_id);
                    if let Some((beat, _)) = cap_nn::heartbeat::read(&run_dir.join(HEARTBEAT_FILE))
                    {
                        if beat != slot.beat {
                            slot.beat = beat;
                            slot.beat_at = cap_obs::clock::now();
                        }
                    }
                    let silent = cap_obs::clock::now().duration_since(slot.beat_at);
                    if !slot.killed_for_stall
                        && silent > Duration::from_millis(cfg.stall_timeout_ms)
                    {
                        eprintln!(
                            "capfleet: {} heartbeat silent {}ms > {}ms — SIGKILL",
                            slot.spec_id,
                            silent.as_millis(),
                            cfg.stall_timeout_ms
                        );
                        slot.killed_for_stall = true;
                        let _ = slot.child.kill();
                    }
                }
                Err(e) => return Err(format!("wait on {}: {e}", slot.spec_id)),
            }
        }

        if queue.drained() {
            break;
        }

        // 2. Fill idle slots with eligible pending specs.
        for i in 0..slots.len() {
            if slots[i].is_some() {
                continue;
            }
            let now = cap_obs::clock::now();
            let running_ids: Vec<String> =
                slots.iter().flatten().map(|s| s.spec_id.clone()).collect();
            let next = queue.entries().into_iter().find_map(|e| {
                if e.state != SpecState::Pending || running_ids.contains(&e.spec.id) {
                    return None;
                }
                if eligible_at.get(&e.spec.id).is_some_and(|t| *t > now) {
                    return None;
                }
                Some((e.spec.clone(), e.attempts))
            });
            let Some((spec, attempts)) = next else { break };
            let attempt = attempts + 1;
            let mut cmd = Command::new(&exe);
            cmd.arg("worker")
                .arg("--fleet-dir")
                .arg(fleet_dir)
                .arg("--spec")
                .arg(&spec.id)
                .env_remove("CAP_METRICS_ADDR")
                .env_remove("CAP_PROF_HZ")
                .env_remove("CAP_FAULT")
                .stdout(Stdio::null());
            // Inject the spec's fault directive only on its early
            // attempts: the clean retry then proves recovery.
            if !spec.fault.is_empty() && attempt <= spec.fault_attempts {
                cmd.env("CAP_FAULT", &spec.fault);
            }
            let child = cmd
                .spawn()
                .map_err(|e| format!("spawn worker for {}: {e}", spec.id))?;
            eprintln!(
                "capfleet: slot {i}: {} attempt {attempt} (pid {})",
                spec.id,
                child.id()
            );
            queue.mark(&spec.id, SpecState::Running, attempt)?;
            slots[i] = Some(Slot {
                child,
                spec_id: spec.id,
                attempt,
                beat: 0,
                beat_at: cap_obs::clock::now(),
                killed_for_stall: false,
            });
        }

        // 3. Publish the federated view.
        let (pending, running, done, poisoned) = queue.counts();
        cap_obs::gauge_set("fleet.specs_pending", pending as f64);
        cap_obs::gauge_set("fleet.specs_running", running as f64);
        cap_obs::gauge_set("fleet.specs_done", done as f64);
        cap_obs::gauge_set("fleet.specs_poisoned", poisoned as f64);
        let mut rows = Vec::with_capacity(slots.len());
        for (i, slot_opt) in slots.iter().enumerate() {
            let up = slot_opt.is_some();
            cap_obs::gauge_set(&format!("fleet.worker.{i}.up"), f64::from(u8::from(up)));
            cap_obs::gauge_set(
                &format!("fleet.worker.{i}.restarts"),
                slot_restarts[i] as f64,
            );
            cap_obs::gauge_set(
                &format!("fleet.worker.{i}.backoff_ms"),
                slot_backoff_ms[i] as f64,
            );
            let mut row = FleetWorkerRow {
                slot: i,
                up,
                restarts: slot_restarts[i],
                ..FleetWorkerRow::default()
            };
            if let Some(slot) = slot_opt {
                row.pid = slot.child.id();
                row.spec = slot.spec_id.clone();
                row.heartbeat = slot.beat;
                let run_dir = crate::worker::run_dir_path(fleet_dir, &slot.spec_id);
                row.detail = federate_slot(i, &run_dir);
            } else {
                row.detail = format!("idle (last backoff {}ms)", slot_backoff_ms[i]);
            }
            rows.push(row);
        }
        {
            let mut guard = view.lock().unwrap_or_else(|p| p.into_inner());
            guard.0 = FleetSummary {
                pending,
                running,
                done,
                poisoned,
                restarts_total,
            };
            guard.1 = rows;
        }

        std::thread::sleep(Duration::from_millis(cfg.poll_ms.max(10)));
    }

    let (_, _, done, poisoned) = queue.counts();
    cap_obs::gauge_set("fleet.specs_done", done as f64);
    cap_obs::gauge_set("fleet.specs_poisoned", poisoned as f64);
    if server.is_some() {
        cap_obs::serve::unregister_route("/fleet");
    }
    eprintln!(
        "capfleet: sweep complete — {done} done, {poisoned} poisoned, {restarts_total} restarts"
    );
    Ok(FleetReport {
        done,
        poisoned,
        restarts: restarts_total,
    })
}

/// Renders the queue as the `capfleet status` table.
pub fn render_status(queue: &Queue) -> String {
    let mut out = String::new();
    let (pending, running, done, poisoned) = queue.counts();
    out.push_str(&format!(
        "{pending} pending · {running} running · {done} done · {poisoned} poisoned\n"
    ));
    let report = &queue.load_report;
    if *report != crate::queue::LoadReport::default() {
        out.push_str(&format!(
            "queue.jsonl: {} dropped line(s), {} duplicate spec(s), {} orphan event(s)\n",
            report.dropped_lines, report.duplicate_specs, report.orphan_events
        ));
    }
    out.push_str(&format!(
        "{:<28} {:<10} {:>8}  {}\n",
        "SPEC", "STATE", "ATTEMPTS", "KIND"
    ));
    for entry in queue.entries() {
        let state = match entry.state {
            SpecState::Pending => "pending",
            SpecState::Running => "running",
            SpecState::Done => "done",
            SpecState::Poisoned => "poisoned",
        };
        let fault = if entry.spec.fault.is_empty() {
            String::new()
        } else {
            format!(
                " fault={} (attempts<={})",
                entry.spec.fault, entry.spec.fault_attempts
            )
        };
        out.push_str(&format!(
            "{:<28} {:<10} {:>8}  {}{fault}\n",
            entry.spec.id, state, entry.attempts, entry.spec.kind
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Spec;

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = FleetConfig {
            backoff_base_ms: 100,
            backoff_cap_ms: 1_000,
            ..FleetConfig::default()
        };
        assert_eq!(backoff_ms(&cfg, 1), 100);
        assert_eq!(backoff_ms(&cfg, 2), 200);
        assert_eq!(backoff_ms(&cfg, 3), 400);
        assert_eq!(backoff_ms(&cfg, 5), 1_000, "capped");
        assert_eq!(backoff_ms(&cfg, 60), 1_000, "no shift overflow");
    }

    #[test]
    fn reconcile_trusts_run_dir_truth() {
        let dir = std::env::temp_dir().join(format!("cap_fleet_rec_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut queue = Queue::create(
            &dir,
            &[Spec::demo("finished", 1), Spec::demo("interrupted", 2)],
        )
        .unwrap();
        // Both were marked running by a supervisor that then died.
        queue.mark("finished", SpecState::Running, 1).unwrap();
        queue.mark("interrupted", SpecState::Running, 1).unwrap();
        // "finished" completed (DONE.json landed); "interrupted" did not.
        let done_dir = crate::worker::run_dir_path(&dir, "finished");
        std::fs::create_dir_all(&done_dir).unwrap();
        cap_obs::fsx::atomic_write(&done_dir.join(DONE_FILE), b"{}").unwrap();
        reconcile(&mut queue, &dir).unwrap();
        assert_eq!(
            queue.get("finished").unwrap().state,
            SpecState::Done,
            "completed spec must not be re-executed"
        );
        assert_eq!(
            queue.get("interrupted").unwrap().state,
            SpecState::Pending,
            "interrupted spec requeued"
        );
        // Reconciliation is durable: a reload agrees.
        drop(queue);
        let queue = Queue::load(&dir).unwrap();
        assert_eq!(queue.get("finished").unwrap().state, SpecState::Done);
        assert_eq!(queue.get("interrupted").unwrap().state, SpecState::Pending);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_renders_counts_and_fault_annotations() {
        let dir = std::env::temp_dir().join(format!("cap_fleet_status_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut faulty = Spec::demo("chaotic", 3);
        faulty.fault = "crash_after_iter=1".to_string();
        faulty.fault_attempts = 1;
        let mut queue = Queue::create(&dir, &[Spec::demo("plain", 1), faulty]).unwrap();
        queue.mark("plain", SpecState::Done, 1).unwrap();
        let status = render_status(&queue);
        assert!(status.contains("1 pending · 0 running · 1 done · 0 poisoned"));
        assert!(status.contains("chaotic"));
        assert!(status.contains("fault=crash_after_iter=1"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
