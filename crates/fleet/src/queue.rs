//! The durable, journaled work queue (`queue.jsonl`).
//!
//! The queue is an append-only event log: one JSON object per line,
//! every append fsync'd through [`cap_obs::fsx::AppendFile`]. Two line
//! shapes:
//!
//! ```text
//! {"type":"spec","id":"s1",...}                      spec submitted
//! {"type":"state","id":"s1","state":"running","attempts":1}  transition
//! ```
//!
//! State is derived by replay: a spec starts `pending`, and its most
//! recent `state` event wins. A `failed` event returns the spec to
//! `pending` with its attempt count charged — whether the failure
//! poisons the spec is the *supervisor's* runtime decision (retry
//! budget), recorded as an explicit `poisoned` event.
//!
//! The loader is crash-tolerant by construction: a torn final line
//! (the write the dying supervisor didn't finish) is dropped, garbage
//! lines are skipped and counted rather than fatal, duplicate spec
//! submissions keep the first occurrence, state events for unknown
//! specs are ignored, and unknown fields pass through silently. A
//! reload after supervisor SIGKILL therefore reconstructs exactly the
//! durable prefix of the fleet's history.

use crate::spec::Spec;
use cap_obs::fsx::AppendFile;
use cap_obs::json::{self, Json};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Replay-derived state of one spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecState {
    /// Waiting for a worker (fresh, or returned by a failure).
    Pending,
    /// Marked as executing. After a supervisor crash this may be stale
    /// — reconciliation resolves it against the run dir.
    Running,
    /// Completed successfully. Terminal: never executed again.
    Done,
    /// Retry budget exhausted. Terminal.
    Poisoned,
}

impl SpecState {
    fn name(self) -> &'static str {
        match self {
            SpecState::Pending => "pending",
            SpecState::Running => "running",
            SpecState::Done => "done",
            SpecState::Poisoned => "poisoned",
        }
    }
}

/// One spec plus its replayed state.
#[derive(Debug, Clone)]
pub struct Entry {
    /// The submitted spec.
    pub spec: Spec,
    /// Current state after replay.
    pub state: SpecState,
    /// Execution attempts charged so far (failures, not restarts of
    /// the queue).
    pub attempts: u64,
}

/// What the lenient loader had to tolerate (surfaced in `status` and
/// asserted on by the hostile-input tests).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Unparsable or half-written lines skipped (includes a torn tail).
    pub dropped_lines: u64,
    /// Re-submissions of an existing spec id (first one kept).
    pub duplicate_specs: u64,
    /// State events referencing unknown spec ids.
    pub orphan_events: u64,
}

/// The durable queue: replayed entries plus the open append handle.
pub struct Queue {
    path: PathBuf,
    file: AppendFile,
    entries: BTreeMap<String, Entry>,
    order: Vec<String>,
    /// What the loader tolerated while replaying.
    pub load_report: LoadReport,
}

impl Queue {
    /// Path of the queue file inside `fleet_dir`.
    pub fn path_in(fleet_dir: &Path) -> PathBuf {
        fleet_dir.join("queue.jsonl")
    }

    /// Creates a fresh queue in `fleet_dir` and submits `specs`
    /// (durably, one fsync'd line each). Fails if a queue already
    /// exists — re-entry goes through [`Queue::load`].
    ///
    /// # Errors
    ///
    /// Returns a description of I/O failures or duplicate spec ids.
    pub fn create(fleet_dir: &Path, specs: &[Spec]) -> Result<Queue, String> {
        std::fs::create_dir_all(fleet_dir)
            .map_err(|e| format!("create {}: {e}", fleet_dir.display()))?;
        let path = Queue::path_in(fleet_dir);
        if path.exists() {
            return Err(format!(
                "{} already exists; `capfleet resume` continues it",
                path.display()
            ));
        }
        let file = AppendFile::open(&path).map_err(|e| format!("open {}: {e}", path.display()))?;
        let mut queue = Queue {
            path,
            file,
            entries: BTreeMap::new(),
            order: Vec::new(),
            load_report: LoadReport::default(),
        };
        for spec in specs {
            if queue.entries.contains_key(&spec.id) {
                return Err(format!("duplicate spec id {:?}", spec.id));
            }
            queue.append_line(&spec.to_line())?;
            queue.insert_spec(spec.clone());
        }
        Ok(queue)
    }

    /// Loads a queue by replaying `queue.jsonl` (leniently — see the
    /// module docs), reopening it for appends.
    ///
    /// # Errors
    ///
    /// Returns a description when the file is missing or unreadable.
    pub fn load(fleet_dir: &Path) -> Result<Queue, String> {
        let path = Queue::path_in(fleet_dir);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let mut file =
            AppendFile::open(&path).map_err(|e| format!("open {}: {e}", path.display()))?;
        // A torn tail must be truncated away physically, not just
        // skipped in memory: otherwise the next append would weld onto
        // the half-written bytes and corrupt that line too.
        if !text.is_empty() && !text.ends_with('\n') {
            let durable = text.rfind('\n').map_or(0, |i| i + 1);
            file.truncate(durable as u64)
                .map_err(|e| format!("truncate {}: {e}", path.display()))?;
        }
        let mut queue = Queue {
            path,
            file,
            entries: BTreeMap::new(),
            order: Vec::new(),
            load_report: LoadReport::default(),
        };
        let mut lines = text.split('\n').peekable();
        let torn_tail = !text.is_empty() && !text.ends_with('\n');
        while let Some(line) = lines.next() {
            if line.is_empty() {
                continue;
            }
            // The final line of a file without a trailing newline is a
            // torn write from a dying process: drop it silently-ish.
            if torn_tail && lines.peek().is_none() {
                queue.load_report.dropped_lines += 1;
                continue;
            }
            queue.replay_line(line);
        }
        Ok(queue)
    }

    fn replay_line(&mut self, line: &str) {
        let Ok(obj) = json::parse(line) else {
            self.load_report.dropped_lines += 1;
            return;
        };
        match obj.get("type").and_then(Json::as_str) {
            Some("spec") => match Spec::from_json(&obj) {
                Ok(spec) => {
                    if self.entries.contains_key(&spec.id) {
                        self.load_report.duplicate_specs += 1;
                    } else {
                        self.insert_spec(spec);
                    }
                }
                Err(_) => self.load_report.dropped_lines += 1,
            },
            Some("state") => {
                let id = obj.get("id").and_then(Json::as_str).unwrap_or("");
                let state = match obj.get("state").and_then(Json::as_str) {
                    Some("pending") => SpecState::Pending,
                    Some("running") => SpecState::Running,
                    Some("done") => SpecState::Done,
                    Some("poisoned") => SpecState::Poisoned,
                    // "failed" returns the spec to pending with the
                    // attempt charged.
                    Some("failed") => SpecState::Pending,
                    _ => {
                        self.load_report.dropped_lines += 1;
                        return;
                    }
                };
                match self.entries.get_mut(id) {
                    Some(entry) => {
                        entry.state = state;
                        if let Some(attempts) = obj.get("attempts").and_then(Json::as_u64) {
                            entry.attempts = attempts;
                        }
                    }
                    None => self.load_report.orphan_events += 1,
                }
            }
            _ => self.load_report.dropped_lines += 1,
        }
    }

    fn insert_spec(&mut self, spec: Spec) {
        self.order.push(spec.id.clone());
        self.entries.insert(
            spec.id.clone(),
            Entry {
                spec,
                state: SpecState::Pending,
                attempts: 0,
            },
        );
    }

    fn append_line(&mut self, line: &str) -> Result<(), String> {
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        self.file
            .append_durable(&buf)
            .map_err(|e| format!("append {}: {e}", self.path.display()))
    }

    /// Records a state transition durably and applies it in memory.
    /// `failed` transitions land as `Pending` with `attempts` charged.
    ///
    /// # Errors
    ///
    /// Returns a description for unknown ids or append failures.
    pub fn mark(&mut self, id: &str, state: SpecState, attempts: u64) -> Result<(), String> {
        self.mark_named(id, state.name(), state, attempts)
    }

    /// Records a failure: durably logged as `"failed"`, replayed as
    /// pending-with-attempt-charged.
    ///
    /// # Errors
    ///
    /// Returns a description for unknown ids or append failures.
    pub fn mark_failed(&mut self, id: &str, attempts: u64) -> Result<(), String> {
        self.mark_named(id, "failed", SpecState::Pending, attempts)
    }

    fn mark_named(
        &mut self,
        id: &str,
        name: &str,
        state: SpecState,
        attempts: u64,
    ) -> Result<(), String> {
        if !self.entries.contains_key(id) {
            return Err(format!("unknown spec id {id:?}"));
        }
        let mut line = String::with_capacity(64);
        line.push_str("{\"type\":\"state\",\"id\":");
        json::write_str(&mut line, id);
        line.push_str(",\"state\":");
        json::write_str(&mut line, name);
        line.push_str(",\"attempts\":");
        line.push_str(&attempts.to_string());
        line.push('}');
        self.append_line(&line)?;
        let entry = self.entries.get_mut(id).expect("checked above");
        entry.state = state;
        entry.attempts = attempts;
        Ok(())
    }

    /// Entry for `id`, if submitted.
    pub fn get(&self, id: &str) -> Option<&Entry> {
        self.entries.get(id)
    }

    /// All entries in submission order.
    pub fn entries(&self) -> Vec<&Entry> {
        self.order
            .iter()
            .filter_map(|id| self.entries.get(id))
            .collect()
    }

    /// Counts per state: `(pending, running, done, poisoned)`.
    pub fn counts(&self) -> (u64, u64, u64, u64) {
        let mut c = (0, 0, 0, 0);
        for entry in self.entries.values() {
            match entry.state {
                SpecState::Pending => c.0 += 1,
                SpecState::Running => c.1 += 1,
                SpecState::Done => c.2 += 1,
                SpecState::Poisoned => c.3 += 1,
            }
        }
        c
    }

    /// Whether every spec reached a terminal state.
    pub fn drained(&self) -> bool {
        let (pending, running, _, _) = self.counts();
        pending == 0 && running == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cap_fleet_queue_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn create_mark_reload_round_trip() {
        let dir = tmp_dir("round");
        let specs = vec![Spec::demo("a", 1), Spec::demo("b", 2)];
        let mut q = Queue::create(&dir, &specs).unwrap();
        q.mark("a", SpecState::Running, 1).unwrap();
        q.mark("a", SpecState::Done, 1).unwrap();
        q.mark("b", SpecState::Running, 1).unwrap();
        q.mark_failed("b", 1).unwrap();
        drop(q);
        let q = Queue::load(&dir).unwrap();
        assert_eq!(q.load_report, LoadReport::default());
        assert_eq!(q.get("a").unwrap().state, SpecState::Done);
        let b = q.get("b").unwrap();
        assert_eq!(b.state, SpecState::Pending, "failed returns to pending");
        assert_eq!(b.attempts, 1);
        assert_eq!(q.counts(), (1, 0, 1, 0));
        assert!(!q.drained());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_refuses_existing_queue_and_duplicate_ids() {
        let dir = tmp_dir("dup");
        Queue::create(&dir, &[Spec::demo("a", 1)]).unwrap();
        assert!(Queue::create(&dir, &[]).is_err(), "existing queue");
        let dir2 = tmp_dir("dup2");
        assert!(
            Queue::create(&dir2, &[Spec::demo("a", 1), Spec::demo("a", 2)]).is_err(),
            "duplicate ids rejected at submission"
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }
}
