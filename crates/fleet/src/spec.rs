//! Experiment specs: the unit of work a fleet executes.
//!
//! A [`Spec`] is either a `demo` run (the small synthetic network
//! `capctl prune` uses, parameterised by width/strategy/seed — seconds
//! per run, the chaos tests' workhorse) or a `suite` run referencing a
//! cell of the `exp_suite` grid by its [`cap_bench::specs`] id.
//!
//! Specs serialise to single JSON lines via the `cap-obs` JSON writer
//! and parse back leniently: unknown fields are ignored, missing
//! optional fields default, and only a missing/empty `id` rejects the
//! line — the queue loader must survive hostile input.

use cap_core::PruneStrategy;
use cap_obs::json::{self, Json};

/// One experiment the fleet will run to completion.
#[derive(Debug, Clone, PartialEq)]
pub struct Spec {
    /// Unique, filesystem-safe id; doubles as the run-directory name.
    pub id: String,
    /// `"demo"` (synthetic quick run) or `"suite"` (`exp_suite` cell).
    pub kind: String,
    /// Demo: conv width of the synthetic network.
    pub width: u64,
    /// Demo: maximum pruning iterations.
    pub iters: u64,
    /// Demo: model/data seed.
    pub seed: u64,
    /// Demo: strategy string (see [`parse_strategy`]).
    pub strategy: String,
    /// Suite: experiment scale (`"smoke"`, `"small"`, `"full"`).
    pub scale: String,
    /// `CAP_FAULT` directive injected into the worker on early
    /// attempts; empty = no injection.
    pub fault: String,
    /// Inject [`Spec::fault`] only while `attempt <= fault_attempts`,
    /// so a retried run proves clean recovery.
    pub fault_attempts: u64,
}

impl Spec {
    /// A demo spec with the default quick-run shape.
    pub fn demo(id: impl Into<String>, seed: u64) -> Spec {
        Spec {
            id: id.into(),
            kind: "demo".to_string(),
            width: 12,
            iters: 2,
            seed,
            strategy: "percentage:0.2".to_string(),
            scale: String::new(),
            fault: String::new(),
            fault_attempts: 0,
        }
    }

    /// A suite spec referencing a [`cap_bench::specs`] id.
    pub fn suite(id: impl Into<String>, scale: impl Into<String>) -> Spec {
        Spec {
            id: id.into(),
            kind: "suite".to_string(),
            width: 0,
            iters: 0,
            seed: 0,
            strategy: String::new(),
            scale: scale.into(),
            fault: String::new(),
            fault_attempts: 0,
        }
    }

    /// Serialises the spec as one `{"type":"spec",...}` queue line.
    pub fn to_line(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push_str("{\"type\":\"spec\",\"id\":");
        json::write_str(&mut out, &self.id);
        out.push_str(",\"kind\":");
        json::write_str(&mut out, &self.kind);
        out.push_str(",\"width\":");
        out.push_str(&self.width.to_string());
        out.push_str(",\"iters\":");
        out.push_str(&self.iters.to_string());
        out.push_str(",\"seed\":");
        out.push_str(&self.seed.to_string());
        out.push_str(",\"strategy\":");
        json::write_str(&mut out, &self.strategy);
        out.push_str(",\"scale\":");
        json::write_str(&mut out, &self.scale);
        out.push_str(",\"fault\":");
        json::write_str(&mut out, &self.fault);
        out.push_str(",\"fault_attempts\":");
        out.push_str(&self.fault_attempts.to_string());
        out.push('}');
        out
    }

    /// Parses a spec from a queue-line JSON object. Lenient: unknown
    /// fields are ignored, missing fields default; only a missing or
    /// empty `id` is an error.
    ///
    /// # Errors
    ///
    /// Returns a description when `id` is absent/empty.
    pub fn from_json(obj: &Json) -> Result<Spec, String> {
        let id = obj
            .get("id")
            .and_then(Json::as_str)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| "spec line missing id".to_string())?;
        let str_field = |key: &str, default: &str| {
            obj.get(key)
                .and_then(Json::as_str)
                .unwrap_or(default)
                .to_string()
        };
        let u64_field =
            |key: &str, default: u64| obj.get(key).and_then(Json::as_u64).unwrap_or(default);
        Ok(Spec {
            id: id.to_string(),
            kind: str_field("kind", "demo"),
            width: u64_field("width", 12),
            iters: u64_field("iters", 2),
            seed: u64_field("seed", 33),
            strategy: str_field("strategy", "percentage:0.2"),
            scale: str_field("scale", ""),
            fault: str_field("fault", ""),
            fault_attempts: u64_field("fault_attempts", 0),
        })
    }
}

/// Parses a demo strategy string: `percentage:<f>`, `threshold:<t>` or
/// `combined:<t>:<f>`.
///
/// # Errors
///
/// Returns a description of the malformed string.
pub fn parse_strategy(s: &str) -> Result<PruneStrategy, String> {
    let mut parts = s.split(':');
    let kind = parts.next().unwrap_or("");
    let nums: Vec<f64> = parts
        .map(|p| {
            p.parse::<f64>()
                .map_err(|e| format!("bad number {p:?} in strategy {s:?}: {e}"))
        })
        .collect::<Result<_, _>>()?;
    match (kind, nums.as_slice()) {
        ("percentage", [fraction]) => Ok(PruneStrategy::Percentage {
            fraction: *fraction,
        }),
        ("threshold", [threshold]) => Ok(PruneStrategy::Threshold {
            threshold: *threshold,
        }),
        ("combined", [threshold, max_fraction]) => Ok(PruneStrategy::Combined {
            threshold: *threshold,
            max_fraction: *max_fraction,
        }),
        _ => Err(format!(
            "bad strategy {s:?} (want percentage:<f>, threshold:<t> or combined:<t>:<f>)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_a_queue_line() {
        let mut spec = Spec::demo("s1", 7);
        spec.fault = "crash_after_iter=1".to_string();
        spec.fault_attempts = 1;
        let line = spec.to_line();
        let parsed = Spec::from_json(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn parse_is_lenient_but_requires_id() {
        let parsed = Spec::from_json(
            &json::parse(r#"{"id":"x","mystery_field":[1,2],"width":"nope"}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(parsed.id, "x");
        assert_eq!(parsed.width, 12, "bad-typed field falls back to default");
        assert_eq!(parsed.kind, "demo");
        assert!(Spec::from_json(&json::parse(r#"{"type":"spec"}"#).unwrap()).is_err());
        assert!(Spec::from_json(&json::parse(r#"{"id":""}"#).unwrap()).is_err());
    }

    #[test]
    fn strategy_strings_parse() {
        assert!(matches!(
            parse_strategy("percentage:0.2"),
            Ok(PruneStrategy::Percentage { .. })
        ));
        assert!(matches!(
            parse_strategy("threshold:3.0"),
            Ok(PruneStrategy::Threshold { .. })
        ));
        assert!(matches!(
            parse_strategy("combined:3.0:0.3"),
            Ok(PruneStrategy::Combined { .. })
        ));
        assert!(parse_strategy("percentage").is_err());
        assert!(parse_strategy("combined:1").is_err());
        assert!(parse_strategy("magic:1").is_err());
        assert!(parse_strategy("percentage:x").is_err());
    }
}
