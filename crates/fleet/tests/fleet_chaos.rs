//! The fleet chaos invariant, end-to-end through the real `capfleet`
//! binary:
//!
//! - six specs on two workers: two clean, two that SIGABRT
//!   mid-iteration, one that wedges (heartbeat stall → SIGKILL), one
//!   that always dies at startup (→ poisoned);
//! - the supervisor itself is SIGKILLed mid-sweep and `capfleet
//!   resume` carries the sweep to completion;
//! - every non-poisoned spec completes **exactly once** (one durable
//!   `done` event each);
//! - rescheduled runs resume through the journal, so their final
//!   checkpoints are **bit-identical** to an uninterrupted reference
//!   fleet's;
//! - retries/backoff are observable in the federated `/metrics` and
//!   the `/fleet` dashboard renders.

use cap_fleet::queue::{Queue, SpecState};
use cap_fleet::spec::Spec;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_capfleet");

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cap_fleet_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The chaos roster. Faulty specs first so failures happen early in
/// the sweep (the supervisor gets SIGKILLed shortly after the first).
fn chaos_specs() -> Vec<Spec> {
    let mut c1 = Spec::demo("c1-crash", 41);
    c1.fault = "crash_after_iter=1".to_string();
    c1.fault_attempts = 1;
    let mut c2 = Spec::demo("c2-crash", 42);
    c2.fault = "crash_after_iter=1".to_string();
    c2.fault_attempts = 1;
    let mut w1 = Spec::demo("w1-wedge", 43);
    w1.fault = "wedge_after_iter=1".to_string();
    w1.fault_attempts = 1;
    let mut p1 = Spec::demo("p1-poison", 44);
    p1.fault = "exit_at_start=23".to_string();
    p1.fault_attempts = 99; // never runs clean → exhausts the budget
    vec![
        c1,
        c2,
        w1,
        p1,
        Spec::demo("n1-clean", 45),
        Spec::demo("n2-clean", 46),
    ]
}

fn init_fleet(dir: &Path, specs: &[Spec]) {
    Queue::create(dir, specs).unwrap();
}

fn fleet_cmd(sub: &str, dir: &Path) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.args([
        sub,
        "--fleet-dir",
        dir.to_str().unwrap(),
        "--workers",
        "2",
        "--poll-ms",
        "100",
        "--stall-timeout-ms",
        "4000",
        "--retry-budget",
        "2",
        "--backoff-base-ms",
        "100",
        "--backoff-cap-ms",
        "1000",
    ])
    .env_remove("CAP_FAULT")
    .stdout(Stdio::null());
    cmd
}

fn queue_text(dir: &Path) -> String {
    std::fs::read_to_string(Queue::path_in(dir)).unwrap_or_default()
}

fn supervisor_addr(dir: &Path) -> Option<SocketAddr> {
    std::fs::read_to_string(dir.join("supervisor.addr"))
        .ok()?
        .trim()
        .parse()
        .ok()
}

fn done_json(dir: &Path, id: &str) -> cap_obs::json::Json {
    let path = dir.join("runs").join(id).join("DONE.json");
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    cap_obs::json::parse(&text).unwrap()
}

#[test]
fn fleet_survives_chaos_and_supervisor_sigkill_with_bit_identical_reruns() {
    let chaos_dir = tmp_dir("sweep");
    let ref_dir = tmp_dir("reference");
    let specs = chaos_specs();
    init_fleet(&chaos_dir, &specs);

    // Phase 1: run the chaos sweep, scrape the federated telemetry
    // until a restart is visible, then SIGKILL the supervisor.
    let mut supervisor = fleet_cmd("run", &chaos_dir).spawn().unwrap();
    let deadline = Instant::now() + Duration::from_secs(180);
    let mut metrics_with_restart = String::new();
    let mut fleet_html = String::new();
    loop {
        assert!(Instant::now() < deadline, "no worker failure within 180s");
        if let Some(addr) = supervisor_addr(&chaos_dir) {
            if let Ok(body) = cap_obs::serve::http_get(addr, "/metrics") {
                let restarts = cap_obs::expo::parse_exposition(&body)
                    .into_iter()
                    .find(|(name, _)| name == "cap_fleet_restarts_total")
                    .map_or(0.0, |(_, v)| v);
                if restarts >= 1.0 {
                    metrics_with_restart = body;
                    fleet_html = cap_obs::serve::http_get(addr, "/fleet").unwrap_or_default();
                }
            }
        }
        // Kill only once the restart was both durably recorded and
        // observed through /metrics — mid-sweep by construction (the
        // wedge spec alone needs its 4s stall plus a clean rerun).
        if !metrics_with_restart.is_empty()
            && queue_text(&chaos_dir).contains("\"state\":\"failed\"")
        {
            break;
        }
        if supervisor.try_wait().unwrap().is_some() {
            panic!("sweep finished before a failure was observed — chaos not exercised");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    supervisor.kill().unwrap(); // SIGKILL: no cleanup, no final queue writes
    supervisor.wait().unwrap();

    // The federated surface saw the fleet: restart counter plus
    // per-worker federated series, and the dashboard rendered.
    assert!(
        metrics_with_restart.contains("cap_fleet_restarts_total"),
        "restart counter missing from supervisor /metrics"
    );
    assert!(
        metrics_with_restart.contains("cap_fleet_worker_0_up"),
        "per-slot gauges missing from supervisor /metrics"
    );
    assert!(
        fleet_html.contains("queue-stats"),
        "/fleet dashboard did not render: {fleet_html:?}"
    );

    // Phase 2: resume reconciles the torn queue and drains the sweep.
    // Exit 1 = drained with poisoned specs (p1 never runs clean).
    let status = fleet_cmd("resume", &chaos_dir).status().unwrap();
    assert_eq!(
        status.code(),
        Some(1),
        "resume exits 1 when specs were poisoned"
    );

    let queue = Queue::load(&chaos_dir).unwrap();
    assert_eq!(
        queue.load_report,
        cap_fleet::queue::LoadReport::default(),
        "resume left a contiguous, fully-parsable queue.jsonl"
    );
    for spec in &specs {
        let entry = queue.get(&spec.id).unwrap();
        if spec.id == "p1-poison" {
            assert_eq!(entry.state, SpecState::Poisoned, "{}", spec.id);
            assert_eq!(entry.attempts, 2, "poisoned after the full retry budget");
        } else {
            assert_eq!(entry.state, SpecState::Done, "{}", spec.id);
        }
    }

    // No spec is ever executed to completion twice: exactly one
    // durable `done` event per non-poisoned spec across run + resume.
    let history = queue_text(&chaos_dir);
    for spec in &specs {
        let done_events = history
            .lines()
            .filter(|l| {
                l.contains(&format!("\"id\":\"{}\"", spec.id)) && l.contains("\"state\":\"done\"")
            })
            .count();
        let expected = usize::from(spec.id != "p1-poison");
        assert_eq!(done_events, expected, "done events for {}", spec.id);
    }

    // Phase 3: the bit-identical invariant. An uninterrupted reference
    // fleet (same specs, no fault injection) must produce byte-equal
    // final checkpoints for every spec the chaos fleet completed.
    let clean_specs: Vec<Spec> = specs
        .iter()
        .filter(|s| s.id != "p1-poison")
        .map(|s| {
            let mut c = s.clone();
            c.fault = String::new();
            c.fault_attempts = 0;
            c
        })
        .collect();
    init_fleet(&ref_dir, &clean_specs);
    let status = fleet_cmd("run", &ref_dir).status().unwrap();
    assert!(status.success(), "reference fleet failed: {status}");

    for spec in &clean_specs {
        let chaos_done = done_json(&chaos_dir, &spec.id);
        let ref_done = done_json(&ref_dir, &spec.id);
        let ckpt = chaos_done
            .get("ckpt")
            .and_then(|j| j.as_str().map(str::to_string));
        let ckpt = ckpt.unwrap_or_else(|| panic!("{}: DONE.json lacks ckpt", spec.id));
        assert_eq!(
            ref_done.get("ckpt").and_then(|j| j.as_str()),
            Some(ckpt.as_str()),
            "{}: same final generation",
            spec.id
        );
        assert_eq!(
            chaos_done
                .get("ckpt_crc")
                .and_then(cap_obs::json::Json::as_u64),
            ref_done
                .get("ckpt_crc")
                .and_then(cap_obs::json::Json::as_u64),
            "{}: checkpoint CRC differs from uninterrupted run",
            spec.id
        );
        let chaos_bytes = std::fs::read(
            chaos_dir
                .join("runs")
                .join(&spec.id)
                .join("ckpt")
                .join(&ckpt),
        )
        .unwrap();
        let ref_bytes =
            std::fs::read(ref_dir.join("runs").join(&spec.id).join("ckpt").join(&ckpt)).unwrap();
        assert_eq!(
            chaos_bytes, ref_bytes,
            "{}: rescheduled run's checkpoint is not bit-identical",
            spec.id
        );
    }

    // The faulted specs really were retried (attempts charged), so the
    // bit-identical equality above covers resumed-after-crash runs.
    for id in ["c1-crash", "c2-crash", "w1-wedge"] {
        assert!(
            queue.get(id).unwrap().attempts >= 2,
            "{id} should have needed more than one attempt"
        );
    }

    let _ = std::fs::remove_dir_all(&chaos_dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}
