//! Hostile `queue.jsonl` inputs: the loader must never panic, must
//! drop exactly the torn tail, and must keep the event log contiguous
//! across a simulated supervisor SIGKILL + resume.

use cap_fleet::queue::{Queue, SpecState};
use cap_fleet::spec::Spec;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cap_fleet_hostile_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn loader_survives_garbage_duplicates_orphans_and_a_torn_tail() {
    let dir = tmp_dir("soup");
    let mut hostile = String::new();
    hostile.push_str(&Spec::demo("a", 1).to_line());
    hostile.push('\n');
    // Duplicate submission of "a" with different parameters: first wins.
    let mut dup = Spec::demo("a", 99);
    dup.width = 55;
    hostile.push_str(&dup.to_line());
    hostile.push('\n');
    // Unparsable garbage and a non-object line.
    hostile.push_str("!!! not json at all\n");
    hostile.push_str("[1,2,3]\n");
    // A spec with unknown fields and a wrongly-typed known field.
    hostile.push_str(r#"{"type":"spec","id":"b","mystery":{"deep":[true]},"width":"wat"}"#);
    hostile.push('\n');
    // State event for a spec that was never submitted.
    hostile.push_str(r#"{"type":"state","id":"ghost","state":"done","attempts":1}"#);
    hostile.push('\n');
    // An unknown state name.
    hostile.push_str(r#"{"type":"state","id":"a","state":"ascended","attempts":9}"#);
    hostile.push('\n');
    // Legitimate history for "a": ran once, failed once.
    hostile.push_str(r#"{"type":"state","id":"a","state":"running","attempts":1}"#);
    hostile.push('\n');
    hostile.push_str(r#"{"type":"state","id":"a","state":"failed","attempts":1}"#);
    hostile.push('\n');
    // Torn tail: the write the dying supervisor never finished (no
    // trailing newline, mid-token).
    hostile.push_str(r#"{"type":"state","id":"b","state":"do"#);
    std::fs::write(Queue::path_in(&dir), &hostile).unwrap();

    let queue = Queue::load(&dir).unwrap();
    // garbage + non-object + unknown state name + torn tail.
    assert_eq!(
        queue.load_report.dropped_lines, 4,
        "{:?}",
        queue.load_report
    );
    assert_eq!(queue.load_report.duplicate_specs, 1);
    assert_eq!(queue.load_report.orphan_events, 1);

    let a = queue.get("a").unwrap();
    assert_eq!(a.spec.width, 12, "first submission wins over the duplicate");
    assert_eq!(a.state, SpecState::Pending, "failed replays as pending");
    assert_eq!(a.attempts, 1);
    let b = queue.get("b").unwrap();
    assert_eq!(
        b.spec.width, 12,
        "wrongly-typed field falls back to default"
    );
    assert_eq!(
        b.state,
        SpecState::Pending,
        "the torn 'done' for b must not count"
    );
    assert_eq!(queue.counts(), (2, 0, 0, 0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_is_truncated_so_appends_stay_contiguous() {
    let dir = tmp_dir("torn");
    let mut q = Queue::create(&dir, &[Spec::demo("a", 1), Spec::demo("b", 2)]).unwrap();
    q.mark("a", SpecState::Running, 1).unwrap();
    drop(q);
    // Simulate a supervisor SIGKILLed mid-append: half a line lands.
    let path = Queue::path_in(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.extend_from_slice(br#"{"type":"state","id":"a","state":"don"#);
    std::fs::write(&path, &bytes).unwrap();

    // Resume: load drops AND truncates the torn tail, then appends new
    // history. A second reload must parse every line cleanly.
    let mut q = Queue::load(&dir).unwrap();
    assert_eq!(q.load_report.dropped_lines, 1);
    assert_eq!(q.get("a").unwrap().state, SpecState::Running);
    q.mark("a", SpecState::Done, 1).unwrap();
    q.mark("b", SpecState::Running, 1).unwrap();
    drop(q);

    let q = Queue::load(&dir).unwrap();
    assert_eq!(
        q.load_report.dropped_lines, 0,
        "no residue of the torn write may survive the resume"
    );
    assert_eq!(q.get("a").unwrap().state, SpecState::Done);
    assert_eq!(q.get("b").unwrap().state, SpecState::Running);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_and_whitespace_only_files_load_as_empty_queues() {
    let dir = tmp_dir("empty");
    std::fs::write(Queue::path_in(&dir), "").unwrap();
    let q = Queue::load(&dir).unwrap();
    assert_eq!(q.counts(), (0, 0, 0, 0));
    assert!(q.drained(), "an empty queue is trivially drained");
    assert_eq!(q.load_report.dropped_lines, 0);

    std::fs::write(Queue::path_in(&dir), "\n\n\n").unwrap();
    let q = Queue::load(&dir).unwrap();
    assert_eq!(q.counts(), (0, 0, 0, 0));
    assert_eq!(q.load_report.dropped_lines, 0, "blank lines are not errors");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_queue_file_is_an_error_not_a_panic() {
    let dir = tmp_dir("missing");
    let Err(err) = Queue::load(&dir) else {
        panic!("loading a nonexistent queue must fail");
    };
    assert!(err.contains("queue.jsonl"), "error names the file: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}
