#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

//! Re-implementations of the filter-pruning criteria the paper compares
//! against in Fig. 6, on the same substrate as the class-aware method so
//! the comparison is apples-to-apples:
//!
//! | Criterion | Paper ref | Idea |
//! |---|---|---|
//! | [`L1Criterion`] | L1 \[23\] | per-filter weight L1 norm |
//! | [`SssCriterion`] | SSS \[27\] | batch-norm scaling-factor magnitude (sparse structure selection, scaling-factor family) |
//! | [`HRankCriterion`] | HRank \[19\] | average rank of the filter's feature maps |
//! | [`TppCriterion`] | TPP \[18\] | trainability preservation via weight·gradient products |
//! | [`OrthConvCriterion`] | OrthConv \[31\] | orthogonality-regularised training + magnitude pruning |
//! | [`DepGraphCriterion`] | DepGraph \[13\] | dependency-group norms, with full- and no-grouping variants |
//! | [`TaylorCriterion`] | Taylor \[25\] | class-agnostic `|a·∂L/∂a|` — isolates the value of the class dimension |
//!
//! All criteria implement [`FilterCriterion`] and run under the shared
//! iterative [`run_baseline`] schedule (prune lowest-scoring p% →
//! fine-tune → repeat), mirroring the class-aware framework.
//!
//! Where the original methods train auxiliary variables end-to-end (SSS's
//! scaling factors, TPP's masks), this crate uses their published scoring
//! rule on our substrate; DESIGN.md documents each simplification.

mod criteria;
mod rank;
mod runner;

pub use criteria::{
    DepGraphCriterion, FilterCriterion, FpgmCriterion, HRankCriterion, L1Criterion,
    OrthConvCriterion, SssCriterion, TaylorCriterion, TppCriterion,
};
pub use rank::matrix_rank;
pub use runner::{run_baseline, BaselineConfig, BaselineOutcome};

/// All standard criteria, boxed, in the order of the paper's Fig. 6
/// legend (plus the class-agnostic Taylor extra).
pub fn standard_criteria() -> Vec<Box<dyn FilterCriterion>> {
    vec![
        Box::new(L1Criterion::new()),
        Box::new(SssCriterion::new()),
        Box::new(HRankCriterion::new(8)),
        Box::new(TppCriterion::new(16)),
        Box::new(OrthConvCriterion::new()),
        Box::new(DepGraphCriterion::full_grouping()),
        Box::new(DepGraphCriterion::no_grouping()),
        Box::new(TaylorCriterion::new(16)),
        Box::new(FpgmCriterion::new()),
    ]
}
