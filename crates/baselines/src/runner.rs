//! The shared iterative schedule under which every baseline criterion is
//! run: prune the lowest-scoring fraction → fine-tune → repeat. This
//! mirrors the class-aware framework so Fig. 6's comparison contrasts the
//! *criteria*, not the schedules.

use crate::FilterCriterion;
use cap_core::{
    analyze_network, apply_site_pruning, find_prunable_sites, select_filters, FlopsReport,
    PruneError, PruneStrategy,
};
use cap_data::Dataset;
use cap_nn::{evaluate, fit, Network, TrainConfig};

/// Schedule configuration for a baseline pruning run.
#[derive(Debug, Clone, Copy)]
pub struct BaselineConfig {
    /// Fraction of all filters removed per iteration.
    pub fraction_per_iter: f64,
    /// Number of prune → fine-tune iterations.
    pub iterations: usize,
    /// Fine-tuning settings; the regulariser is overridden by the
    /// criterion's [`FilterCriterion::train_regularizer`].
    pub finetune: TrainConfig,
    /// Batch size for evaluation.
    pub eval_batch: usize,
    /// Seed forwarded to data-driven criteria.
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            fraction_per_iter: 0.1,
            iterations: 5,
            finetune: TrainConfig {
                epochs: 3,
                ..TrainConfig::default()
            },
            eval_batch: 64,
            seed: 0xBA5E,
        }
    }
}

/// Result of a baseline pruning run, with the same headline metrics as
/// the class-aware outcome.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// The criterion's display name.
    pub method: String,
    /// Test accuracy before pruning.
    pub baseline_accuracy: f64,
    /// Test accuracy after the full schedule.
    pub final_accuracy: f64,
    /// Cost before pruning.
    pub baseline_cost: FlopsReport,
    /// Cost after pruning.
    pub final_cost: FlopsReport,
}

impl BaselineOutcome {
    /// Relative parameter reduction.
    pub fn pruning_ratio(&self) -> f64 {
        self.final_cost.param_reduction_vs(&self.baseline_cost)
    }

    /// Relative FLOPs reduction.
    pub fn flops_reduction(&self) -> f64 {
        self.final_cost.flops_reduction_vs(&self.baseline_cost)
    }

    /// Accuracy drop (positive = worse than baseline).
    pub fn accuracy_drop(&self) -> f64 {
        self.baseline_accuracy - self.final_accuracy
    }
}

/// Runs `criterion` under the shared schedule, mutating `net` in place.
///
/// # Errors
///
/// Returns [`PruneError::InvalidConfig`] for a degenerate schedule and
/// propagates scoring/surgery/training errors.
pub fn run_baseline(
    criterion: &mut dyn FilterCriterion,
    net: &mut Network,
    train: &Dataset,
    test: &Dataset,
    cfg: &BaselineConfig,
) -> Result<BaselineOutcome, PruneError> {
    if !(cfg.fraction_per_iter > 0.0 && cfg.fraction_per_iter < 1.0) {
        return Err(PruneError::InvalidConfig {
            reason: format!(
                "fraction_per_iter {} must lie in (0,1)",
                cfg.fraction_per_iter
            ),
        });
    }
    if cfg.iterations == 0 || cfg.eval_batch == 0 {
        return Err(PruneError::InvalidConfig {
            reason: "iterations and eval_batch must be non-zero".to_string(),
        });
    }
    let shape = train.images().shape();
    let (in_c, in_h, in_w) = (shape[1], shape[2], shape[3]);
    let baseline_accuracy = evaluate(net, test.images(), test.labels(), cfg.eval_batch)?;
    let baseline_cost = analyze_network(net, in_c, in_h, in_w)?;
    let strategy = PruneStrategy::Percentage {
        fraction: cfg.fraction_per_iter,
    };
    let finetune = TrainConfig {
        regularizer: criterion.train_regularizer(),
        ..cfg.finetune
    };
    for it in 0..cfg.iterations {
        let sites = find_prunable_sites(net);
        let scores = criterion.score(net, &sites, train, cfg.seed.wrapping_add(it as u64))?;
        let selection = select_filters(&scores, &strategy)?;
        if selection.is_empty() {
            break;
        }
        for (si, site) in sites.iter().enumerate() {
            if selection.remove[si].is_empty() {
                continue;
            }
            let keep = selection.keep_for(si, scores.sites[si].scores.len());
            apply_site_pruning(net, site, &keep)?;
        }
        fit(net, train.images(), train.labels(), &finetune)?;
    }
    let final_accuracy = evaluate(net, test.images(), test.labels(), cfg.eval_batch)?;
    let final_cost = analyze_network(net, in_c, in_h, in_w)?;
    Ok(BaselineOutcome {
        method: criterion.name().to_string(),
        baseline_accuracy,
        final_accuracy,
        baseline_cost,
        final_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::L1Criterion;
    use cap_data::{DatasetSpec, SyntheticDataset};
    use cap_nn::layer::{BatchNorm2d, Conv2d, GlobalAvgPool, Linear, Relu};
    use rand::SeedableRng;

    fn quick() -> (Network, SyntheticDataset) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut net = Network::new();
        net.push(Conv2d::new(3, 10, 3, 1, 1, false, &mut rng).unwrap());
        net.push(BatchNorm2d::new(10).unwrap());
        net.push(Relu::new());
        net.push(GlobalAvgPool::new());
        net.push(Linear::new(10, 10, &mut rng).unwrap());
        let data = SyntheticDataset::generate(
            &DatasetSpec::cifar10_like()
                .with_image_size(8)
                .with_counts(8, 2),
        )
        .unwrap();
        (net, data)
    }

    #[test]
    fn schedule_prunes_and_reports() {
        let (mut net, data) = quick();
        let cfg = BaselineConfig {
            fraction_per_iter: 0.2,
            iterations: 2,
            finetune: TrainConfig {
                epochs: 1,
                batch_size: 16,
                ..TrainConfig::default()
            },
            ..BaselineConfig::default()
        };
        let out = run_baseline(
            &mut L1Criterion::new(),
            &mut net,
            data.train(),
            data.test(),
            &cfg,
        )
        .unwrap();
        assert_eq!(out.method, "L1");
        assert!(out.pruning_ratio() > 0.0);
        assert!(out.flops_reduction() > 0.0);
        assert!(out.final_cost.total_params < out.baseline_cost.total_params);
    }

    #[test]
    fn config_validation() {
        let (mut net, data) = quick();
        let bad = BaselineConfig {
            fraction_per_iter: 0.0,
            ..BaselineConfig::default()
        };
        assert!(run_baseline(
            &mut L1Criterion::new(),
            &mut net,
            data.train(),
            data.test(),
            &bad
        )
        .is_err());
        let bad2 = BaselineConfig {
            iterations: 0,
            ..BaselineConfig::default()
        };
        assert!(run_baseline(
            &mut L1Criterion::new(),
            &mut net,
            data.train(),
            data.test(),
            &bad2
        )
        .is_err());
    }
}
