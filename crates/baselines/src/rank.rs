//! Numerical matrix rank via Gaussian elimination with partial pivoting,
//! used by the HRank criterion (the original uses SVD; for rank counting
//! row reduction with a relative tolerance is equivalent and
//! dependency-free).

use cap_tensor::Tensor;

/// Estimates the rank of a `[rows, cols]` matrix.
///
/// The tolerance is relative to the largest absolute entry; an all-zero
/// matrix has rank 0. Non-2-D tensors are treated as a single row.
pub fn matrix_rank(m: &Tensor, rel_tol: f64) -> usize {
    let (rows, cols) = if m.ndim() == 2 {
        (m.dim(0), m.dim(1))
    } else {
        (1, m.numel())
    };
    if rows == 0 || cols == 0 {
        return 0;
    }
    let mut a: Vec<f64> = m.data().iter().map(|&v| f64::from(v)).collect();
    let max_abs = a.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()));
    if max_abs == 0.0 {
        return 0;
    }
    let tol = rel_tol.max(f64::EPSILON) * max_abs;
    let mut rank = 0usize;
    let mut pivot_row = 0usize;
    for col in 0..cols {
        if pivot_row >= rows {
            break;
        }
        // Partial pivot: largest |entry| in this column at/below pivot_row.
        let mut best = pivot_row;
        for r in pivot_row + 1..rows {
            if a[r * cols + col].abs() > a[best * cols + col].abs() {
                best = r;
            }
        }
        if a[best * cols + col].abs() <= tol {
            continue;
        }
        if best != pivot_row {
            for c in 0..cols {
                a.swap(pivot_row * cols + c, best * cols + c);
            }
        }
        let pivot = a[pivot_row * cols + col];
        for r in pivot_row + 1..rows {
            let factor = a[r * cols + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for c in col..cols {
                a[r * cols + c] -= factor * a[pivot_row * cols + c];
            }
        }
        pivot_row += 1;
        rank += 1;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_matrix_has_rank_zero() {
        assert_eq!(matrix_rank(&Tensor::zeros(&[3, 3]), 1e-6), 0);
    }

    #[test]
    fn identity_has_full_rank() {
        let mut m = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            m.set2(i, i, 1.0);
        }
        assert_eq!(matrix_rank(&m, 1e-6), 4);
    }

    #[test]
    fn duplicated_rows_reduce_rank() {
        let m = Tensor::from_vec(
            vec![3, 3],
            vec![1.0, 2.0, 3.0, 2.0, 4.0, 6.0, 0.0, 1.0, 0.0],
        )
        .unwrap();
        assert_eq!(matrix_rank(&m, 1e-6), 2);
    }

    #[test]
    fn rank_one_outer_product() {
        // m[i][j] = u[i]*v[j]
        let u = [1.0f32, -2.0, 0.5];
        let v = [3.0f32, 1.0, 2.0, -1.0];
        let m = Tensor::from_fn(&[3, 4], |k| u[k / 4] * v[k % 4]);
        assert_eq!(matrix_rank(&m, 1e-5), 1);
    }

    #[test]
    fn wide_and_tall_matrices() {
        let wide = Tensor::from_fn(&[2, 5], |i| (i as f32 + 1.0).sin());
        assert!(matrix_rank(&wide, 1e-6) <= 2);
        let tall = Tensor::from_fn(&[5, 2], |i| (i as f32 + 1.0).cos());
        assert!(matrix_rank(&tall, 1e-6) <= 2);
    }
}
