use crate::matrix_rank;
use cap_core::{NetworkScores, PrunableSite, PruneError, SiteKind, SiteScores};
use cap_data::Dataset;
use cap_nn::layer::{Conv2d, Layer};
use cap_nn::{gather_batch, CrossEntropyLoss, Network, Reduction, RegularizerConfig};
use cap_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A filter-importance criterion: assigns every filter at every prunable
/// site a score (higher = more important), and optionally a training
/// regulariser the method relies on.
pub trait FilterCriterion {
    /// Display name used in reports (matches the paper's Fig. 6 legend).
    fn name(&self) -> &str;

    /// Regulariser to apply while (re)training under this method.
    fn train_regularizer(&self) -> RegularizerConfig {
        RegularizerConfig::none()
    }

    /// Scores the filters of `sites`.
    ///
    /// # Errors
    ///
    /// Propagates network/dataset errors from the underlying passes.
    fn score(
        &mut self,
        net: &mut Network,
        sites: &[PrunableSite],
        data: &Dataset,
        seed: u64,
    ) -> Result<NetworkScores, PruneError>;
}

fn empty_scores(net: &Network, sites: &[PrunableSite]) -> Result<Vec<SiteScores>, PruneError> {
    sites
        .iter()
        .map(|s| {
            Ok(SiteScores {
                label: s.label.clone(),
                scores: vec![0.0; s.filters(net)?],
            })
        })
        .collect()
}

/// Per-filter L1 norms of a convolution's weight.
fn per_filter_l1(conv: &Conv2d) -> Vec<f64> {
    let fsize = conv.in_channels() * conv.kernel() * conv.kernel();
    (0..conv.out_channels())
        .map(|f| {
            conv.weight().data()[f * fsize..(f + 1) * fsize]
                .iter()
                .map(|&v| f64::from(v.abs()))
                .sum()
        })
        .collect()
}

/// Per-filter L2 norms of a convolution's weight.
fn per_filter_l2(conv: &Conv2d) -> Vec<f64> {
    let fsize = conv.in_channels() * conv.kernel() * conv.kernel();
    (0..conv.out_channels())
        .map(|f| {
            conv.weight().data()[f * fsize..(f + 1) * fsize]
                .iter()
                .map(|&v| f64::from(v) * f64::from(v))
                .sum::<f64>()
                .sqrt()
        })
        .collect()
}

/// Per-input-channel L2 norms of a convolution's weight (the consumer
/// side of a dependency group).
fn per_input_channel_l2(conv: &Conv2d) -> Vec<f64> {
    let (out_c, in_c, k) = (conv.out_channels(), conv.in_channels(), conv.kernel());
    let plane = k * k;
    let mut acc = vec![0.0f64; in_c];
    #[allow(clippy::needless_range_loop)] // c also computes the weight offset
    for f in 0..out_c {
        for c in 0..in_c {
            let base = (f * in_c + c) * plane;
            for &v in &conv.weight().data()[base..base + plane] {
                acc[c] += f64::from(v) * f64::from(v);
            }
        }
    }
    acc.into_iter().map(f64::sqrt).collect()
}

/// Draws a deterministic mixed-class batch of `n` training images.
fn mixed_batch(data: &Dataset, n: usize, seed: u64) -> Result<(Tensor, Vec<usize>), PruneError> {
    let mut idx: Vec<usize> = (0..data.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    idx.truncate(n.clamp(1, data.len()));
    let images = gather_batch(data.images(), &idx)?;
    let labels = idx.iter().map(|&i| data.labels()[i]).collect();
    Ok((images, labels))
}

/// Runs one forward(+backward) pass with activation recording enabled,
/// leaving recorded outputs (and gradients, when `backward` is true) on
/// every convolution.
fn recording_pass(
    net: &mut Network,
    images: &Tensor,
    labels: &[usize],
    backward: bool,
) -> Result<(), PruneError> {
    net.set_record_activations(true);

    (|| -> Result<(), PruneError> {
        let logits = net.forward(images, false)?;
        if backward {
            let loss = CrossEntropyLoss::new(Reduction::Sum).forward(&logits, labels)?;
            net.zero_grad();
            net.backward(&loss.grad)?;
        }
        Ok(())
    })()
}

/// L1-norm pruning (Li et al., "Pruning Filters for Efficient ConvNets",
/// the paper's \[23\]): importance = per-filter weight L1 norm.
#[derive(Debug, Clone, Copy, Default)]
pub struct L1Criterion;

impl L1Criterion {
    /// Creates the criterion.
    pub fn new() -> Self {
        L1Criterion
    }
}

impl FilterCriterion for L1Criterion {
    fn name(&self) -> &str {
        "L1"
    }

    fn score(
        &mut self,
        net: &mut Network,
        sites: &[PrunableSite],
        data: &Dataset,
        _seed: u64,
    ) -> Result<NetworkScores, PruneError> {
        let mut out = empty_scores(net, sites)?;
        for (site, acc) in sites.iter().zip(out.iter_mut()) {
            acc.scores = per_filter_l1(site.conv(net)?);
        }
        Ok(NetworkScores {
            sites: out,
            classes: data.classes(),
        })
    }
}

/// Scaling-factor pruning (SSS, Huang & Wang, the paper's \[27\]; same
/// family as Network Slimming): importance = |γ| of the batch-norm scale
/// that gates the filter. Training under this criterion adds L1 pressure
/// on the weights as a stand-in for the original's sparsity training on
/// the scaling factors.
#[derive(Debug, Clone, Copy, Default)]
pub struct SssCriterion;

impl SssCriterion {
    /// Creates the criterion.
    pub fn new() -> Self {
        SssCriterion
    }
}

impl FilterCriterion for SssCriterion {
    fn name(&self) -> &str {
        "SSS"
    }

    fn train_regularizer(&self) -> RegularizerConfig {
        RegularizerConfig::l1_only()
    }

    fn score(
        &mut self,
        net: &mut Network,
        sites: &[PrunableSite],
        data: &Dataset,
        _seed: u64,
    ) -> Result<NetworkScores, PruneError> {
        let mut out = empty_scores(net, sites)?;
        for (site, acc) in sites.iter().zip(out.iter_mut()) {
            let gamma: Option<Vec<f64>> = match site.kind {
                SiteKind::Sequential { conv_idx } => match net.layers().get(conv_idx + 1) {
                    Some(Layer::BatchNorm(bn)) => Some(
                        bn.gamma()
                            .data()
                            .iter()
                            .map(|&g| f64::from(g.abs()))
                            .collect(),
                    ),
                    _ => None,
                },
                SiteKind::ResidualInternal { block_idx } => net
                    .layers()
                    .get(block_idx)
                    .and_then(Layer::as_residual)
                    .map(|b| {
                        b.bn1()
                            .gamma()
                            .data()
                            .iter()
                            .map(|&g| f64::from(g.abs()))
                            .collect()
                    }),
            };
            // Fall back to weight norms when no batch-norm gates the site.
            acc.scores = match gamma {
                Some(g) => g,
                None => per_filter_l2(site.conv(net)?),
            };
        }
        Ok(NetworkScores {
            sites: out,
            classes: data.classes(),
        })
    }
}

/// HRank (Lin et al., the paper's \[19\]): importance = average rank of
/// the feature maps the filter generates over a batch of images.
#[derive(Debug, Clone, Copy)]
pub struct HRankCriterion {
    batch: usize,
}

impl HRankCriterion {
    /// Creates the criterion; `batch` images are used per evaluation.
    pub fn new(batch: usize) -> Self {
        HRankCriterion {
            batch: batch.max(1),
        }
    }
}

impl FilterCriterion for HRankCriterion {
    fn name(&self) -> &str {
        "HRank"
    }

    fn score(
        &mut self,
        net: &mut Network,
        sites: &[PrunableSite],
        data: &Dataset,
        seed: u64,
    ) -> Result<NetworkScores, PruneError> {
        let (images, labels) = mixed_batch(data, self.batch, seed)?;
        let pass = recording_pass(net, &images, &labels, false);
        let result = pass.and_then(|()| {
            let mut out = empty_scores(net, sites)?;
            for (site, acc) in sites.iter().zip(out.iter_mut()) {
                let conv = site.conv(net)?;
                let a = conv
                    .recorded_output()
                    .ok_or_else(|| PruneError::UnsupportedTopology {
                        reason: format!("site {} recorded no activations", site.label),
                    })?;
                let (m, filters, oh, ow) = (a.dim(0), a.dim(1), a.dim(2), a.dim(3));
                for f in 0..filters {
                    let mut total_rank = 0usize;
                    for s in 0..m {
                        let base = (s * filters + f) * oh * ow;
                        let fm = Tensor::from_vec(
                            vec![oh, ow],
                            a.data()[base..base + oh * ow].to_vec(),
                        )?;
                        total_rank += matrix_rank(&fm, 1e-4);
                    }
                    acc.scores[f] = total_rank as f64 / m as f64;
                }
            }
            Ok(NetworkScores {
                sites: out,
                classes: data.classes(),
            })
        });
        net.set_record_activations(false);
        net.zero_grad();
        result
    }
}

/// TPP (trainability-preserving pruning, Wang & Fu, the paper's \[18\]),
/// simplified to its scoring core on this substrate: importance = L2 norm
/// of the per-filter weight·gradient product, which preserves the filters
/// that carry training signal.
#[derive(Debug, Clone, Copy)]
pub struct TppCriterion {
    batch: usize,
}

impl TppCriterion {
    /// Creates the criterion; `batch` images drive the gradient pass.
    pub fn new(batch: usize) -> Self {
        TppCriterion {
            batch: batch.max(1),
        }
    }
}

impl FilterCriterion for TppCriterion {
    fn name(&self) -> &str {
        "TPP"
    }

    fn score(
        &mut self,
        net: &mut Network,
        sites: &[PrunableSite],
        data: &Dataset,
        seed: u64,
    ) -> Result<NetworkScores, PruneError> {
        let (images, labels) = mixed_batch(data, self.batch, seed)?;
        let pass = recording_pass(net, &images, &labels, true);
        let result = pass.and_then(|()| {
            let mut out = empty_scores(net, sites)?;
            for (site, acc) in sites.iter().zip(out.iter_mut()) {
                let conv = site.conv(net)?;
                let fsize = conv.in_channels() * conv.kernel() * conv.kernel();
                for f in 0..conv.out_channels() {
                    let w = &conv.weight().data()[f * fsize..(f + 1) * fsize];
                    let g = &conv.grad_weight().data()[f * fsize..(f + 1) * fsize];
                    let score: f64 = w
                        .iter()
                        .zip(g.iter())
                        .map(|(&wi, &gi)| {
                            let p = f64::from(wi) * f64::from(gi);
                            p * p
                        })
                        .sum::<f64>()
                        .sqrt();
                    acc.scores[f] = score;
                }
            }
            Ok(NetworkScores {
                sites: out,
                classes: data.classes(),
            })
        });
        net.set_record_activations(false);
        net.zero_grad();
        result
    }
}

/// OrthConv (Wang et al., the paper's \[31\]): train with the kernel
/// orthogonality regulariser, prune by filter magnitude.
#[derive(Debug, Clone, Copy, Default)]
pub struct OrthConvCriterion;

impl OrthConvCriterion {
    /// Creates the criterion.
    pub fn new() -> Self {
        OrthConvCriterion
    }
}

impl FilterCriterion for OrthConvCriterion {
    fn name(&self) -> &str {
        "OrthConv"
    }

    fn train_regularizer(&self) -> RegularizerConfig {
        RegularizerConfig::orth_only()
    }

    fn score(
        &mut self,
        net: &mut Network,
        sites: &[PrunableSite],
        data: &Dataset,
        _seed: u64,
    ) -> Result<NetworkScores, PruneError> {
        let mut out = empty_scores(net, sites)?;
        for (site, acc) in sites.iter().zip(out.iter_mut()) {
            acc.scores = per_filter_l2(site.conv(net)?);
        }
        Ok(NetworkScores {
            sites: out,
            classes: data.classes(),
        })
    }
}

/// DepGraph (Fang et al., the paper's \[13\]): group importance across
/// all layers structurally coupled to a filter. With `full_grouping` the
/// producer's filter norm is combined with the consumer's input-channel
/// norm (and, inside residual blocks, conv2's input slice); with
/// `no_grouping` only the producer counts.
#[derive(Debug, Clone, Copy)]
pub struct DepGraphCriterion {
    full: bool,
}

impl DepGraphCriterion {
    /// The full-grouping variant.
    pub fn full_grouping() -> Self {
        DepGraphCriterion { full: true }
    }

    /// The no-grouping variant.
    pub fn no_grouping() -> Self {
        DepGraphCriterion { full: false }
    }
}

impl FilterCriterion for DepGraphCriterion {
    fn name(&self) -> &str {
        if self.full {
            "DepGraph-full"
        } else {
            "DepGraph-no"
        }
    }

    fn score(
        &mut self,
        net: &mut Network,
        sites: &[PrunableSite],
        data: &Dataset,
        _seed: u64,
    ) -> Result<NetworkScores, PruneError> {
        let mut out = empty_scores(net, sites)?;
        for (site, acc) in sites.iter().zip(out.iter_mut()) {
            let producer = per_filter_l2(site.conv(net)?);
            let consumer: Option<Vec<f64>> = if self.full {
                match site.kind {
                    SiteKind::Sequential { conv_idx } => {
                        // Find the consumer conv or linear.
                        net.layers()[conv_idx + 1..].iter().find_map(|l| match l {
                            Layer::Conv(c) => Some(per_input_channel_l2(c)),
                            Layer::Linear(lin) => {
                                let (o, i) = (lin.out_features(), lin.in_features());
                                let mut acc = vec![0.0f64; i];
                                for r in 0..o {
                                    for (cidx, a) in acc.iter_mut().enumerate() {
                                        let v = f64::from(lin.weight().data()[r * i + cidx]);
                                        *a += v * v;
                                    }
                                }
                                Some(acc.into_iter().map(f64::sqrt).collect())
                            }
                            Layer::Residual(_) => None,
                            _ => None,
                        })
                    }
                    SiteKind::ResidualInternal { block_idx } => net
                        .layers()
                        .get(block_idx)
                        .and_then(Layer::as_residual)
                        .map(|b| per_input_channel_l2(b.conv2())),
                }
            } else {
                None
            };
            acc.scores = match consumer {
                Some(cons) if cons.len() == producer.len() => producer
                    .iter()
                    .zip(cons.iter())
                    .map(|(&p, &c)| (p * p + c * c).sqrt())
                    .collect(),
                _ => producer,
            };
        }
        Ok(NetworkScores {
            sites: out,
            classes: data.classes(),
        })
    }
}

/// FPGM (He et al., "Filter Pruning via Geometric Median", CVPR 2019):
/// a redundancy criterion — the importance of a filter is its total
/// distance to the other filters of the same layer. Filters near the
/// geometric median are replaceable by the others and score lowest.
/// Included as an extra reference point beyond the paper's comparison
/// set: it removes *redundant* filters rather than *unimportant* ones.
#[derive(Debug, Clone, Copy, Default)]
pub struct FpgmCriterion;

impl FpgmCriterion {
    /// Creates the criterion.
    pub fn new() -> Self {
        FpgmCriterion
    }
}

impl FilterCriterion for FpgmCriterion {
    fn name(&self) -> &str {
        "FPGM"
    }

    fn score(
        &mut self,
        net: &mut Network,
        sites: &[PrunableSite],
        data: &Dataset,
        _seed: u64,
    ) -> Result<NetworkScores, PruneError> {
        let mut out = empty_scores(net, sites)?;
        for (site, acc) in sites.iter().zip(out.iter_mut()) {
            let conv = site.conv(net)?;
            let fsize = conv.in_channels() * conv.kernel() * conv.kernel();
            let filters = conv.out_channels();
            let w = conv.weight().data();
            for f in 0..filters {
                let wf = &w[f * fsize..(f + 1) * fsize];
                let mut total = 0.0f64;
                for other in 0..filters {
                    if other == f {
                        continue;
                    }
                    let wo = &w[other * fsize..(other + 1) * fsize];
                    let d2: f64 = wf
                        .iter()
                        .zip(wo.iter())
                        .map(|(&a, &b)| {
                            let d = f64::from(a) - f64::from(b);
                            d * d
                        })
                        .sum();
                    total += d2.sqrt();
                }
                acc.scores[f] = total;
            }
        }
        Ok(NetworkScores {
            sites: out,
            classes: data.classes(),
        })
    }
}

/// Class-agnostic Taylor pruning (Molchanov et al., the paper's \[25\]):
/// importance = mean `|a·∂L/∂a|` over a mixed-class batch, aggregated
/// over the feature map. This is the paper's own score *without* the
/// class dimension — the ablation that isolates what class-awareness
/// adds.
#[derive(Debug, Clone, Copy)]
pub struct TaylorCriterion {
    batch: usize,
}

impl TaylorCriterion {
    /// Creates the criterion; `batch` mixed-class images are used.
    pub fn new(batch: usize) -> Self {
        TaylorCriterion {
            batch: batch.max(1),
        }
    }
}

impl FilterCriterion for TaylorCriterion {
    fn name(&self) -> &str {
        "Taylor"
    }

    fn score(
        &mut self,
        net: &mut Network,
        sites: &[PrunableSite],
        data: &Dataset,
        seed: u64,
    ) -> Result<NetworkScores, PruneError> {
        let (images, labels) = mixed_batch(data, self.batch, seed)?;
        let pass = recording_pass(net, &images, &labels, true);
        let result = pass.and_then(|()| {
            let mut out = empty_scores(net, sites)?;
            for (site, acc) in sites.iter().zip(out.iter_mut()) {
                let conv = site.conv(net)?;
                let (a, g) = match (conv.recorded_output(), conv.recorded_output_grad()) {
                    (Some(a), Some(g)) => (a, g),
                    _ => {
                        return Err(PruneError::UnsupportedTopology {
                            reason: format!("site {} recorded nothing", site.label),
                        })
                    }
                };
                let (m, filters) = (a.dim(0), a.dim(1));
                let plane = a.dim(2) * a.dim(3);
                for f in 0..filters {
                    let mut sum = 0.0f64;
                    for s in 0..m {
                        let base = (s * filters + f) * plane;
                        for i in base..base + plane {
                            sum += f64::from((a.data()[i] * g.data()[i]).abs());
                        }
                    }
                    acc.scores[f] = sum / (m * plane) as f64;
                }
            }
            Ok(NetworkScores {
                sites: out,
                classes: data.classes(),
            })
        });
        net.set_record_activations(false);
        net.zero_grad();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_core::find_prunable_sites;
    use cap_data::{DatasetSpec, SyntheticDataset};
    use cap_nn::layer::{BatchNorm2d, GlobalAvgPool, Linear, Relu, ResidualBlock};

    fn data() -> SyntheticDataset {
        SyntheticDataset::generate(
            &DatasetSpec::cifar10_like()
                .with_image_size(8)
                .with_counts(8, 2),
        )
        .unwrap()
    }

    fn net() -> Network {
        let mut rng = StdRng::seed_from_u64(5);
        let mut n = Network::new();
        n.push(Conv2d::new(3, 6, 3, 1, 1, false, &mut rng).unwrap());
        n.push(BatchNorm2d::new(6).unwrap());
        n.push(Relu::new());
        n.push(Conv2d::new(6, 8, 3, 1, 1, false, &mut rng).unwrap());
        n.push(BatchNorm2d::new(8).unwrap());
        n.push(Relu::new());
        n.push(GlobalAvgPool::new());
        n.push(Linear::new(8, 10, &mut rng).unwrap());
        n
    }

    fn resnet() -> Network {
        let mut rng = StdRng::seed_from_u64(6);
        let mut n = Network::new();
        n.push(Conv2d::new(3, 6, 3, 1, 1, false, &mut rng).unwrap());
        n.push(BatchNorm2d::new(6).unwrap());
        n.push(Relu::new());
        n.push(ResidualBlock::new(6, 6, 1, &mut rng).unwrap());
        n.push(GlobalAvgPool::new());
        n.push(Linear::new(6, 10, &mut rng).unwrap());
        n
    }

    fn check_scores(c: &mut dyn FilterCriterion, net: &mut Network) {
        let d = data();
        let sites = find_prunable_sites(net);
        let scores = c.score(net, &sites, d.train(), 42).unwrap();
        assert_eq!(scores.sites.len(), sites.len());
        for (site, s) in sites.iter().zip(&scores.sites) {
            assert_eq!(s.scores.len(), site.filters(net).unwrap());
            assert!(s.scores.iter().all(|v| v.is_finite() && *v >= 0.0));
        }
        // Deterministic.
        let again = c.score(net, &sites, d.train(), 42).unwrap();
        assert_eq!(scores, again);
    }

    #[test]
    fn all_criteria_produce_valid_scores_on_sequential_net() {
        for c in crate::standard_criteria().iter_mut() {
            let mut n = net();
            check_scores(c.as_mut(), &mut n);
        }
    }

    #[test]
    fn all_criteria_produce_valid_scores_on_residual_net() {
        for c in crate::standard_criteria().iter_mut() {
            let mut n = resnet();
            check_scores(c.as_mut(), &mut n);
        }
    }

    #[test]
    fn l1_matches_manual_norms() {
        let mut n = net();
        let d = data();
        let sites = find_prunable_sites(&n);
        let scores = L1Criterion::new()
            .score(&mut n, &sites, d.train(), 0)
            .unwrap();
        let conv = sites[0].conv(&n).unwrap();
        let manual: f64 = conv.weight().data()[..3 * 9]
            .iter()
            .map(|&v| f64::from(v.abs()))
            .sum();
        assert!((scores.sites[0].scores[0] - manual).abs() < 1e-9);
    }

    #[test]
    fn zeroed_filter_scores_lowest_everywhere() {
        let d = data();
        for c in crate::standard_criteria().iter_mut() {
            let mut n = net();
            if let Some(conv) = n.layers_mut()[0].as_conv_mut() {
                let fsize = 3 * 9;
                for v in &mut conv.weight_mut().data_mut()[2 * fsize..3 * fsize] {
                    *v = 0.0;
                }
            }
            let sites = find_prunable_sites(&n);
            let scores = c.score(&mut n, &sites, d.train(), 7).unwrap();
            let s = &scores.sites[0].scores;
            let min = s.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(
                s[2] <= min + 1e-9 || s[2] < 1e-6,
                "{}: zeroed filter scored {} (min {min})",
                c.name(),
                s[2]
            );
        }
    }

    #[test]
    fn sss_reads_bn_gamma() {
        let mut n = net();
        if let Layer::BatchNorm(bn) = &mut n.layers_mut()[1] {
            bn.gamma_mut()
                .data_mut()
                .copy_from_slice(&[0.1, -0.9, 0.5, 0.0, 2.0, 1.0]);
        }
        let d = data();
        let sites = find_prunable_sites(&n);
        let scores = SssCriterion::new()
            .score(&mut n, &sites, d.train(), 0)
            .unwrap();
        assert_eq!(
            scores.sites[0].scores,
            [0.1f64, 0.9, 0.5, 0.0, 2.0, 1.0]
                .iter()
                .map(|v| (*v as f32) as f64)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn depgraph_full_scores_at_least_no_grouping() {
        let mut n = net();
        let d = data();
        let sites = find_prunable_sites(&n);
        let full = DepGraphCriterion::full_grouping()
            .score(&mut n, &sites, d.train(), 0)
            .unwrap();
        let nog = DepGraphCriterion::no_grouping()
            .score(&mut n, &sites, d.train(), 0)
            .unwrap();
        for (f, g) in full.iter_scores().zip(nog.iter_scores()) {
            assert!(f.2 >= g.2 - 1e-9);
        }
    }
}
