#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

//! `cap-par` — a zero-dependency scoped thread pool with a determinism
//! contract, sized for the matmul/conv/training hot paths of this
//! workspace.
//!
//! # Model
//!
//! A single process-global [`Pool`] owns `threads() - 1` worker threads
//! fed from one shared FIFO injector; the thread that submits a batch
//! participates in draining it ("work-stealing-lite": no per-worker
//! deques, but no thread ever blocks while runnable tasks exist).
//! Batches are scoped — [`Pool::run`] does not return until every task
//! of the batch has finished, so tasks may borrow from the caller's
//! stack.
//!
//! # Determinism contract
//!
//! Every helper hands out **deterministic, index-ordered chunks**: which
//! output range a task owns depends only on the input length and the
//! chunk size, never on scheduling. Callers keep all floating-point
//! *reductions* in a fixed order (each output element is computed by
//! exactly one task, or partial results are combined serially in
//! ascending index order). Under that discipline, results are **bitwise
//! identical for every thread count**, and `CAP_THREADS=1` reproduces
//! the plain serial loops exactly.
//!
//! # Sizing
//!
//! The pool is sized on first use from the `CAP_THREADS` environment
//! variable, falling back to [`std::thread::available_parallelism`].
//! [`set_threads`] overrides the target at runtime (useful for `--threads`
//! CLI flags and for A/B benchmarks in one process); raising it beyond
//! the spawned worker count only increases task granularity, which is
//! harmless because of the determinism contract.
//!
//! # Nesting
//!
//! A parallel region that starts inside another parallel region runs
//! inline on the current thread. This keeps the pool deadlock-free
//! without continuation stealing and avoids oversubscription when e.g.
//! a per-sample-parallel convolution calls the row-parallel matmul.
//!
//! # Telemetry & watchdog
//!
//! When `cap-obs` instrumentation is enabled, the pool publishes live
//! metrics: per-worker busy-time and task-count gauges
//! (`par.worker.<i>.busy_seconds`, `par.worker.<i>.tasks_total`),
//! queue-depth and batch counters (`par.queue_depth`,
//! `par.batches_total`, `par.tasks_submitted_total`,
//! `par.caller_tasks_total`), and the pool size (`par.threads`) — all
//! scrapeable from the `/metrics` endpoint of `cap_obs::serve`. A
//! watchdog flags batches that exceed a configurable deadline
//! (`CAP_PAR_DEADLINE_MS` or [`set_batch_deadline_ms`]): it emits a
//! `par_stall` event, bumps `par.watchdog_fired_total`, and dumps the
//! flight recorder to `CAP_FLIGHT_DUMP` (default
//! `cap-flight-stall.trace.json`) so the stall has an openable
//! timeline. The watchdog only *observes* — it never cancels or
//! reorders tasks — so the determinism contract below is unaffected,
//! and with no deadline configured the cost is one atomic load per
//! batch.
//!
//! # Example
//!
//! ```
//! let mut out = vec![0u64; 1000];
//! cap_par::parallel_chunks_mut(&mut out, 100, |chunk_idx, chunk| {
//!     for (i, v) in chunk.iter_mut().enumerate() {
//!         *v = (chunk_idx * 100 + i) as u64 * 2;
//!     }
//! });
//! assert_eq!(out[777], 1554);
//! ```

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A unit of work borrowed from the submitting scope. [`Pool::run`]
/// guarantees the task does not outlive the call, which is what makes
/// the non-`'static` borrow sound.
pub type ScopedTask<'scope> = Box<dyn FnOnce() + Send + 'scope>;

type Job = Box<dyn FnOnce() + Send + 'static>;
type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

thread_local! {
    /// True on pool worker threads (everything they run is already
    /// inside a parallel region).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Nesting depth of [`Pool::run`] dispatches on this (non-worker)
    /// thread.
    static RUN_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Target thread count; 0 means "not yet resolved from the environment".
static CURRENT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Batch watchdog deadline in ms; 0 = not yet resolved from the
/// environment, [`DEADLINE_NONE`] = no deadline.
static DEADLINE_MS: AtomicU64 = AtomicU64::new(0);
const DEADLINE_NONE: u64 = u64::MAX;

static GLOBAL: OnceLock<Pool> = OnceLock::new();

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("CAP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The current target thread count (`CAP_THREADS`, else the machine's
/// available parallelism, else the last [`set_threads`] override).
pub fn threads() -> usize {
    match CURRENT_THREADS.load(Ordering::Relaxed) {
        0 => {
            let n = default_threads();
            CURRENT_THREADS.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Overrides the target thread count (clamped to at least 1). With `1`,
/// every helper in this crate degenerates to plain serial loops on the
/// calling thread.
pub fn set_threads(n: usize) {
    CURRENT_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// The watchdog deadline for one parallel batch, resolved once from
/// `CAP_PAR_DEADLINE_MS` (unset, unparseable or `0` disables it), or
/// the last [`set_batch_deadline_ms`] override.
pub fn batch_deadline_ms() -> Option<u64> {
    match DEADLINE_MS.load(Ordering::Relaxed) {
        0 => {
            let ms = std::env::var("CAP_PAR_DEADLINE_MS")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .filter(|&ms| ms > 0 && ms < DEADLINE_NONE)
                .unwrap_or(DEADLINE_NONE);
            DEADLINE_MS.store(ms, Ordering::Relaxed);
            (ms != DEADLINE_NONE).then_some(ms)
        }
        DEADLINE_NONE => None,
        ms => Some(ms),
    }
}

/// Overrides the watchdog deadline at runtime; `None` disables it.
pub fn set_batch_deadline_ms(ms: Option<u64>) {
    DEADLINE_MS.store(
        match ms {
            Some(ms) if ms > 0 && ms < DEADLINE_NONE => ms,
            _ => DEADLINE_NONE,
        },
        Ordering::Relaxed,
    );
}

/// Whether the current thread is already inside a parallel region (a
/// pool worker, or a caller thread that is dispatching/draining a
/// batch). Parallel helpers called here run inline.
pub fn in_parallel() -> bool {
    IN_WORKER.with(Cell::get) || RUN_DEPTH.with(Cell::get) > 0
}

/// How many ways a parallel region started *now* would actually split:
/// [`threads`], or 1 when already inside a parallel region. Use this to
/// size chunk counts and scratch buffers.
pub fn effective_parallelism() -> usize {
    if in_parallel() {
        1
    } else {
        threads()
    }
}

/// Completion latch for one submitted batch; also carries the first
/// panic payload so the submitting thread can resume it.
struct Latch {
    state: Mutex<LatchState>,
    cv: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<PanicPayload>,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            state: Mutex::new(LatchState {
                remaining: count,
                panic: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn complete(&self, panic: Option<PanicPayload>) {
        let mut st = self.state.lock().unwrap();
        if st.panic.is_none() {
            if let Some(p) = panic {
                st.panic = Some(p);
            }
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            self.cv.notify_all();
        }
    }

    fn done(&self) -> bool {
        self.state.lock().unwrap().remaining == 0
    }

    fn wait(&self) {
        let mut st = self.state.lock().unwrap();
        while st.remaining > 0 {
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Waits until the batch completes or `deadline` passes; returns
    /// whether the batch completed in time.
    fn wait_until(&self, deadline: Instant) -> bool {
        let mut st = self.state.lock().unwrap();
        while st.remaining > 0 {
            let now = cap_obs::clock::now();
            if now >= deadline {
                return false;
            }
            let (guard, _timeout) = self.cv.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
        true
    }

    fn take_panic(&self) -> Option<PanicPayload> {
        self.state.lock().unwrap().panic.take()
    }
}

struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    work: Condvar,
}

/// A scoped thread pool. Most callers want the process-global
/// [`Pool::global`] through the free helpers ([`run_tasks`],
/// [`parallel_chunks_mut`], [`parallel_map`]); constructing private
/// pools is supported for tests.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Creates a pool that splits work `threads` ways: `threads - 1`
    /// workers plus the submitting thread.
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let workers = threads.max(1) - 1;
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cap-par-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn cap-par worker")
            })
            .collect();
        Pool { shared, handles }
    }

    /// The process-global pool, created on first use and sized from
    /// [`threads`] at that moment.
    pub fn global() -> &'static Pool {
        GLOBAL.get_or_init(|| Pool::new(threads()))
    }

    /// Number of worker threads (the submitting thread is an extra
    /// participant on top of this).
    pub fn worker_count(&self) -> usize {
        self.handles.len()
    }

    /// Runs a batch of scoped tasks and returns when all of them have
    /// finished. Tasks run serially inline when the batch has one task,
    /// the pool has no workers, the target thread count is 1, or the
    /// caller is already inside a parallel region.
    ///
    /// # Panics
    ///
    /// If a task panics, the batch still runs to completion and the
    /// first payload is resumed on the calling thread.
    pub fn run<'scope>(&self, tasks: Vec<ScopedTask<'scope>>) {
        let count = tasks.len();
        if count == 0 {
            return;
        }
        if count == 1 || self.handles.is_empty() || threads() == 1 || in_parallel() {
            for task in tasks {
                task();
            }
            return;
        }
        let latch = Arc::new(Latch::new(count));
        let queue_depth;
        {
            let mut st = self.shared.state.lock().unwrap();
            for task in tasks {
                // SAFETY: `run` blocks until the latch has been signalled
                // by every task, so no task outlives the 'scope borrows it
                // captures; the transmute only erases that lifetime so the
                // task can sit in the 'static queue.
                let task: Job = unsafe { std::mem::transmute::<ScopedTask<'scope>, Job>(task) };
                let latch = Arc::clone(&latch);
                st.queue.push_back(Box::new(move || {
                    // The fault hook runs INSIDE the catch_unwind so an
                    // injected panic takes the same recovery path as a
                    // real task panic: latch completion, batch drain,
                    // resume_unwind at the submitter. Outside it, the
                    // worker would die without completing the latch and
                    // the batch would deadlock.
                    let outcome = catch_unwind(AssertUnwindSafe(move || {
                        cap_faults::maybe_panic_task();
                        task();
                    }));
                    latch.complete(outcome.err());
                }));
            }
            queue_depth = st.queue.len();
        }
        self.shared.work.notify_all();
        if cap_obs::enabled() {
            // Queue depth is sampled at submit time (post-push peak);
            // the counters make submit rate and batch sizes visible on
            // /metrics without touching the drain hot path.
            cap_obs::gauge_set("par.queue_depth", queue_depth as f64);
            cap_obs::gauge_set("par.threads", threads() as f64);
            cap_obs::counter_add("par.batches_total", 1);
            cap_obs::counter_add("par.tasks_submitted_total", count as u64);
        }
        let deadline_ms = batch_deadline_ms();
        let batch_start = deadline_ms.map(|_| cap_obs::clock::now());
        // Participate: drain jobs until this batch is complete. The FIFO
        // may interleave jobs of concurrent batches; helping them is
        // harmless and keeps every runnable task moving.
        RUN_DEPTH.with(|d| d.set(d.get() + 1));
        loop {
            if latch.done() {
                break;
            }
            let job = self.shared.state.lock().unwrap().queue.pop_front();
            match job {
                Some(job) => {
                    job();
                    cap_obs::counter_add("par.caller_tasks_total", 1);
                }
                None => {
                    match (deadline_ms, batch_start) {
                        (Some(ms), Some(started)) => {
                            let deadline = Duration::from_millis(ms);
                            if !latch.wait_until(started + deadline) {
                                fire_watchdog(count, deadline, started.elapsed());
                                latch.wait();
                            }
                        }
                        _ => latch.wait(),
                    }
                    break;
                }
            }
        }
        RUN_DEPTH.with(|d| d.set(d.get() - 1));
        if let Some(payload) = latch.take_panic() {
            resume_unwind(payload);
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.state.lock().unwrap().shutdown = true;
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    IN_WORKER.with(|w| w.set(true));
    // Make this worker's span stack visible to the sampling profiler
    // (cap-obs capprof); a no-op unless profiling is ever enabled.
    cap_obs::prof::register_current_thread();
    // Per-worker telemetry: names are built once, counters accumulate
    // locally, and the registry is touched only on the (instrumented)
    // enabled path — each gauge has exactly one writer, this thread.
    let busy_gauge = format!("par.worker.{index}.busy_seconds");
    let tasks_gauge = format!("par.worker.{index}.tasks_total");
    let mut busy = Duration::ZERO;
    let mut tasks = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break Some(job);
                }
                if st.shutdown {
                    break None;
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        match job {
            Some(job) => {
                if cap_obs::enabled() {
                    let started = cap_obs::clock::now();
                    job();
                    busy += started.elapsed();
                    tasks += 1;
                    cap_obs::gauge_set(&busy_gauge, busy.as_secs_f64());
                    cap_obs::gauge_set(&tasks_gauge, tasks as f64);
                } else {
                    job();
                }
            }
            None => return,
        }
    }
}

/// Handles a batch blowing its watchdog deadline: counts it, emits a
/// `par_stall` event, and dumps the flight recorder (when it is on) so
/// the stall leaves an openable timeline. Purely observational — the
/// batch keeps running and the caller goes back to waiting.
fn fire_watchdog(batch_tasks: usize, deadline: Duration, waited: Duration) {
    cap_obs::counter_add("par.watchdog_fired_total", 1);
    let mut event = cap_obs::Event::new("par_stall")
        .u64("tasks", batch_tasks as u64)
        .f64("deadline_secs", deadline.as_secs_f64())
        .f64("waited_secs", waited.as_secs_f64());
    if cap_obs::flight::enabled() {
        let path = std::env::var("CAP_FLIGHT_DUMP")
            .ok()
            .filter(|p| !p.is_empty())
            .unwrap_or_else(|| "cap-flight-stall.trace.json".to_string());
        match cap_obs::flight::dump_to_file(&path) {
            Ok(()) => event = event.str("flight_dump", path),
            Err(e) => event = event.str("flight_dump_error", e),
        }
    }
    cap_obs::emit(event);
    cap_obs::flush();
}

/// Runs a batch of scoped tasks on the global pool (inline when the
/// batch is trivial or parallelism is unavailable). The global pool is
/// not instantiated for inline execution.
pub fn run_tasks(tasks: Vec<ScopedTask<'_>>) {
    if tasks.len() <= 1 || effective_parallelism() == 1 {
        for task in tasks {
            task();
        }
        return;
    }
    Pool::global().run(tasks);
}

/// Splits `data` into contiguous chunks of `chunk_len` elements (the
/// last chunk may be shorter) and calls `f(chunk_index, chunk)` for each,
/// in parallel. Chunk boundaries depend only on `data.len()` and
/// `chunk_len` — never on the thread count — so exclusive ownership of
/// each output range is deterministic.
pub fn parallel_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    if data.len() <= chunk_len || effective_parallelism() == 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let f = &f;
    let tasks: Vec<ScopedTask<'_>> = data
        .chunks_mut(chunk_len)
        .enumerate()
        .map(|(i, chunk)| Box::new(move || f(i, chunk)) as ScopedTask<'_>)
        .collect();
    Pool::global().run(tasks);
}

/// Evaluates `f(0..n)` in parallel (one task per index — size tasks
/// accordingly) and collects the results in index order.
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
    {
        let f = &f;
        let tasks: Vec<ScopedTask<'_>> = slots
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| Box::new(move || *slot = Some(f(i))) as ScopedTask<'_>)
            .collect();
        run_tasks(tasks);
    }
    slots
        .into_iter()
        .map(|s| s.expect("parallel_map task filled its slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Serialises tests that override the global thread target.
    fn threads_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn chunks_cover_every_index_exactly_once() {
        let _guard = threads_lock();
        set_threads(4);
        let mut data = vec![0u32; 1003];
        parallel_chunks_mut(&mut data, 17, |ci, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v += (ci * 17 + i) as u32 + 1;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u32 + 1, "index {i} touched wrong number of times");
        }
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        let _guard = threads_lock();
        set_threads(3);
        let out = parallel_map(57, |i| i * i);
        assert_eq!(out.len(), 57);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn results_bitwise_identical_across_thread_counts() {
        let _guard = threads_lock();
        let input: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.37).sin()).collect();
        let mut runs = Vec::new();
        for t in [1usize, 4, 7] {
            set_threads(t);
            let mut out = vec![0.0f32; input.len()];
            parallel_chunks_mut(&mut out, 129, |ci, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    let x = input[ci * 129 + i];
                    *v = x.mul_add(1.5, x * x);
                }
            });
            runs.push(out);
        }
        for run in &runs[1..] {
            let same = runs[0]
                .iter()
                .zip(run.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "thread-count changed bits");
        }
        set_threads(default_threads());
    }

    #[test]
    fn nested_regions_run_inline() {
        let _guard = threads_lock();
        set_threads(4);
        let saw_nested_parallel = AtomicU64::new(0);
        let counter = AtomicU64::new(0);
        let tasks: Vec<ScopedTask<'_>> = (0..8)
            .map(|_| {
                Box::new(|| {
                    if effective_parallelism() != 1 || !in_parallel() {
                        saw_nested_parallel.fetch_add(1, Ordering::Relaxed);
                    }
                    // A nested batch must still run (inline).
                    let inner: Vec<ScopedTask<'_>> = (0..3)
                        .map(|_| {
                            Box::new(|| {
                                counter.fetch_add(1, Ordering::Relaxed);
                            }) as ScopedTask<'_>
                        })
                        .collect();
                    run_tasks(inner);
                }) as ScopedTask<'_>
            })
            .collect();
        run_tasks(tasks);
        assert_eq!(saw_nested_parallel.load(Ordering::Relaxed), 0);
        assert_eq!(counter.load(Ordering::Relaxed), 24);
        assert!(!in_parallel(), "caller flag must be restored");
    }

    #[test]
    fn panic_in_task_propagates_after_batch_completes() {
        let _guard = threads_lock();
        set_threads(4);
        let completed = AtomicU64::new(0);
        let completed = &completed;
        let result = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<ScopedTask<'_>> = (0..6)
                .map(|i| {
                    Box::new(move || {
                        if i == 2 {
                            panic!("task 2 exploded");
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                    }) as ScopedTask<'_>
                })
                .collect();
            Pool::global().run(tasks);
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        assert_eq!(
            completed.load(Ordering::Relaxed),
            5,
            "other tasks still ran"
        );
    }

    #[test]
    fn private_pool_drops_cleanly() {
        let pool = Pool::new(3);
        assert_eq!(pool.worker_count(), 2);
        let sum = AtomicU64::new(0);
        let sum = &sum;
        let tasks: Vec<ScopedTask<'_>> = (0..10)
            .map(|i| {
                Box::new(move || {
                    sum.fetch_add(i, Ordering::Relaxed);
                }) as ScopedTask<'_>
            })
            .collect();
        pool.run(tasks);
        assert_eq!(sum.load(Ordering::Relaxed), 45);
        drop(pool); // joins workers
    }

    #[test]
    fn set_threads_one_is_fully_serial() {
        let _guard = threads_lock();
        set_threads(1);
        let main_thread = std::thread::current().id();
        let ran_on = parallel_map(4, |_| std::thread::current().id());
        assert!(ran_on.iter().all(|id| *id == main_thread));
        set_threads(default_threads());
    }
}
