//! Worker-panic recovery, driven by the `panic_worker` fault: an
//! injected panic inside a pooled task must propagate to the submitter
//! like any task panic — after the batch drains, with the pool fully
//! usable afterwards.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

#[test]
fn injected_worker_panic_propagates_and_pool_survives() {
    cap_par::set_threads(4);
    cap_faults::set_spec(Some("panic_worker=3")).unwrap();

    let completed = AtomicU64::new(0);
    let result = catch_unwind(AssertUnwindSafe(|| {
        cap_par::parallel_map(8, |i| {
            completed.fetch_add(1, Ordering::Relaxed);
            i * 2
        })
    }));
    assert!(
        result.is_err(),
        "the injected panic must reach the submitter"
    );
    // One-shot: the injected fault is consumed, not sticky. The pool
    // keeps its workers and the next batch runs normally.
    let out = cap_par::parallel_map(16, |i| i + 1);
    assert_eq!(out, (1..=16).collect::<Vec<_>>());

    cap_faults::set_spec(None).unwrap();
}
