//! Watchdog integration tests: a parallel batch that outlives its
//! deadline must fire `par_stall` exactly while the batch keeps running
//! to completion (observe-only semantics).
//!
//! These tests live in their own integration binary so the global pool,
//! the deadline override, and the cap-obs sink are not shared with the
//! unit-test binary.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Drives one batch that is guaranteed to strand the submitting thread
/// on the latch while a worker still sleeps:
///
/// * the task that lands on a *worker* raises `worker_busy` and sleeps;
/// * the task that lands on the *caller* spins until `worker_busy`
///   (so a worker always ends up owning the sleep) and returns.
///
/// Whichever thread pops which task, the caller reaches the latch wait
/// with a worker mid-sleep, which is the only window the watchdog
/// covers.
fn run_stalling_batch(sleep: Duration) {
    let caller = std::thread::current().id();
    let worker_busy = AtomicBool::new(false);
    let task = |_i| {
        if std::thread::current().id() == caller {
            let patience = std::time::Instant::now();
            while !worker_busy.load(Ordering::Acquire)
                && patience.elapsed() < Duration::from_secs(5)
            {
                std::thread::yield_now();
            }
        } else {
            worker_busy.store(true, Ordering::Release);
            std::thread::sleep(sleep);
        }
    };
    let tasks: Vec<cap_par::ScopedTask<'_>> = (0..2)
        .map(|i| Box::new(move || task(i)) as cap_par::ScopedTask<'_>)
        .collect();
    // A dedicated 2-way pool (1 worker + caller) keeps the test
    // deterministic even on single-core machines, where the global
    // pool would have no workers and run everything inline. `run` also
    // short-circuits when the global target is 1, so lift it for the
    // duration of the batch (callers hold the obs test lock).
    let prev_threads = cap_par::threads();
    cap_par::set_threads(2);
    let pool = cap_par::Pool::new(2);
    pool.run(tasks);
    cap_par::set_threads(prev_threads);
}

#[test]
fn deadline_overrun_fires_par_stall_and_batch_still_completes() {
    let _lock = cap_obs::test_lock();
    cap_obs::reset();
    cap_obs::enable();
    let capture = cap_obs::sink::CaptureSink::new();
    let handle = capture.handle();
    cap_obs::set_sink(Box::new(capture));
    cap_obs::flight::enable();
    let dump = std::env::temp_dir().join(format!("cap-watchdog-{}.trace.json", std::process::id()));
    std::env::set_var("CAP_FLIGHT_DUMP", &dump);

    // A completed span seeds the flight recorder so the mid-batch dump
    // has a timeline to show (the watchdog fires while the batch is
    // still running, before any batch-side span could complete).
    {
        let _s = cap_obs::SpanGuard::enter("pre_batch");
    }
    cap_par::set_batch_deadline_ms(Some(10));
    run_stalling_batch(Duration::from_millis(120));
    cap_par::set_batch_deadline_ms(None);

    let fired = cap_obs::registry()
        .snapshot()
        .into_iter()
        .find_map(|(name, m)| match (name.as_str(), m) {
            ("par.watchdog_fired_total", cap_obs::Metric::Counter(c)) => Some(c),
            _ => None,
        });
    assert_eq!(
        fired,
        Some(1),
        "watchdog must fire exactly once per overrun"
    );
    let lines = handle.lines();
    let stall: Vec<&String> = lines.iter().filter(|l| l.contains("par_stall")).collect();
    assert_eq!(stall.len(), 1, "expected one par_stall event: {lines:?}");
    assert!(stall[0].contains("\"tasks\":2"), "{}", stall[0]);
    assert!(stall[0].contains("deadline_secs"), "{}", stall[0]);

    // The flight recorder was on, so the stall left an openable
    // chrome-trace dump (trace-event array form) next to the event.
    let body = std::fs::read_to_string(&dump).expect("flight dump written");
    assert!(
        body.contains("\"ph\":\"X\""),
        "dump should hold the seeded span: {body}"
    );
    assert!(body.contains("\"pre_batch\""), "{body}");
    cap_obs::json::parse(&body).expect("flight dump parses as JSON");
    let _ = std::fs::remove_file(&dump);
    std::env::remove_var("CAP_FLIGHT_DUMP");

    cap_obs::flight::disable();
    cap_obs::disable();
    cap_obs::reset();
}

#[test]
fn batches_under_deadline_stay_silent() {
    let _lock = cap_obs::test_lock();
    cap_obs::reset();
    cap_obs::enable();
    let capture = cap_obs::sink::CaptureSink::new();
    let handle = capture.handle();
    cap_obs::set_sink(Box::new(capture));

    cap_par::set_batch_deadline_ms(Some(5_000));
    let sums = cap_par::parallel_map(64, |i| i as u64);
    cap_par::set_batch_deadline_ms(None);

    assert_eq!(sums.iter().sum::<u64>(), 64 * 63 / 2);
    assert!(
        handle.lines().iter().all(|l| !l.contains("par_stall")),
        "fast batch must not trip the watchdog"
    );
    cap_obs::disable();
    cap_obs::reset();
}

#[test]
fn deadline_env_and_override_resolution() {
    // Serialise with the other tests: the deadline override is global.
    let _lock = cap_obs::test_lock();
    // Runtime override wins and `None` disables; 0 also disables.
    cap_par::set_batch_deadline_ms(Some(250));
    assert_eq!(cap_par::batch_deadline_ms(), Some(250));
    cap_par::set_batch_deadline_ms(Some(0));
    assert_eq!(cap_par::batch_deadline_ms(), None);
    cap_par::set_batch_deadline_ms(None);
    assert_eq!(cap_par::batch_deadline_ms(), None);
}
