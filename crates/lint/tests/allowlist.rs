//! End-to-end baseline behaviour on a synthetic workspace in a temp
//! dir: suppression at the expected count, failure when a new
//! violation exceeds it, and staleness when entries outlive their
//! violations — plus the `caplint` binary's exit codes for each state.

use std::path::{Path, PathBuf};
use std::process::Command;

struct TempWs {
    root: PathBuf,
}

impl TempWs {
    fn new(tag: &str) -> TempWs {
        let root = std::env::temp_dir().join(format!("caplint-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("crates/demo/src")).expect("mkdir");
        TempWs { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let p = self.root.join(rel);
        std::fs::create_dir_all(p.parent().expect("parent")).expect("mkdir");
        std::fs::write(p, content).expect("write fixture");
    }
}

impl Drop for TempWs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

const ONE_SPAWN: &str = "fn live() {\n    std::thread::spawn(|| 1).join().ok();\n}\n";
const TWO_SPAWNS: &str = "fn live() {\n    std::thread::spawn(|| 1).join().ok();\n    \
                          std::thread::spawn(|| 2).join().ok();\n}\n";
const CLEAN: &str = "fn live() {}\n";

fn check(root: &Path, allow_src: &str) -> cap_lint::Outcome {
    let allow = cap_lint::allow::parse(allow_src).expect("parse allow");
    cap_lint::check_workspace(root, &allow).expect("check")
}

#[test]
fn baseline_suppresses_accepted_violation() {
    let ws = TempWs::new("suppress");
    ws.write("crates/demo/src/lib.rs", ONE_SPAWN);
    let o = check(
        &ws.root,
        "R001 crates/demo/src/lib.rs 1 legacy listener thread\n",
    );
    assert!(o.violations.is_empty(), "{:?}", o.violations);
    assert_eq!(o.suppressed, 1);
    assert!(o.stale.is_empty());
    assert_eq!(o.exit_code(), 0);
}

#[test]
fn new_violation_beyond_baseline_count_fails() {
    let ws = TempWs::new("overrun");
    ws.write("crates/demo/src/lib.rs", TWO_SPAWNS);
    let o = check(
        &ws.root,
        "R001 crates/demo/src/lib.rs 1 legacy listener thread\n",
    );
    // The whole file's hits are reported so the reviewer sees both the
    // accepted and the newly-introduced site.
    assert_eq!(o.violations.len(), 2);
    assert_eq!(o.exit_code(), 1);
}

#[test]
fn stale_entry_is_reported_once_violation_is_fixed() {
    let ws = TempWs::new("stale");
    ws.write("crates/demo/src/lib.rs", CLEAN);
    let o = check(
        &ws.root,
        "R001 crates/demo/src/lib.rs 1 legacy listener thread\n",
    );
    assert!(o.violations.is_empty());
    assert_eq!(o.stale.len(), 1);
    assert_eq!(o.stale[0].found, 0);
    assert_eq!(o.exit_code(), 2);
    let human = cap_lint::render_human(&o);
    assert!(human.contains("stale entry R001"), "{human}");
}

#[test]
fn partially_fixed_file_is_stale_not_failing() {
    let ws = TempWs::new("partial");
    ws.write("crates/demo/src/lib.rs", ONE_SPAWN);
    let o = check(
        &ws.root,
        "R001 crates/demo/src/lib.rs 2 two legacy threads\n",
    );
    assert!(o.violations.is_empty());
    assert_eq!(o.suppressed, 1);
    assert_eq!(o.stale.len(), 1);
    assert_eq!(o.stale[0].found, 1);
    assert_eq!(o.exit_code(), 2);
}

#[test]
fn caplint_binary_exit_codes_and_json() {
    let ws = TempWs::new("cli");
    ws.write("crates/demo/src/lib.rs", ONE_SPAWN);
    let bin = env!("CARGO_BIN_EXE_caplint");

    // No baseline: one violation, exit 1, JSON carries it.
    let out = Command::new(bin)
        .args(["--root", ws.root.to_str().expect("utf8 root"), "--json"])
        .output()
        .expect("run caplint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("\"rule\":\"R001\""), "{stdout}");
    assert!(stdout.contains("\"ok\":false"), "{stdout}");

    // Default caplint.allow in the root is picked up: exit 0.
    ws.write(
        "caplint.allow",
        "R001 crates/demo/src/lib.rs 1 accepted legacy thread\n",
    );
    let out = Command::new(bin)
        .args(["--root", ws.root.to_str().expect("utf8 root")])
        .output()
        .expect("run caplint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // Violation fixed, entry kept: stale, exit 2.
    ws.write("crates/demo/src/lib.rs", CLEAN);
    let out = Command::new(bin)
        .args(["--root", ws.root.to_str().expect("utf8 root")])
        .output()
        .expect("run caplint");
    assert_eq!(
        out.status.code(),
        Some(2),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // Malformed baseline: usage error, exit 3.
    ws.write("caplint.allow", "R001 missing-count-and-justification\n");
    let out = Command::new(bin)
        .args(["--root", ws.root.to_str().expect("utf8 root")])
        .output()
        .expect("run caplint");
    assert_eq!(out.status.code(), Some(3));

    // --list-rules documents every rule.
    let out = Command::new(bin)
        .arg("--list-rules")
        .output()
        .expect("run caplint");
    assert_eq!(out.status.code(), Some(0));
    let listing = String::from_utf8(out.stdout).expect("utf8");
    for code in ["R001", "R002", "R003", "R004", "R005", "R006", "R007"] {
        assert!(listing.contains(code), "missing {code} in --list-rules");
    }
}
