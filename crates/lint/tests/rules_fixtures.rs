//! Table-driven fixture tests: every rule R001–R007 must fire exactly
//! on the lines its `*_violation` fixture marks with `//~ Rnnn` (or
//! `#~ Rnnn` in TOML fixtures) and stay silent on its `*_clean`
//! fixture. A marker may append `@start..end` to also assert the
//! 1-based char-column span the caret snippet underlines, e.g.
//! `//~ R001 @18..31`.

use cap_lint::rules::{check_manifest, check_rust, RuleId, Violation};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// One `~ Rnnn [@start..end]` marker expectation.
#[derive(Debug, PartialEq)]
struct Expect {
    line: usize,
    rule: RuleId,
    span: Option<(usize, usize)>,
}

/// Extracts expectations from `~ Rnnn [@start..end]` markers.
fn expected(src: &str) -> Vec<Expect> {
    let mut out = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let Some(pos) = line.find("~ R") else {
            continue;
        };
        let code = &line[pos + 2..pos + 6];
        let rule = RuleId::parse(code).unwrap_or_else(|| panic!("bad marker {code}"));
        let span = line[pos + 6..].trim().strip_prefix('@').map(|rest| {
            let (a, b) = rest
                .split_once("..")
                .unwrap_or_else(|| panic!("bad span marker {rest:?} (want @start..end)"));
            let parse = |s: &str| {
                s.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|e| panic!("bad span bound {s:?}: {e}"))
            };
            (parse(a), parse(b))
        });
        out.push(Expect {
            line: idx + 1,
            rule,
            span,
        });
    }
    out
}

/// Asserts findings match the fixture's markers: always line + rule,
/// and the column span wherever a marker pins one.
fn assert_matches(got: &[Violation], want: &[Expect], ctx: &str) {
    let got_brief: Vec<(usize, RuleId)> = got.iter().map(|v| (v.line, v.rule)).collect();
    let want_brief: Vec<(usize, RuleId)> = want.iter().map(|e| (e.line, e.rule)).collect();
    assert_eq!(got_brief, want_brief, "{ctx}");
    for (v, e) in got.iter().zip(want) {
        if let Some((start, end)) = e.span {
            assert_eq!(
                (v.col, v.end_col),
                (start, end),
                "{ctx}: span at line {}",
                e.line
            );
        }
    }
}

/// `(fixture file, synthetic workspace-relative path to check under)`.
const RUST_CASES: &[(&str, &str)] = &[
    ("r001_violation.rs", "crates/demo/src/lib.rs"),
    ("r001_clean.rs", "crates/demo/src/lib.rs"),
    ("r002_violation.rs", "crates/demo/src/lib.rs"),
    ("r002_clean.rs", "crates/demo/src/lib.rs"),
    ("r003_violation.rs", "crates/demo/src/lib.rs"),
    ("r003_clean.rs", "crates/demo/src/lib.rs"),
    ("r004_violation.rs", "crates/demo/src/lib.rs"),
    ("r004_clean.rs", "crates/demo/src/lib.rs"),
    ("r005_violation.rs", "crates/nn/src/hot.rs"),
    ("r005_clean.rs", "crates/nn/src/hot.rs"),
    // Under a simd.rs path R011 stays quiet, so the R006 markers are
    // the only expectations; the confinement interplay is covered by
    // the r011 fixtures below and the scoping test.
    ("r006_violation.rs", "crates/demo/src/simd.rs"),
    ("r006_clean.rs", "crates/demo/src/simd.rs"),
    ("r011_violation.rs", "crates/demo/src/lib.rs"),
    ("r011_clean.rs", "crates/demo/src/lib.rs"),
];

#[test]
fn every_rule_fires_exactly_where_marked() {
    for &(name, path) in RUST_CASES {
        let src = fixture(name);
        let got = check_rust(path, &src);
        assert_matches(
            &got,
            &expected(&src),
            &format!("fixture {name} under path {path}"),
        );
    }
}

#[test]
fn manifest_rule_fires_exactly_where_marked() {
    for name in ["r007_violation.toml", "r007_clean.toml"] {
        let src = fixture(name);
        let got = check_manifest("crates/demo/Cargo.toml", &src);
        assert_matches(&got, &expected(&src), &format!("fixture {name}"));
    }
}

/// The same violating sources must be silent when they live where the
/// rule does not apply: rule scoping is part of the contract.
#[test]
fn rule_scoping_exempts_the_designated_homes() {
    let cases: &[(&str, &str)] = &[
        // The pool crate is the one place allowed to spawn threads.
        ("r001_violation.rs", "crates/par/src/lib.rs"),
        // fsx.rs implements atomic_write and must use raw files.
        ("r002_violation.rs", "crates/obs/src/fsx.rs"),
        // The telemetry layer owns the wall clock.
        ("r004_violation.rs", "crates/obs/src/serve.rs"),
        // R005 binds hot-path crates only, not e.g. the bench harness.
        ("r005_violation.rs", "crates/bench/src/lib.rs"),
        // Documented unsafe is at home in simd.rs and the pool crate.
        ("r011_violation.rs", "crates/tensor/src/simd.rs"),
        ("r011_violation.rs", "crates/par/src/worker.rs"),
    ];
    for &(name, path) in cases {
        let src = fixture(name);
        let fired: Vec<_> = check_rust(path, &src)
            .into_iter()
            // The scope fixtures may still trip *other* rules (e.g. the
            // R004 fixture's clock reads are exempt in obs, but nothing
            // else in it violates anything); assert none fire at all.
            .map(|v| (v.rule, v.line))
            .collect();
        assert!(
            fired.is_empty(),
            "fixture {name} under {path} fired {fired:?}"
        );
    }
}

/// Whole-file exemption: integration test dirs, benches, and examples
/// are demo/test code for the content rules.
#[test]
fn test_dirs_are_exempt_for_content_rules() {
    let src = fixture("r001_violation.rs");
    for path in [
        "crates/demo/tests/it.rs",
        "crates/demo/benches/b.rs",
        "examples/demo.rs",
    ] {
        assert!(check_rust(path, &src).is_empty(), "path {path}");
    }
    // ... but R006 still applies in test dirs.
    let src6 = fixture("r006_violation.rs");
    let got = check_rust("crates/demo/tests/it.rs", &src6);
    assert_eq!(got.len(), expected(&src6).len());
    assert!(got.iter().all(|v| v.rule == RuleId::R006));
}
