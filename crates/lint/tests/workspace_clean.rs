//! The acceptance gate, as a tier-1 test: `caplint` must exit 0 on
//! this workspace at HEAD — every violation either fixed or carried in
//! `caplint.allow` with a justification, and no baseline entry stale.

#[test]
fn caplint_is_clean_on_this_workspace() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let allow_src = std::fs::read_to_string(root.join("caplint.allow"))
        .expect("caplint.allow must exist at the workspace root");
    let allow = cap_lint::allow::parse(&allow_src).expect("caplint.allow must parse");
    let outcome = cap_lint::check_workspace(&root, &allow).expect("check workspace");
    assert!(
        outcome.violations.is_empty() && outcome.stale.is_empty(),
        "caplint must be clean on HEAD:\n{}",
        cap_lint::render_human(&outcome)
    );
    // The baseline is meant to shrink, not rot: every entry must still
    // be load-bearing (checked via staleness above) and justified
    // (checked by the parser). Sanity-bound its size so it cannot
    // quietly become a dumping ground.
    assert!(
        allow.len() <= 16,
        "baseline has grown to {} entries — pay down the debt",
        allow.len()
    );
    // The graph rules must actually have run: the clean verdict above
    // is meaningless if the call graph silently came back empty.
    assert!(
        outcome.graph_fns > 500 && outcome.graph_edges > 1000,
        "workspace call graph is implausibly small: {} fns / {} edges",
        outcome.graph_fns,
        outcome.graph_edges
    );
    // R008-R011 are active rules, not future work.
    assert_eq!(cap_lint::rules::RuleId::ALL.len(), 11);
    for code in ["R008", "R009", "R010", "R011"] {
        assert!(
            cap_lint::render_rule_list().contains(code),
            "{code} missing from --list-rules"
        );
    }
    // The R008 entry points exist in the graph — if a kernel is
    // renamed, this gate must force the entry-point list to follow.
    let graph = cap_lint::load_graph(&root).expect("load graph");
    for (path, name) in [
        ("crates/tensor/src/matmul.rs", "matmul"),
        ("crates/tensor/src/conv.rs", "im2col"),
        ("crates/nn/src/layer/conv.rs", "forward"),
        ("crates/core/src/score.rs", "evaluate_scores"),
    ] {
        assert!(
            graph
                .nodes
                .iter()
                .any(|n| n.path == path && n.name.starts_with(name)),
            "R008 entry point {path}::{name}* not found in the graph"
        );
    }
}
