//! The acceptance gate, as a tier-1 test: `caplint` must exit 0 on
//! this workspace at HEAD — every violation either fixed or carried in
//! `caplint.allow` with a justification, and no baseline entry stale.

#[test]
fn caplint_is_clean_on_this_workspace() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let allow_src = std::fs::read_to_string(root.join("caplint.allow"))
        .expect("caplint.allow must exist at the workspace root");
    let allow = cap_lint::allow::parse(&allow_src).expect("caplint.allow must parse");
    let outcome = cap_lint::check_workspace(&root, &allow).expect("check workspace");
    assert!(
        outcome.violations.is_empty() && outcome.stale.is_empty(),
        "caplint must be clean on HEAD:\n{}",
        cap_lint::render_human(&outcome)
    );
    // The baseline is meant to shrink, not rot: every entry must still
    // be load-bearing (checked via staleness above) and justified
    // (checked by the parser). Sanity-bound its size so it cannot
    // quietly become a dumping ground.
    assert!(
        allow.len() <= 16,
        "baseline has grown to {} entries — pay down the debt",
        allow.len()
    );
}
