//! Hostile-input properties of the item parser and graph builder:
//! arbitrary byte soup, truncated real source, and adversarial token
//! fragments must never panic, and the serialized graph must be
//! byte-stable across repeated builds from the same input.
//!
//! caplint runs on whatever happens to be on disk — half-written
//! files, merge-conflict markers, non-UTF8 garbage — so `parse_file`
//! and `graph::build` are total functions by contract. These
//! properties pin that contract the same way `tsdb_hostile` pins the
//! series-store decoder.

use cap_lint::graph::{build, render_json, render_text, Deps};
use cap_lint::parse::{parse_file, ParsedFile};
use cap_lint::reach::check_graph;
use proptest::prelude::*;

/// Real workspace source, so truncation points land inside genuine
/// item boundaries (mid-`impl`, mid-use-tree, mid-generic-list).
const REAL_SOURCES: &[(&str, &str)] = &[
    ("crates/lint/src/parse.rs", include_str!("../src/parse.rs")),
    ("crates/lint/src/graph.rs", include_str!("../src/graph.rs")),
    ("crates/lint/src/reach.rs", include_str!("../src/reach.rs")),
];

/// Runs the full pipeline — parse, build, check — and returns both
/// renderings so callers can assert stability.
fn pipeline(files: &[(String, String)]) -> (String, String) {
    let parsed: Vec<ParsedFile> = files
        .iter()
        .map(|(rel, src)| parse_file(rel, src))
        .collect();
    let deps = Deps::default();
    let graph = build(&parsed, &deps);
    let _ = check_graph(&parsed, &graph, &deps);
    (render_text(&graph), render_json(&graph))
}

/// Fragments that stress the parser's scope/angle/turbofish tracking
/// when spliced together in arbitrary orders.
const FRAGMENTS: &[&str] = &[
    "fn ",
    "impl ",
    "mod ",
    "use ",
    "pub ",
    "unsafe ",
    "{",
    "}",
    "(",
    ")",
    "<",
    ">",
    "::",
    "::<",
    ",",
    ";",
    "*",
    "x",
    "Self",
    "self",
    "crate",
    "as y",
    "for T",
    "where T:",
    "'a",
    "\"str",
    "// line",
    "/* block",
    "#[cfg(test)]",
    "r#\"raw",
    "\u{0}",
    "é",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary byte soup (lossily decoded, as the walker does for
    /// non-UTF8 files) never panics the parser or the graph builder.
    #[test]
    fn byte_soup_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..512)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let files = vec![("crates/demo/src/soup.rs".to_string(), src)];
        let _ = pipeline(&files);
    }

    /// Keyword/punct fragments glued in arbitrary order: worst case
    /// for the scope stack and the use-tree expander.
    #[test]
    fn token_fragments_never_panic(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..64)
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let files = vec![("crates/demo/src/frags.rs".to_string(), src)];
        let _ = pipeline(&files);
    }

    /// Truncating real source at any char boundary never panics: this
    /// is exactly the half-written-file-during-save case.
    #[test]
    fn truncated_real_source_never_panics(
        which in 0usize..REAL_SOURCES.len(),
        cut in 0usize..=100usize,
    ) {
        let (rel, full) = REAL_SOURCES[which];
        let target = full.len() * cut / 100;
        let mut end = target.min(full.len());
        while !full.is_char_boundary(end) {
            end -= 1;
        }
        let files = vec![(rel.to_string(), full[..end].to_string())];
        let _ = pipeline(&files);
    }

    /// The serialized graph is byte-stable: building twice from the
    /// same input yields identical text and JSON renderings, even for
    /// garbage input. (Order-independence across input permutations is
    /// covered by `graph_rules::graph_serialization_is_stable_*`.)
    #[test]
    fn graph_output_is_byte_stable(
        bytes in proptest::collection::vec(0u8..=255, 0..384),
        which in 0usize..REAL_SOURCES.len(),
    ) {
        let soup = String::from_utf8_lossy(&bytes).into_owned();
        let (rel, real) = REAL_SOURCES[which];
        let files = vec![
            ("crates/demo/src/soup.rs".to_string(), soup),
            (rel.to_string(), real.to_string()),
        ];
        let first = pipeline(&files);
        let second = pipeline(&files);
        prop_assert_eq!(first, second);
    }
}

/// Deterministic edge cases that deserve a name: empty input, a lone
/// BOM, unbalanced closers, and a use-tree nested past MAX_USE_DEPTH.
#[test]
fn named_hostile_inputs_never_panic() {
    let deep_use = {
        let mut s = String::from("use a::");
        for _ in 0..64 {
            s.push_str("{b::");
        }
        s.push('c');
        for _ in 0..64 {
            s.push('}');
        }
        s.push(';');
        s
    };
    let cases: Vec<String> = vec![
        String::new(),
        "\u{feff}".to_string(),
        "}}}}))>>>".to_string(),
        "fn".to_string(),
        "fn f".to_string(),
        "impl<T".to_string(),
        "fn f() { g::<".to_string(),
        deep_use,
    ];
    for (i, src) in cases.into_iter().enumerate() {
        let files = vec![(format!("crates/demo/src/case{i}.rs"), src)];
        let _ = pipeline(&files);
    }
}
