// R005 fixture: hot-path code surfaces failures through Result.
pub fn hot(v: &[f32]) -> Result<f32, &'static str> {
    let first = v.first().ok_or("needs one entry")?;
    let second = v.get(1).ok_or("needs two entries")?;
    // .unwrap() in a comment does not count; nor in a string:
    let _s = "please don't .unwrap() here";
    Ok(first + second)
}
