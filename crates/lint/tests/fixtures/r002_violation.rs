// R002 fixture: durable writes bypassing cap_obs::fsx::atomic_write.
pub fn save(path: &str, bytes: &[u8]) {
    std::fs::write(path, bytes).ok(); //~ R002 @10..19
    let _f = std::fs::File::create(path); //~ R002 @23..35
    let _o = std::fs::OpenOptions::new(); //~ R002 @23..34
}
