// R002 fixture: writes routed through the atomic helper, plus exempt
// test-region writes. `fsx::atomic_write` and reads never match.
pub fn save(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    cap_obs::fsx::atomic_write(path, bytes)
}

pub fn load(path: &str) -> std::io::Result<String> {
    std::fs::read_to_string(path)
}

#[cfg(test)]
mod tests {
    #[test]
    fn raw_write_in_test_region_is_exempt() {
        std::fs::write("/tmp/x", b"fixture").ok();
        let _f = std::fs::File::create("/tmp/y");
    }
}
