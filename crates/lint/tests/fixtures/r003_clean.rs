// R003 fixture: ordered collections keep replay bit-identical; word
// boundaries must not fire on identifiers that merely embed the names.
use std::collections::{BTreeMap, BTreeSet};

struct MyHashMapLike; // HashMapX-style identifiers are not the std type

fn tally(keys: &[u32]) -> usize {
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    seen.extend(keys);
    let m: BTreeMap<u32, u32> = BTreeMap::new();
    let _s = "HashMap in a string is fine";
    let _x = MyHashMapLike;
    let _id = HashMapX_id; // embedded name, not a word match
    seen.len() + m.len()
}
