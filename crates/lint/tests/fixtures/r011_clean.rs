// R011 fixture (clean): no unsafe in shipping code; test-region
// unsafe is exempt from confinement (R006 still polices it there, so
// it keeps its SAFETY comment), and the `unsafe_code` attribute token
// is not the keyword.
#![forbid(unsafe_code)]

pub fn safe_code(x: u8) -> u8 {
    x.wrapping_add(1)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_region_unsafe_is_not_confined() {
        let x = 7u8;
        // SAFETY: `x` is a live local; the raw-pointer read is valid.
        let _ = unsafe { *(&x as *const u8) };
    }
}
