// R005 fixture: panic paths in a hot-path crate (checked under a
// crates/nn/src/ synthetic path).
pub fn hot(v: &[f32]) -> f32 {
    let first = v.first().unwrap(); //~ R005 @26..35
    let second = v.get(1).expect("needs two entries"); //~ R005 @26..34
    first + second
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_test_region_is_exempt() {
        assert!(super::hot(&[1.0, 2.0]).partial_cmp(&3.0).unwrap().is_eq());
    }
}
