// R006 fixture: documented unsafe in its accepted shapes.
pub fn above(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` is valid for reads and
    // properly aligned for u8.
    unsafe { *p }
}

pub fn same_line(p: *const u8) -> u8 {
    unsafe { *p } // SAFETY: same-line annotation also counts
}

pub fn attr_only() {
    // The forbid attribute names unsafe_code but is not the keyword.
    #[allow(unsafe_code)]
    fn _inner() {}
}
