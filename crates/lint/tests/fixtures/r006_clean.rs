// R006 fixture: documented unsafe in its accepted shapes.
pub fn above(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` is valid for reads and
    // properly aligned for u8.
    unsafe { *p }
}

pub fn same_line(p: *const u8) -> u8 {
    unsafe { *p } // SAFETY: same-line annotation also counts
}

pub fn attr_only() {
    // The forbid attribute names unsafe_code but is not the keyword.
    #[allow(unsafe_code)]
    fn _inner() {}
}

// target_feature intrinsics blocks: attributes may sit above the
// SAFETY comment; the comment must still touch the unsafe line.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
// SAFETY: callers must prove AVX2+FMA support before calling; `p`
// must be valid for the vector-width reads performed inside.
unsafe fn intrinsics_block(p: *const f32) -> f32 {
    unsafe { *p } // SAFETY: covered by the function contract above
}

pub fn gated_call_site(p: *const f32) -> f32 {
    // SAFETY: runtime feature detection gates this call site and the
    // pointer was derived from a live slice.
    unsafe { intrinsics_block(p) }
}
