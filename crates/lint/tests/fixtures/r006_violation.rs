// R006 fixture: unsafe without a SAFETY comment — including inside
// test code (the rule is not test-exempt).
pub fn deref(p: *const u8) -> u8 {
    unsafe { *p } //~ R006 @5..11
}

#[cfg(test)]
mod tests {
    #[test]
    fn undocumented_unsafe_in_tests_still_fires() {
        let x = 7u8;
        let _ = unsafe { *(&x as *const u8) }; //~ R006 @17..23
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn undocumented_intrinsics(p: *const f32) -> f32 { //~ R006 @1..7
    *p
}

pub fn undocumented_call_site(p: *const f32) -> f32 {
    unsafe { undocumented_intrinsics(p) } //~ R006 @5..11
}
