// R001 fixture: raw thread creation outside crates/par.
fn live() {
    let h = std::thread::spawn(|| 1); //~ R001 @18..31
    let _b = std::thread::Builder::new(); //~ R001 @19..34
    h.join().ok();
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawn_inside_test_region_is_exempt() {
        std::thread::spawn(|| 2).join().ok();
    }
}
