// R004 fixture: wall-clock flows through the telemetry layer's single
// doorway.
fn elapsed() -> f64 {
    let t0 = cap_obs::clock::now();
    // Instant::now in a comment does not count.
    let _s = "Instant::now in a string does not count";
    cap_obs::clock::elapsed_secs(t0)
}
