// R010 fixture (clean): the shapes the rule must NOT flag.
pub fn count_correct(n: usize) -> usize {
    let partials = cap_par::parallel_map(n, |i| i % 2);
    // Integer folds are exact in any order.
    let mut correct = 0usize;
    for p in partials {
        correct += p;
    }
    correct
}

pub fn tree_reduced(n: usize) -> f64 {
    let partials = cap_par::parallel_map(n, |i| i as f64);
    // Routing through the fixed-order tree blesses the fn.
    let folded = tree_reduce_pairs(partials);
    let mut acc = 0.0f64;
    for p in folded {
        acc += p;
    }
    acc
}

pub fn closure_local_accumulation(n: usize) -> f64 {
    // `+=` inside the parallel closure is per-task-deterministic.
    let partials = cap_par::parallel_map(n, |i| {
        let mut local = 0.0f64;
        local += i as f64;
        local
    });
    partials.len() as f64
}

pub fn accumulate_before_the_call(xs: &[f64]) -> f64 {
    // Serial `+=` before any parallel work is fixed-order already.
    let mut tau = 0.0f64;
    for x in xs {
        tau += x;
    }
    let _partials = cap_par::parallel_map(4, move |i| i as f64 + tau);
    tau
}

fn tree_reduce_pairs(mut v: Vec<f64>) -> Vec<f64> {
    while v.len() > 1 {
        let mut next = Vec::with_capacity(v.len().div_ceil(2));
        for pair in v.chunks(2) {
            next.push(pair.iter().copied().sum());
        }
        v = next;
    }
    v
}
