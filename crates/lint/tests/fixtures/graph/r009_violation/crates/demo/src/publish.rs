// R009 fixture: tmp-then-rename with no fsync anywhere on the path.
// After power loss the rename can survive while the data does not.
// `fs::rename` is not an R002 needle, so the per-file scanner is
// silent here (asserted by the harness).
use std::path::Path;

pub fn swap_in(tmp: &Path, dst: &Path) -> std::io::Result<()> {
    write_payload(tmp)?;
    std::fs::rename(tmp, dst) //~ R009
}

fn write_payload(_tmp: &Path) -> std::io::Result<()> {
    Ok(())
}
