// R009 fixture (clean): three blessed shapes — fsync in the fn body,
// fsync in a reachable callee (cross-file), and routing through
// fsx::atomic_write.
use crate::flush::flush_durably;
use std::fs::File;
use std::path::Path;

pub fn swap_in_local(f: &File, tmp: &Path, dst: &Path) -> std::io::Result<()> {
    f.sync_all()?;
    std::fs::rename(tmp, dst)
}

pub fn swap_in_via_helper(f: &File, tmp: &Path, dst: &Path) -> std::io::Result<()> {
    flush_durably(f)?;
    std::fs::rename(tmp, dst)
}

pub fn publish_atomic(dst: &Path, bytes: &[u8]) -> std::io::Result<()> {
    cap_obs::fsx::atomic_write(dst, bytes)
}
