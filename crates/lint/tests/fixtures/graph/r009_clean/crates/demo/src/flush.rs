use std::fs::File;

pub fn flush_durably(f: &File) -> std::io::Result<()> {
    f.sync_all()
}
