// R008 fixture (clean): the same call shape, but the helper is pure
// and the only clock read sits inside the obs home, which kernels are
// explicitly allowed to be instrumented by.
use crate::util::prefetch_hint;
use cap_obs::span::enter_span;

pub fn matmul_tiled(n: usize) -> f32 {
    let _guard = enter_span(n);
    let warm = prefetch_hint(n);
    warm as f32
}
