pub fn prefetch_hint(n: usize) -> usize {
    n.wrapping_mul(31)
}
