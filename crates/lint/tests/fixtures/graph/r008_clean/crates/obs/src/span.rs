// The obs home reads the clock by design; R008 neither scans nor
// traverses through it.
pub fn enter_span(n: usize) -> usize {
    let t = std::time::Instant::now();
    n ^ t.elapsed().subsec_nanos() as usize
}
