// R008 fixture: the kernel itself is spotless per-file — the stall
// hides two hops away, behind a call into another module. The
// per-line scanner must stay silent on every file in this tree
// (asserted by the harness); only reachability can catch it.
use crate::util::prefetch_hint;

pub fn matmul_tiled(n: usize) -> f32 { //~ R008
    let warm = prefetch_hint(n);
    warm as f32
}
