// Middle hop: clean in isolation, but it forwards into `pace`, whose
// `thread::sleep` is not an R001 needle (R001 only bans spawn
// routes), so no per-file rule can see the problem from here either.
pub fn prefetch_hint(n: usize) -> usize {
    pace();
    n
}

fn pace() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
