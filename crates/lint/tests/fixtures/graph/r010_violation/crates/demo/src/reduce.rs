// R010 fixture: a float `+=` fold over parallel_map results. The
// pool hands partials back index-ordered, but folding them with `+=`
// still bakes the *chunking* into the sum whenever the chunk count
// tracks CAP_THREADS — and this shape is one refactor away from
// exactly that. The workspace's blessed shapes are tree_reduce_pairs
// and the bounded ascending-wave loop.
pub fn score_sum(n: usize) -> f64 {
    let partials = cap_par::parallel_map(n, |i| i as f64 * 0.5);
    let mut acc = 0.0f64;
    for p in partials {
        acc += p; //~ R010
    }
    acc
}
