// R004 fixture: raw wall-clock reads outside the telemetry layer.
fn elapsed() -> f64 {
    let t0 = std::time::Instant::now(); //~ R004 @25..37
    let _wall = std::time::SystemTime::now(); //~ R004 @28..43
    t0.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    #[test]
    fn clock_reads_in_tests_are_exempt() {
        let _ = std::time::Instant::now();
    }
}
