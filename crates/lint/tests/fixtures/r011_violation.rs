// R011 fixture: even SAFETY-documented unsafe is confined to simd.rs
// and crates/par — anywhere else it needs a baseline entry. Every
// unsafe here carries a SAFETY comment so R006 stays quiet and the
// markers isolate R011.
pub fn documented_but_homeless(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` is valid for reads.
    unsafe { *p } //~ R011 @5..11
}

pub fn also_homeless() {
    // SAFETY: zero-sized type, the transmute cannot observe any bytes.
    unsafe { std::mem::transmute::<(), ()>(()) } //~ R011 @5..11
}
