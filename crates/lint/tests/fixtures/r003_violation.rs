// R003 fixture: iteration-order-nondeterministic hash collections.
use std::collections::HashMap; //~ R003 @23..30

fn tally(keys: &[u32]) -> usize {
    let mut seen: std::collections::HashSet<u32> = Default::default(); //~ R003 @37..44
    seen.extend(keys);
    let m: HashMap<u32, u32> = HashMap::new(); //~ R003 @12..19
    seen.len() + m.len()
}
