// R001 fixture: no raw threads in live code; mentions in strings,
// comments, and test regions must stay silent.
fn live() {
    // thread::spawn in a comment does not count
    let _s = "thread::spawn in a string does not count";
    let _r = r#"thread::Builder in a raw string does not count"#;
    cap_par::run_tasks(Vec::new());
}

#[test]
fn spawn_in_a_test_fn_is_exempt() {
    std::thread::spawn(|| 3).join().ok();
}
