//! Fixture harness for the graph rules R008–R010: each case under
//! `tests/fixtures/graph/<case>/` is a miniature workspace tree whose
//! `//~ Rnnn` markers pin exactly which (file, line) pairs must fire.
//!
//! The headline property lives in `r008_cross_file_*`: the seeded
//! violation spans three functions in two files, every one of which is
//! clean under the per-file scanner — only reachability over the item
//! graph catches it.

use cap_lint::graph::{build, Deps};
use cap_lint::parse::{parse_file, ParsedFile};
use cap_lint::reach::check_graph;
use cap_lint::rules::{check_rust, RuleId, Violation};

fn case_root(case: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/graph")
        .join(case)
}

/// Loads a fixture case: `(rel_path, source)` for every Rust file.
fn load(case: &str) -> Vec<(String, String)> {
    let root = case_root(case);
    let entries = cap_lint::walk::walk(&root).unwrap_or_else(|e| panic!("walk {case}: {e}"));
    entries
        .iter()
        .filter(|e| !e.manifest)
        .map(|e| {
            let src = std::fs::read_to_string(&e.abs)
                .unwrap_or_else(|err| panic!("read {}: {err}", e.rel));
            (e.rel.clone(), src)
        })
        .collect()
}

fn run_graph_rules(files: &[(String, String)]) -> (Vec<ParsedFile>, Vec<Violation>) {
    let parsed: Vec<ParsedFile> = files
        .iter()
        .map(|(rel, src)| parse_file(rel, src))
        .collect();
    let deps = Deps::default();
    let graph = build(&parsed, &deps);
    let violations = check_graph(&parsed, &graph, &deps);
    (parsed, violations)
}

/// `(path, line, rule)` expectations from `//~ Rnnn` markers.
fn expected(files: &[(String, String)]) -> Vec<(String, usize, RuleId)> {
    let mut out = Vec::new();
    for (rel, src) in files {
        for (idx, line) in src.lines().enumerate() {
            let Some(pos) = line.find("~ R") else {
                continue;
            };
            let code = &line[pos + 2..pos + 6];
            let rule = RuleId::parse(code).unwrap_or_else(|| panic!("bad marker {code} in {rel}"));
            out.push((rel.clone(), idx + 1, rule));
        }
    }
    out.sort();
    out
}

fn assert_case(case: &str) {
    let files = load(case);
    assert!(!files.is_empty(), "fixture case {case} is empty");
    let (_, got) = run_graph_rules(&files);
    let got_brief: Vec<(String, usize, RuleId)> = got
        .iter()
        .map(|v| (v.path.clone(), v.line, v.rule))
        .collect();
    assert_eq!(got_brief, expected(&files), "case {case}: {got:#?}");
}

#[test]
fn r008_cross_file_violation_caught_only_by_reachability() {
    let files = load("r008_violation");
    // Every file is individually clean under the per-file scanner —
    // this is the case the per-line architecture provably cannot see.
    for (rel, src) in &files {
        let per_file = check_rust(rel, src);
        assert!(
            per_file.is_empty(),
            "per-file scanner must miss the seeded violation, but fired on {rel}: {per_file:?}"
        );
    }
    let (_, got) = run_graph_rules(&files);
    assert_eq!(got.len(), 1, "{got:#?}");
    assert_eq!(got[0].rule, RuleId::R008);
    assert_eq!(got[0].path, "crates/tensor/src/matmul.rs");
    assert!(
        got[0]
            .what
            .contains("matmul_tiled -> prefetch_hint -> pace"),
        "chain must name every hop: {}",
        got[0].what
    );
    assert_case("r008_violation");
}

#[test]
fn r008_clean_tree_is_quiet_including_obs_instrumentation() {
    assert_case("r008_clean");
}

#[test]
fn r009_rename_without_fsync_fires_and_is_invisible_per_file() {
    let files = load("r009_violation");
    for (rel, src) in &files {
        assert!(
            check_rust(rel, src).is_empty(),
            "fs::rename is not a per-file needle; {rel} must be clean"
        );
    }
    assert_case("r009_violation");
}

#[test]
fn r009_fsync_evidence_local_cross_file_or_atomic_write_is_accepted() {
    assert_case("r009_clean");
}

#[test]
fn r010_float_fold_fires_where_marked() {
    assert_case("r010_violation");
}

#[test]
fn r010_blessed_and_exact_shapes_are_quiet() {
    assert_case("r010_clean");
}

#[test]
fn graph_serialization_is_stable_across_input_order() {
    let mut files = load("r009_clean");
    let parsed: Vec<ParsedFile> = files
        .iter()
        .map(|(rel, src)| parse_file(rel, src))
        .collect();
    let g1 = build(&parsed, &Deps::default());
    files.reverse();
    let parsed_rev: Vec<ParsedFile> = files
        .iter()
        .map(|(rel, src)| parse_file(rel, src))
        .collect();
    let g2 = build(&parsed_rev, &Deps::default());
    assert_eq!(
        cap_lint::graph::render_text(&g1),
        cap_lint::graph::render_text(&g2)
    );
    assert_eq!(
        cap_lint::graph::render_json(&g1),
        cap_lint::graph::render_json(&g2)
    );
}
