//! The `caplint.allow` baseline: pre-existing, reviewed violations
//! carried explicitly so that *new* violations always fail.
//!
//! Format — one entry per line, `#` comments allowed:
//!
//! ```text
//! R002 crates/obs/src/sink.rs 1 JSONL sink streams events; atomic_write would rewrite the file per event
//! ```
//!
//! Fields: rule code, workspace-relative path, expected violation
//! count, free-text justification (required). Count semantics make the
//! baseline self-tightening: **more** hits than allowed ⇒ the file's
//! violations are reported (someone added a new one); **fewer** hits
//! than allowed ⇒ the entry is stale and reported so the baseline
//! shrinks as debt is paid down.

use crate::rules::RuleId;

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule being allowed.
    pub rule: RuleId,
    /// Workspace-relative path the entry covers.
    pub path: String,
    /// Exact number of violations the baseline accepts in that file.
    pub count: usize,
    /// Why this violation is acceptable (mandatory).
    pub justification: String,
    /// 1-based line in the allow file (for stale reports).
    pub line: usize,
}

/// Parses `caplint.allow` content.
///
/// # Errors
///
/// Returns a human-readable message naming the offending line for
/// malformed entries, unknown rule codes, zero counts, missing
/// justifications, or duplicate `(rule, path)` pairs.
pub fn parse(src: &str) -> Result<Vec<AllowEntry>, String> {
    let mut out: Vec<AllowEntry> = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(4, char::is_whitespace);
        let (rule, path, count, rest) = (
            parts.next().unwrap_or_default(),
            parts.next().unwrap_or_default(),
            parts.next().unwrap_or_default(),
            parts.next().unwrap_or_default(),
        );
        let rule = RuleId::parse(rule)
            .ok_or_else(|| format!("caplint.allow:{}: unknown rule `{rule}`", idx + 1))?;
        if path.is_empty() {
            return Err(format!("caplint.allow:{}: missing path", idx + 1));
        }
        let count: usize = count
            .parse()
            .map_err(|_| format!("caplint.allow:{}: bad count `{count}`", idx + 1))?;
        if count == 0 {
            return Err(format!(
                "caplint.allow:{}: count must be >= 1 (delete the entry instead)",
                idx + 1
            ));
        }
        let justification = rest.trim();
        if justification.is_empty() {
            return Err(format!(
                "caplint.allow:{}: a one-line justification is required",
                idx + 1
            ));
        }
        if out.iter().any(|e| e.rule == rule && e.path == path) {
            return Err(format!(
                "caplint.allow:{}: duplicate entry for {} {}",
                idx + 1,
                rule.code(),
                path
            ));
        }
        out.push(AllowEntry {
            rule,
            path: path.to_string(),
            count,
            justification: justification.to_string(),
            line: idx + 1,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_comments() {
        let src = "# header\n\nR001 crates/obs/src/serve.rs 1 server thread outlives any scope\n";
        let e = parse(src).unwrap();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].rule, RuleId::R001);
        assert_eq!(e[0].count, 1);
        assert!(e[0].justification.contains("outlives"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("R999 a 1 x").is_err());
        assert!(parse("R001 a 0 x").is_err());
        assert!(parse("R001 a one x").is_err());
        assert!(parse("R001 a 1").is_err());
        assert!(parse("R001 a 1 x\nR001 a 2 y").is_err());
    }
}
