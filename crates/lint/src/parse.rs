//! Item-level parsing on top of the masked lexer: modules, `use`
//! trees, `fn`/`impl` items, and approximate call sites.
//!
//! This is deliberately **not** a Rust parser. It runs on
//! [`MaskedFile`](crate::lexer::MaskedFile) output (comments and
//! literal contents blanked, positions preserved), tracks brace depth
//! and a scope stack (`mod` / `impl` / `fn`), and records, for every
//! function item, where its body starts and ends plus every
//! `path::to::callee(` / `.method(` shape inside it. That is enough to
//! build the approximate workspace call graph the reachability rules
//! R008–R010 run on (see [`crate::graph`] and [`crate::reach`]), while
//! staying zero-dependency and panic-free on arbitrary input — the
//! lint gate must survive any source the workspace can throw at it
//! (proven by the hostile-input proptests in `tests/parser_hostile.rs`).
//!
//! Known, accepted approximations: macro bodies are opaque (macro
//! invocations are never calls), nested functions attribute their
//! calls to the innermost `fn`, and trait-default bodies have no
//! `impl` owner.

use crate::lexer::{mask, MaskedFile};

/// One `name(`-shaped call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Last path segment — the callee name.
    pub name: String,
    /// Leading path segments (`cap_par::parallel_map` → `["cap_par"]`;
    /// empty for plain `helper(` calls). `Self` is already substituted
    /// with the enclosing `impl` type where known.
    pub qualifier: Vec<String>,
    /// Whether this is a `.method(` receiver call.
    pub method: bool,
    /// 1-based line of the callee name.
    pub line: usize,
    /// 1-based char column of the callee name.
    pub col: usize,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` type, when directly inside one.
    pub owner: Option<String>,
    /// Inline `mod` path from the file root (not the file's own path).
    pub module: Vec<String>,
    /// 1-based line of the `fn` name.
    pub line: usize,
    /// 1-based char column of the `fn` name.
    pub col: usize,
    /// 1-based inclusive body line range, when the item has a body.
    pub body: Option<(usize, usize)>,
    /// Whether the item sits in a `#[cfg(test)]` / `#[test]` region.
    pub test: bool,
    /// Call sites found in the body.
    pub calls: Vec<CallSite>,
}

/// One leaf of an expanded `use` tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseImport {
    /// The name the import binds locally (alias, last segment, or
    /// `"*"` for globs).
    pub leaf: String,
    /// The full path segments, e.g. `["cap_obs", "fsx", "atomic_write"]`.
    pub path: Vec<String>,
}

/// A parsed source file: items plus the masked views rule passes scan.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Function items in source order.
    pub fns: Vec<FnItem>,
    /// Expanded `use` imports.
    pub uses: Vec<UseImport>,
    /// Masked per-line views (code / comments / test flags).
    pub masked: MaskedFile,
    /// Raw source lines, for violation snippets.
    pub raw: Vec<String>,
}

impl ParsedFile {
    /// Crate directory key: `crates/tensor/src/x.rs` → `"tensor"`;
    /// anything else (root `src/`, scratch fixtures) → `""` which the
    /// dependency filter treats permissively.
    pub fn crate_dir(&self) -> &str {
        crate_dir_of(&self.path)
    }

    /// Module stem the file answers to in qualified calls:
    /// `fsx.rs` → `fsx`, `lib.rs`/`mod.rs` → the parent directory name.
    pub fn file_stem(&self) -> &str {
        file_stem_of(&self.path)
    }
}

/// See [`ParsedFile::crate_dir`].
pub fn crate_dir_of(path: &str) -> &str {
    let mut segs = path.split('/');
    if segs.next() == Some("crates") {
        segs.next().unwrap_or("")
    } else {
        ""
    }
}

/// See [`ParsedFile::file_stem`].
pub fn file_stem_of(path: &str) -> &str {
    let file = path.rsplit('/').next().unwrap_or(path);
    let stem = file.strip_suffix(".rs").unwrap_or(file);
    if stem == "lib" || stem == "mod" || stem == "main" {
        let mut segs: Vec<&str> = path.split('/').collect();
        segs.pop();
        segs.pop().unwrap_or("")
    } else {
        stem
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Punct(char),
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

/// Words that can never be callee names or path heads.
const KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "fn", "let", "mut", "ref", "move",
    "async", "await", "unsafe", "as", "in", "impl", "pub", "where", "break", "continue", "struct",
    "enum", "trait", "type", "use", "mod", "dyn", "box", "const", "static", "extern", "yield",
    "become", "do", "macro", "union", "true", "false",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Tokenises masked code lines into idents and single-char puncts with
/// 1-based positions.
fn tokenize(code: &[String]) -> Vec<Spanned> {
    let mut out = Vec::new();
    for (ln, line) in code.iter().enumerate() {
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Ident(chars[start..i].iter().collect()),
                    line: ln + 1,
                    col: start + 1,
                });
            } else {
                out.push(Spanned {
                    tok: Tok::Punct(c),
                    line: ln + 1,
                    col: i + 1,
                });
                i += 1;
            }
        }
    }
    out
}

#[derive(Debug)]
enum ScopeKind {
    Mod(String),
    Impl(Option<String>),
    Fn(usize),
    Block,
}

#[derive(Debug)]
struct Scope {
    kind: ScopeKind,
    depth: i64,
}

/// Parses one source file. Never panics, whatever the input: anything
/// the scanner cannot make sense of is skipped, not fatal — a lint
/// must degrade to "fewer items found", not take the gate down.
pub fn parse_file(path: &str, src: &str) -> ParsedFile {
    let masked = mask(src);
    let raw: Vec<String> = src.lines().map(str::to_string).collect();
    let toks = tokenize(&masked.code);
    let mut fns: Vec<FnItem> = Vec::new();
    let mut uses: Vec<UseImport> = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut depth: i64 = 0;

    let ident_at = |i: usize| -> Option<&str> {
        match toks.get(i) {
            Some(Spanned {
                tok: Tok::Ident(s), ..
            }) => Some(s.as_str()),
            _ => None,
        }
    };
    let punct_at = |i: usize| -> Option<char> {
        match toks.get(i) {
            Some(Spanned {
                tok: Tok::Punct(c), ..
            }) => Some(*c),
            _ => None,
        }
    };

    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => {
                depth += 1;
                scopes.push(Scope {
                    kind: ScopeKind::Block,
                    depth,
                });
                i += 1;
            }
            Tok::Punct('}') => {
                while let Some(s) = scopes.last() {
                    if s.depth == depth {
                        if let Some(Scope {
                            kind: ScopeKind::Fn(idx),
                            ..
                        }) = scopes.pop()
                        {
                            if let Some(f) = fns.get_mut(idx) {
                                if let Some((start, _)) = f.body {
                                    f.body = Some((start, toks[i].line));
                                }
                            }
                        }
                    } else {
                        break;
                    }
                }
                depth -= 1;
                i += 1;
            }
            Tok::Punct(_) => i += 1,
            Tok::Ident(word) => match word.as_str() {
                "use" => {
                    let start = i + 1;
                    let mut j = start;
                    while j < toks.len() && punct_at(j) != Some(';') {
                        j += 1;
                    }
                    parse_use_tree(&toks[start..j], &mut uses);
                    i = j + 1;
                }
                "mod" => {
                    if let Some(name) = ident_at(i + 1) {
                        let name = name.to_string();
                        match punct_at(i + 2) {
                            Some('{') => {
                                depth += 1;
                                scopes.push(Scope {
                                    kind: ScopeKind::Mod(name),
                                    depth,
                                });
                                i += 3;
                            }
                            _ => i += 2,
                        }
                    } else {
                        i += 1;
                    }
                }
                "impl" => {
                    let (ty, next) = parse_impl_header(&toks, i + 1);
                    if punct_at(next) == Some('{') {
                        depth += 1;
                        scopes.push(Scope {
                            kind: ScopeKind::Impl(ty),
                            depth,
                        });
                        i = next + 1;
                    } else {
                        i = next.max(i + 1);
                    }
                }
                "fn" => {
                    let Some(name) = ident_at(i + 1) else {
                        i += 1;
                        continue;
                    };
                    let name_tok = &toks[i + 1];
                    let owner = scopes.iter().rev().find_map(|s| match &s.kind {
                        ScopeKind::Impl(t) => Some(t.clone()),
                        ScopeKind::Fn(_) => Some(None), // nested fn: no owner
                        _ => None,
                    });
                    let module: Vec<String> = scopes
                        .iter()
                        .filter_map(|s| match &s.kind {
                            ScopeKind::Mod(m) => Some(m.clone()),
                            _ => None,
                        })
                        .collect();
                    let test = masked
                        .test
                        .get(toks[i].line.saturating_sub(1))
                        .copied()
                        .unwrap_or(false);
                    let item = FnItem {
                        name: name.to_string(),
                        owner: owner.flatten(),
                        module,
                        line: name_tok.line,
                        col: name_tok.col,
                        body: None,
                        test,
                        calls: Vec::new(),
                    };
                    // Scan the signature for the body `{` (paren-depth
                    // 0) or a terminating `;` (trait/extern decl).
                    let mut j = i + 2;
                    let mut paren = 0i64;
                    let mut body_open = None;
                    while j < toks.len() {
                        match punct_at(j) {
                            Some('(') | Some('[') => paren += 1,
                            Some(')') | Some(']') => paren -= 1,
                            Some('{') if paren == 0 => {
                                body_open = Some(j);
                                break;
                            }
                            Some(';') if paren == 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    let idx = fns.len();
                    fns.push(item);
                    match body_open {
                        Some(open) => {
                            fns[idx].body = Some((toks[open].line, toks[open].line));
                            depth += 1;
                            scopes.push(Scope {
                                kind: ScopeKind::Fn(idx),
                                depth,
                            });
                            i = open + 1;
                        }
                        None => i = j + 1,
                    }
                }
                w if is_keyword(w) => i += 1,
                _ => {
                    // Possible call: collect the full `a::b::c` path.
                    let path_start = i;
                    let mut segs = vec![(word.clone(), toks[i].line, toks[i].col)];
                    let mut j = i + 1;
                    while punct_at(j) == Some(':')
                        && punct_at(j + 1) == Some(':')
                        && ident_at(j + 2).is_some()
                    {
                        // `::<` turbofish belongs to the final segment.
                        if punct_at(j + 2) == Some('<') {
                            break;
                        }
                        if let Some(s) = ident_at(j + 2) {
                            segs.push((s.to_string(), toks[j + 2].line, toks[j + 2].col));
                        }
                        j += 3;
                    }
                    // Optional turbofish between name and `(`.
                    let mut k = j;
                    if punct_at(k) == Some(':') && punct_at(k + 1) == Some(':') {
                        if punct_at(k + 2) == Some('<') {
                            k = skip_angles(&toks, k + 2);
                        } else {
                            // `path::` followed by non-ident (e.g. `*`):
                            // not a call.
                            i = j;
                            continue;
                        }
                    }
                    if punct_at(k) == Some('!') {
                        // Macro invocation: opaque.
                        i = k + 1;
                        continue;
                    }
                    if punct_at(k) == Some('(') {
                        let method = path_start > 0
                            && matches!(toks[path_start - 1].tok, Tok::Punct('.'))
                            && segs.len() == 1;
                        let last = segs.len() - 1;
                        let (name, line, col) = segs[last].clone();
                        if !is_keyword(&name) {
                            let mut qualifier: Vec<String> =
                                segs[..last].iter().map(|(s, _, _)| s.clone()).collect();
                            // Substitute `Self` with the impl type.
                            if qualifier.first().map(String::as_str) == Some("Self") {
                                let impl_ty = scopes.iter().rev().find_map(|s| match &s.kind {
                                    ScopeKind::Impl(t) => Some(t.clone()),
                                    _ => None,
                                });
                                if let Some(Some(t)) = impl_ty {
                                    qualifier[0] = t;
                                }
                            }
                            if let Some(fn_idx) = scopes.iter().rev().find_map(|s| match s.kind {
                                ScopeKind::Fn(idx) => Some(idx),
                                _ => None,
                            }) {
                                if let Some(f) = fns.get_mut(fn_idx) {
                                    f.calls.push(CallSite {
                                        name,
                                        qualifier,
                                        method,
                                        line,
                                        col,
                                    });
                                }
                            }
                        }
                        i = k + 1;
                    } else {
                        i = j.max(i + 1);
                    }
                }
            },
        }
    }

    // Close any fn bodies left open by truncated input.
    let last_line = masked.code.len();
    for f in &mut fns {
        if let Some((start, end)) = f.body {
            if end < start {
                f.body = Some((start, last_line.max(start)));
            }
        }
    }

    ParsedFile {
        path: path.to_string(),
        fns,
        uses,
        masked,
        raw,
    }
}

/// Skips a balanced `<...>` group starting at the `<` token index;
/// returns the index just past the matching `>`. `->` arrows inside do
/// not close the group.
fn punct(toks: &[Spanned], i: usize) -> Option<char> {
    match toks.get(i) {
        Some(Spanned {
            tok: Tok::Punct(c), ..
        }) => Some(*c),
        _ => None,
    }
}

fn skip_angles(toks: &[Spanned], open: usize) -> usize {
    let mut j = open;
    let mut angle = 0i64;
    while j < toks.len() {
        match punct(toks, j) {
            Some('<') => angle += 1,
            Some('>') if punct(toks, j.wrapping_sub(1)) != Some('-') => {
                angle -= 1;
                if angle <= 0 {
                    return j + 1;
                }
            }
            Some(';') | Some('{') => return j, // malformed: bail out
            _ => {}
        }
        j += 1;
    }
    j
}

/// Parses an `impl` header from just after the `impl` keyword; returns
/// the self-type's last path segment (when found) and the index of the
/// body `{` (or wherever scanning stopped).
fn parse_impl_header(toks: &[Spanned], mut i: usize) -> (Option<String>, usize) {
    // Skip `impl<...>` generics.
    if punct(toks, i) == Some('<') {
        i = skip_angles(toks, i);
    }
    let mut ty: Option<String> = None;
    let mut angle = 0i64;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') if angle == 0 => return (ty, i),
            Tok::Punct(';') => return (ty, i),
            Tok::Punct('<') => {
                angle += 1;
                i += 1;
            }
            Tok::Punct('>') => {
                if punct(toks, i.wrapping_sub(1)) != Some('-') {
                    angle -= 1;
                }
                i += 1;
            }
            Tok::Ident(w) if w == "for" && angle == 0 => {
                // Everything before `for` was the trait; restart.
                ty = None;
                i += 1;
            }
            Tok::Ident(w) if w == "where" && angle == 0 => {
                // Type is complete; scan on to the `{`.
                i += 1;
            }
            Tok::Ident(w) if angle == 0 && !is_keyword(w) => {
                ty = Some(w.clone());
                i += 1;
            }
            _ => i += 1,
        }
    }
    (ty, i)
}

/// Expands a `use` tree token slice into leaf imports. Handles
/// `a::b::c`, `as` aliases, `{...}` groups (nested), and `*` globs.
fn parse_use_tree(toks: &[Spanned], out: &mut Vec<UseImport>) {
    expand_use(toks, &mut Vec::new(), out, 0);
}

/// Recursion depth bound: hostile input can nest `{` arbitrarily.
const MAX_USE_DEPTH: usize = 32;

fn expand_use(toks: &[Spanned], prefix: &mut Vec<String>, out: &mut Vec<UseImport>, depth: usize) {
    if depth > MAX_USE_DEPTH {
        return;
    }
    // Split the slice on top-level commas, expanding each element.
    let mut start = 0usize;
    let mut brace = 0i64;
    let mut i = 0usize;
    while i <= toks.len() {
        let at_comma = i < toks.len() && matches!(toks[i].tok, Tok::Punct(',')) && brace == 0;
        if i == toks.len() || at_comma {
            expand_use_element(&toks[start..i], prefix, out, depth);
            start = i + 1;
        } else if let Tok::Punct(c) = toks[i].tok {
            if c == '{' {
                brace += 1;
            } else if c == '}' {
                brace -= 1;
            }
        }
        i += 1;
    }
}

fn expand_use_element(
    toks: &[Spanned],
    prefix: &mut Vec<String>,
    out: &mut Vec<UseImport>,
    depth: usize,
) {
    let mut segs: Vec<String> = Vec::new();
    let mut i = 0usize;
    let mut alias: Option<String> = None;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Ident(w) if w == "as" => {
                if let Some(Spanned {
                    tok: Tok::Ident(a), ..
                }) = toks.get(i + 1)
                {
                    alias = Some(a.clone());
                }
                i += 2;
            }
            Tok::Ident(w) => {
                segs.push(w.clone());
                i += 1;
            }
            Tok::Punct('{') => {
                // Find the matching close; recurse with the built prefix.
                let mut brace = 1i64;
                let mut j = i + 1;
                while j < toks.len() && brace > 0 {
                    if let Tok::Punct(c) = toks[j].tok {
                        if c == '{' {
                            brace += 1;
                        } else if c == '}' {
                            brace -= 1;
                        }
                    }
                    j += 1;
                }
                let inner_end = j.saturating_sub(1);
                let added = segs.len();
                prefix.extend(segs.iter().cloned());
                expand_use(&toks[i + 1..inner_end.max(i + 1)], prefix, out, depth + 1);
                prefix.truncate(prefix.len() - added);
                return;
            }
            Tok::Punct('*') => {
                let mut path = prefix.clone();
                path.extend(segs.iter().cloned());
                out.push(UseImport {
                    leaf: "*".to_string(),
                    path,
                });
                return;
            }
            _ => i += 1,
        }
    }
    if segs.is_empty() {
        return;
    }
    let mut path = prefix.clone();
    path.extend(segs.iter().cloned());
    let leaf = alias.unwrap_or_else(|| segs[segs.len() - 1].clone());
    out.push(UseImport { leaf, path });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(p: &ParsedFile) -> Vec<(&str, Option<&str>)> {
        p.fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref()))
            .collect()
    }

    #[test]
    fn fns_mods_and_impls_are_extracted() {
        let src = "\
pub fn top() { helper(); }
fn helper() {}
mod inner {
    pub fn nested_fn() {}
}
struct T;
impl T {
    pub fn method(&self) { Self::assoc(); }
    fn assoc() {}
}
impl std::fmt::Display for T {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
}
";
        let p = parse_file("crates/x/src/lib.rs", src);
        assert_eq!(
            names(&p),
            vec![
                ("top", None),
                ("helper", None),
                ("nested_fn", None),
                ("method", Some("T")),
                ("assoc", Some("T")),
                ("fmt", Some("T")),
            ]
        );
        assert_eq!(p.fns[2].module, vec!["inner".to_string()]);
        // `Self::assoc()` resolves its qualifier to the impl type.
        assert_eq!(p.fns[3].calls.len(), 1);
        assert_eq!(p.fns[3].calls[0].qualifier, vec!["T".to_string()]);
        assert_eq!(p.fns[3].calls[0].name, "assoc");
    }

    #[test]
    fn body_line_ranges_cover_the_braces() {
        let src = "fn a() {\n    work();\n}\nfn b() {}\n";
        let p = parse_file("crates/x/src/lib.rs", src);
        assert_eq!(p.fns[0].body, Some((1, 3)));
        assert_eq!(p.fns[1].body, Some((4, 4)));
    }

    #[test]
    fn calls_capture_qualifiers_methods_and_skip_macros() {
        let src = "\
fn f(v: &mut Vec<u32>) {
    helper();
    cap_par::parallel_map(4, |i| i);
    v.push(1);
    println!(\"not a call\");
    let x: Vec<u32> = v.iter().copied().collect::<Vec<u32>>();
    if x.len() > 1 { helper(); }
}
";
        let p = parse_file("crates/x/src/lib.rs", src);
        let calls = &p.fns[0].calls;
        let brief: Vec<(String, bool)> = calls.iter().map(|c| (c.name.clone(), c.method)).collect();
        assert!(brief.contains(&("helper".to_string(), false)));
        assert!(brief.contains(&("parallel_map".to_string(), false)));
        assert!(brief.contains(&("push".to_string(), true)));
        assert!(brief.contains(&("collect".to_string(), true)));
        assert!(!brief.iter().any(|(n, _)| n == "println"));
        let pm = calls.iter().find(|c| c.name == "parallel_map").unwrap();
        assert_eq!(pm.qualifier, vec!["cap_par".to_string()]);
    }

    #[test]
    fn use_trees_expand_groups_aliases_and_globs() {
        let src = "\
use cap_obs::fsx::atomic_write;
use cap_obs::{clock, fsx::AppendFile as Af};
use std::collections::*;
fn f() {}
";
        let p = parse_file("crates/x/src/lib.rs", src);
        let find = |leaf: &str| p.uses.iter().find(|u| u.leaf == leaf).cloned();
        assert_eq!(
            find("atomic_write").unwrap().path,
            vec!["cap_obs", "fsx", "atomic_write"]
        );
        assert_eq!(find("clock").unwrap().path, vec!["cap_obs", "clock"]);
        assert_eq!(
            find("Af").unwrap().path,
            vec!["cap_obs", "fsx", "AppendFile"]
        );
        assert_eq!(find("*").unwrap().path, vec!["std", "collections"]);
    }

    #[test]
    fn test_regions_mark_fns() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let p = parse_file("crates/x/src/lib.rs", src);
        assert!(!p.fns[0].test);
        assert!(p.fns[1].test);
    }

    #[test]
    fn crate_dir_and_file_stem_derivation() {
        assert_eq!(crate_dir_of("crates/tensor/src/matmul.rs"), "tensor");
        assert_eq!(crate_dir_of("src/lib.rs"), "");
        assert_eq!(file_stem_of("crates/obs/src/fsx.rs"), "fsx");
        assert_eq!(file_stem_of("crates/obs/src/lib.rs"), "src");
        assert_eq!(file_stem_of("crates/nn/src/layer/conv.rs"), "conv");
    }

    #[test]
    fn truncated_and_garbage_input_never_panics() {
        for src in [
            "fn f(",
            "fn",
            "impl",
            "use a::{b, c",
            "fn f() { g(",
            "mod m { fn x() {",
            "}}}}",
            "fn f() -> Vec<",
            "impl<T> X<T> for",
        ] {
            let _ = parse_file("crates/x/src/lib.rs", src);
        }
    }
}
