//! Approximate workspace call graph over [`crate::parse`] output.
//!
//! Nodes are non-test `fn` items; edges are resolved call sites. The
//! resolver is deliberately over-approximate — a call may resolve to
//! several same-named candidates — but it is bounded two ways so the
//! reachability rules (R008–R010) stay usable:
//!
//! - **Crate-dependency filter.** A cross-crate edge is only admitted
//!   when the caller's `Cargo.toml` (transitively) depends on the
//!   callee's crate. A `.append(` on a `Vec` in cap-tensor can never
//!   resolve into cap-fleet's queue, because tensor does not depend on
//!   fleet. Unknown crates (scratch fixtures, the root facade) are
//!   treated permissively.
//! - **Qualifier matching.** Qualified calls (`fsx::atomic_write(`,
//!   `Conv2d::forward(`) must match the candidate's `impl` owner, file
//!   stem, or crate; bare `helper(` calls resolve same-file or through
//!   a `use` import naming the callee.
//!
//! Serialization (text and JSON) is deterministic and byte-stable for
//! a given set of input files, independent of input ordering — CI
//! uploads it as an artifact and diffs between runs must be
//! meaningful.

use crate::parse::{crate_dir_of, ParsedFile};
use std::collections::{BTreeMap, BTreeSet};

/// One graph node: a non-test `fn` item.
#[derive(Debug, Clone)]
pub struct Node {
    /// Index of the owning file in the input slice.
    pub file: usize,
    /// Workspace-relative path (redundant with `file`, kept for
    /// rendering without the file list).
    pub path: String,
    /// Function name.
    pub name: String,
    /// `impl` owner type, when any.
    pub owner: Option<String>,
    /// 1-based line of the `fn` name.
    pub line: usize,
    /// 1-based char column of the `fn` name.
    pub col: usize,
    /// Index of the `FnItem` within its file's `fns`.
    pub item: usize,
}

impl Node {
    /// Stable display id: `path:line:Owner::name` (line disambiguates
    /// `cfg`-duplicated items).
    pub fn id(&self) -> String {
        match &self.owner {
            Some(o) => format!("{}:{}:{}::{}", self.path, self.line, o, self.name),
            None => format!("{}:{}:{}", self.path, self.line, self.name),
        }
    }

    /// Short human label: `Owner::name` or `name`.
    pub fn label(&self) -> String {
        match &self.owner {
            Some(o) => format!("{}::{}", o, self.name),
            None => self.name.clone(),
        }
    }
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Caller node index.
    pub from: usize,
    /// Callee node index.
    pub to: usize,
    /// 1-based line of the call site (in the caller's file).
    pub line: usize,
}

/// Transitive crate-dependency map, from workspace manifests.
#[derive(Debug, Default)]
pub struct Deps {
    /// crate dir → crate dirs it (transitively) depends on.
    map: BTreeMap<String, BTreeSet<String>>,
}

impl Deps {
    /// Builds the map from `(rel_path, manifest_source)` pairs. Only
    /// `crates/<dir>/Cargo.toml` manifests contribute; dependency
    /// lines are recognised by their `cap-<dir>` package prefix
    /// (workspace convention: crate `crates/x` is package `cap-x`).
    pub fn from_manifests(manifests: &[(String, String)]) -> Self {
        let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (rel, src) in manifests {
            let segs: Vec<&str> = rel.split('/').collect();
            if segs.len() != 3 || segs[0] != "crates" || segs[2] != "Cargo.toml" {
                continue;
            }
            let dir = segs[1].to_string();
            let deps = direct.entry(dir).or_default();
            for line in src.lines() {
                let t = line.trim();
                let Some(rest) = t.strip_prefix("cap-") else {
                    continue;
                };
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '-' || *c == '_')
                    .collect();
                if !name.is_empty() {
                    deps.insert(name);
                }
            }
        }
        // Transitive closure (the workspace is tiny; fixpoint is fine).
        loop {
            let mut grew = false;
            let keys: Vec<String> = direct.keys().cloned().collect();
            for k in &keys {
                let reach: Vec<String> = direct[k]
                    .iter()
                    .flat_map(|d| direct.get(d).into_iter().flatten().cloned())
                    .collect();
                let set = direct.get_mut(k).expect("key exists");
                for r in reach {
                    grew |= set.insert(r);
                }
            }
            if !grew {
                break;
            }
        }
        Deps { map: direct }
    }

    /// Whether an edge from crate `a` into crate `b` is plausible.
    /// Unknown crates (fixtures, root facade: empty dir key) are
    /// permissive; same-crate is always allowed.
    pub fn allows(&self, a: &str, b: &str) -> bool {
        if a == b || a.is_empty() || b.is_empty() {
            return true;
        }
        match self.map.get(a) {
            Some(set) => set.contains(b),
            None => true,
        }
    }
}

/// The workspace call graph.
#[derive(Debug)]
pub struct Graph {
    /// Nodes, in deterministic (path, line) order.
    pub nodes: Vec<Node>,
    /// Edges, deduplicated and sorted by (from, to, line).
    pub edges: Vec<Edge>,
    /// Sorted adjacency: node index → callee node indices.
    pub adjacency: Vec<Vec<usize>>,
    /// Number of files that contributed nodes.
    pub files: usize,
}

/// Builds the graph. `files` must already exclude test paths and
/// vendored code (the caller controls the walk); test-region `fn`s are
/// excluded here.
pub fn build(files: &[ParsedFile], deps: &Deps) -> Graph {
    // Deterministic node order regardless of input order.
    let mut order: Vec<usize> = (0..files.len()).collect();
    order.sort_by(|&a, &b| files[a].path.cmp(&files[b].path));

    let mut nodes: Vec<Node> = Vec::new();
    for &fi in &order {
        let f = &files[fi];
        for (ii, item) in f.fns.iter().enumerate() {
            if item.test {
                continue;
            }
            nodes.push(Node {
                file: fi,
                path: f.path.clone(),
                name: item.name.clone(),
                owner: item.owner.clone(),
                line: item.line,
                col: item.col,
                item: ii,
            });
        }
    }

    // name → node indices.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        by_name.entry(n.name.as_str()).or_default().push(i);
    }
    // (file, item) → node index, for callers.
    let mut node_of: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        node_of.insert((n.file, n.item), i);
    }

    let mut edge_set: BTreeSet<Edge> = BTreeSet::new();
    for (caller_idx, caller) in nodes.iter().enumerate() {
        let f = &files[caller.file];
        let item = &f.fns[caller.item];
        let caller_crate = f.crate_dir();
        for call in &item.calls {
            let Some(cands) = by_name.get(call.name.as_str()) else {
                continue;
            };
            for &t in cands {
                if t == caller_idx {
                    continue; // self-recursion adds nothing to reachability
                }
                let target = &nodes[t];
                let tf = &files[target.file];
                if !deps.allows(caller_crate, crate_dir_of(&target.path)) {
                    continue;
                }
                if !qualifier_matches(call, caller.file == target.file, target, tf, f) {
                    continue;
                }
                edge_set.insert(Edge {
                    from: caller_idx,
                    to: t,
                    line: call.line,
                });
            }
        }
    }
    // node_of currently unused beyond construction sanity; keep the
    // lookup alive for future rules without warnings.
    let _ = node_of.len();

    let edges: Vec<Edge> = edge_set.into_iter().collect();
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for e in &edges {
        if !adjacency[e.from].contains(&e.to) {
            adjacency[e.from].push(e.to);
        }
    }
    for adj in &mut adjacency {
        adj.sort_unstable();
    }
    Graph {
        files: files.len(),
        nodes,
        edges,
        adjacency,
    }
}

/// Whether a call's qualification is compatible with a candidate.
fn qualifier_matches(
    call: &crate::parse::CallSite,
    same_file: bool,
    target: &Node,
    target_file: &ParsedFile,
    caller_file: &ParsedFile,
) -> bool {
    if call.method {
        // `.name(` — receiver type unknown; accept candidates that are
        // methods (have an owner). Free fns can't be `.`-called without
        // very unusual code.
        return target.owner.is_some();
    }
    if call.qualifier.is_empty() {
        // Bare call: same file, or imported by name.
        if same_file {
            return true;
        }
        return caller_file.uses.iter().any(|u| {
            (u.leaf == call.name || u.leaf == "*")
                && import_points_at(&u.path, target, target_file, u.leaf == "*")
        });
    }
    // Qualified call: resolve the head through imports (one level), then
    // match the last qualifier segment.
    let mut qual: Vec<String> = call.qualifier.clone();
    if let Some(u) = caller_file.uses.iter().find(|u| u.leaf == qual[0]) {
        let mut expanded = u.path.clone();
        expanded.extend(qual[1..].iter().cloned());
        qual = expanded;
    }
    let last = qual.last().map(String::as_str).unwrap_or("");
    if last == "self" || last == "crate" || last == "super" {
        return same_file || crate_dir_of(&caller_file.path) == crate_dir_of(&target.path);
    }
    // `Type::assoc(` — impl owner match.
    if target.owner.as_deref() == Some(last) {
        return true;
    }
    // `module::fn(` — file stem match.
    if target.owner.is_none() && target_file.file_stem() == last {
        return true;
    }
    // `cap_x::fn(` / `crate::fn(` — crate-head match on a free fn.
    if target.owner.is_none() {
        if let Some(dir) = crate_head_dir(last, caller_file) {
            return dir == crate_dir_of(&target.path) || dir.is_empty();
        }
    }
    false
}

/// Whether a `use` path plausibly points at `target`: its segments
/// must mention the target's crate, file stem, owner, or (for exact
/// imports) end at the item name.
fn import_points_at(path: &[String], target: &Node, target_file: &ParsedFile, glob: bool) -> bool {
    if !glob && path.last().map(String::as_str) != Some(target.name.as_str()) {
        // An aliased import may end elsewhere; require the name match
        // for exact imports, since leaf == call name was checked.
        if path.last().map(String::as_str) != target.owner.as_deref() {
            return false;
        }
    }
    let stem = target_file.file_stem();
    let dir = crate_dir_of(&target.path);
    path.iter().any(|seg| {
        seg == "crate"
            || seg == stem
            || Some(seg.as_str()) == target.owner.as_deref()
            || seg.strip_prefix("cap_") == Some(dir)
    }) || path.len() <= 1
}

/// Maps a path head to a crate dir: `cap_x` → `x`, `crate`/`self`/
/// `super` → the caller's crate. Returns `None` for `std`, external
/// names, or type-looking heads.
fn crate_head_dir<'a>(head: &'a str, caller_file: &'a ParsedFile) -> Option<&'a str> {
    if head == "crate" || head == "self" || head == "super" {
        return Some(crate_dir_of(&caller_file.path));
    }
    head.strip_prefix("cap_")
}

/// Deterministic text serialization.
pub fn render_text(g: &Graph) -> String {
    let mut out = String::new();
    out.push_str("caplint-graph v1\n");
    out.push_str(&format!(
        "meta fns {} edges {} files {}\n",
        g.nodes.len(),
        g.edges.len(),
        g.files
    ));
    for n in &g.nodes {
        out.push_str(&format!("fn {}\n", n.id()));
    }
    let mut lines: Vec<String> = g
        .edges
        .iter()
        .map(|e| {
            format!(
                "edge {} -> {} line {}\n",
                g.nodes[e.from].id(),
                g.nodes[e.to].id(),
                e.line
            )
        })
        .collect();
    lines.sort();
    for l in lines {
        out.push_str(&l);
    }
    out
}

/// Deterministic JSON serialization (same escaping rules as the
/// violation report).
pub fn render_json(g: &Graph) -> String {
    use crate::json_escape;
    let mut out = String::new();
    out.push_str("{\n  \"version\": 1,\n");
    out.push_str(&format!(
        "  \"fns\": {},\n  \"edges\": {},\n  \"files\": {},\n",
        g.nodes.len(),
        g.edges.len(),
        g.files
    ));
    out.push_str("  \"nodes\": [\n");
    for (i, n) in g.nodes.iter().enumerate() {
        let owner = match &n.owner {
            Some(o) => format!("\"{}\"", json_escape(o)),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"path\": \"{}\", \"name\": \"{}\", \"owner\": {}, \"line\": {}}}{}\n",
            json_escape(&n.id()),
            json_escape(&n.path),
            json_escape(&n.name),
            owner,
            n.line,
            if i + 1 < g.nodes.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"edge_list\": [\n");
    let mut rows: Vec<String> = g
        .edges
        .iter()
        .map(|e| {
            format!(
                "    {{\"from\": \"{}\", \"to\": \"{}\", \"line\": {}}}",
                json_escape(&g.nodes[e.from].id()),
                json_escape(&g.nodes[e.to].id()),
                e.line
            )
        })
        .collect();
    rows.sort();
    for (i, r) in rows.iter().enumerate() {
        out.push_str(r);
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn two_file_fixture() -> Vec<ParsedFile> {
        vec![
            parse_file(
                "crates/a/src/lib.rs",
                "use crate::util::helper;\npub fn entry() { helper(); other::leaf(); }\npub mod other;\n",
            ),
            parse_file(
                "crates/a/src/util.rs",
                "pub fn helper() { crate::other::leaf(); }\n",
            ),
            parse_file("crates/a/src/other.rs", "pub fn leaf() {}\n"),
        ]
    }

    fn edge_pairs(g: &Graph) -> Vec<(String, String)> {
        g.edges
            .iter()
            .map(|e| (g.nodes[e.from].label(), g.nodes[e.to].label()))
            .collect()
    }

    #[test]
    fn same_crate_edges_resolve_through_uses_and_qualifiers() {
        let files = two_file_fixture();
        let g = build(&files, &Deps::default());
        let pairs = edge_pairs(&g);
        assert!(
            pairs.contains(&("entry".into(), "helper".into())),
            "{pairs:?}"
        );
        assert!(
            pairs.contains(&("entry".into(), "leaf".into())),
            "{pairs:?}"
        );
        assert!(
            pairs.contains(&("helper".into(), "leaf".into())),
            "{pairs:?}"
        );
    }

    #[test]
    fn dep_filter_blocks_cross_crate_edges() {
        let files = vec![
            parse_file("crates/a/src/lib.rs", "pub fn go() { work(); }\n"),
            parse_file("crates/b/src/jobs.rs", "pub fn work() {}\n"),
        ];
        // Bare call, different file, no import: no edge even when deps allow.
        let g = build(&files, &Deps::default());
        assert!(edge_pairs(&g).is_empty(), "{:?}", edge_pairs(&g));
        // With an import it resolves, until the dep map forbids a→b.
        let files = vec![
            parse_file(
                "crates/a/src/lib.rs",
                "use cap_b::jobs::work;\npub fn go() { work(); }\n",
            ),
            parse_file("crates/b/src/jobs.rs", "pub fn work() {}\n"),
        ];
        let g = build(&files, &Deps::default());
        assert_eq!(edge_pairs(&g), vec![("go".into(), "work".into())]);
        let deps = Deps::from_manifests(&[
            (
                "crates/a/Cargo.toml".into(),
                "[dependencies]\ncap-c.workspace = true\n".into(),
            ),
            (
                "crates/b/Cargo.toml".into(),
                "[package]\nname = \"cap-b\"\n".into(),
            ),
            (
                "crates/c/Cargo.toml".into(),
                "[package]\nname = \"cap-c\"\n".into(),
            ),
        ]);
        let g = build(&files, &deps);
        assert!(edge_pairs(&g).is_empty(), "a does not depend on b");
    }

    #[test]
    fn method_calls_resolve_to_owned_fns_only() {
        let files = vec![
            parse_file(
                "crates/a/src/lib.rs",
                "pub fn go(x: &T) { x.run(); }\npub fn run() {}\n",
            ),
            parse_file("crates/a/src/t.rs", "impl T { pub fn run(&self) {} }\n"),
        ];
        let g = build(&files, &Deps::default());
        let pairs = edge_pairs(&g);
        assert_eq!(pairs, vec![("go".into(), "T::run".into())], "{pairs:?}");
    }

    #[test]
    fn test_fns_are_excluded_from_the_graph() {
        let files = vec![parse_file(
            "crates/a/src/lib.rs",
            "pub fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { super::live(); }\n}\n",
        )];
        let g = build(&files, &Deps::default());
        assert_eq!(g.nodes.len(), 1);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn serialization_is_byte_stable_and_order_independent() {
        let mut files = two_file_fixture();
        let g1 = build(&files, &Deps::default());
        files.reverse();
        let g2 = build(&files, &Deps::default());
        assert_eq!(render_text(&g1), render_text(&g2));
        assert_eq!(render_json(&g1), render_json(&g2));
        assert!(render_text(&g1).starts_with("caplint-graph v1\n"));
    }

    #[test]
    fn transitive_deps_close_over_intermediates() {
        let deps = Deps::from_manifests(&[
            (
                "crates/a/Cargo.toml".into(),
                "cap-b.workspace = true\n".into(),
            ),
            (
                "crates/b/Cargo.toml".into(),
                "cap-c.workspace = true\n".into(),
            ),
            ("crates/c/Cargo.toml".into(), "".into()),
        ]);
        assert!(deps.allows("a", "b"));
        assert!(deps.allows("a", "c"), "transitive");
        assert!(!deps.allows("c", "a"));
        assert!(deps.allows("zzz", "a"), "unknown crates are permissive");
    }
}
