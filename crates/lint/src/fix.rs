//! `caplint --fix`: mechanical rewrites for the rules with a drop-in
//! replacement.
//!
//! - **R002** — simple `std::fs::write(path, bytes)` call shapes →
//!   `cap_obs::fsx::atomic_write(path, bytes)`. Only the call form is
//!   rewritten (the needle must be followed by `(`), and only outside
//!   `fsx.rs` (the implementation) and `crates/lint/` (zero-dependency
//!   by design, so it cannot use cap_obs).
//! - **R003** — `HashMap` → `BTreeMap`, `HashSet` → `BTreeSet`
//!   (word-bounded, so `FxHashMap` or `HashMapLike` are untouched).
//! - **R004** — `Instant::now` (with any `std::time::` / `time::`
//!   qualification) → `cap_obs::clock::now`; and *qualified*
//!   `std::time::SystemTime::now()` / `time::SystemTime::now()` in
//!   simple call positions → `cap_obs::clock::now()`. The SystemTime
//!   rewrite changes the value's type to `Instant`, which is the
//!   workspace's only sanctioned time handle — but call sites feeding
//!   `.duration_since(UNIX_EPOCH)`-style epoch math are left alone
//!   (reported, not rewritten), and an unqualified `SystemTime::now()`
//!   is too ambiguous to touch.
//!
//! Rewrites reuse the scanner's masking, so comments, string literals,
//! and `#[cfg(test)]` regions are never touched, and the fixer edits
//! exactly the spans the scanner would flag. The fixer is idempotent:
//! its replacements contain none of the needle tokens, so a second
//! pass finds nothing — `--fix` runs the normal check afterwards to
//! prove it.

use crate::lexer::{find_word, mask};
use crate::walk;
use std::path::Path;

/// What one `--fix` pass changed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FixReport {
    /// Files rewritten on disk.
    pub files_changed: usize,
    /// Individual token replacements applied.
    pub replacements: usize,
}

/// One pending rewrite on a line: char span `start..end` → `with`.
struct Splice {
    start: usize,
    end: usize,
    with: &'static str,
}

/// Qualification prefixes folded into an `Instant::now` rewrite, so
/// `std::time::Instant::now()` becomes `cap_obs::clock::now()` rather
/// than `std::time::cap_obs::clock::now()`.
const INSTANT_PREFIXES: &[&str] = &["std::time::", "time::", "::"];

/// Collects R003 word-bounded replacements on one masked line.
fn r003_splices(masked_line: &str, out: &mut Vec<Splice>) {
    for (needle, with) in [("HashMap", "BTreeMap"), ("HashSet", "BTreeSet")] {
        let mut from = 0;
        while let Some(pos) = find_word(&masked_line[from..], needle) {
            let start = from + pos;
            out.push(Splice {
                start,
                end: start + needle.len(),
                with,
            });
            from = start + needle.len();
        }
    }
}

/// Collects R004 `Instant::now` replacements on one masked line,
/// extending each match leftwards over a known qualification prefix.
fn r004_splices(masked_line: &str, out: &mut Vec<Splice>) {
    const NEEDLE: &str = "Instant::now";
    let mut from = 0;
    while let Some(pos) = masked_line[from..].find(NEEDLE) {
        let mut start = from + pos;
        let end = start + NEEDLE.len();
        from = end;
        // `SystemTime::now`-style hits where `Instant` is the tail of a
        // longer identifier are not wall-clock reads of Instant.
        if start > 0 && masked_line.as_bytes()[start - 1].is_ascii_alphanumeric() {
            continue;
        }
        if start > 0 && masked_line.as_bytes()[start - 1] == b'_' {
            continue;
        }
        for prefix in INSTANT_PREFIXES {
            if masked_line[..start].ends_with(prefix) {
                start -= prefix.len();
                break;
            }
        }
        out.push(Splice {
            start,
            end,
            with: "cap_obs::clock::now",
        });
    }
}

/// Collects R002 `fs::write(` call-shape replacements on one masked
/// line, extending each match leftwards over a `std::` / `::` prefix.
fn r002_splices(masked_line: &str, out: &mut Vec<Splice>) {
    const NEEDLE: &str = "fs::write";
    let mut from = 0;
    while let Some(pos) = masked_line[from..].find(NEEDLE) {
        let mut start = from + pos;
        let end = start + NEEDLE.len();
        from = end;
        // Word boundary on the left (`dfs::write` is something else)…
        if start > 0 {
            let prev = masked_line.as_bytes()[start - 1];
            if prev.is_ascii_alphanumeric() || prev == b'_' {
                continue;
            }
        }
        // …and only the simple call shape on the right: anything else
        // (a path mention, a fn-pointer reference) stays reported-only.
        if !masked_line[end..].starts_with('(') {
            continue;
        }
        for prefix in ["std::", "::"] {
            if masked_line[..start].ends_with(prefix) {
                start -= prefix.len();
                break;
            }
        }
        out.push(Splice {
            start,
            end,
            with: "cap_obs::fsx::atomic_write",
        });
    }
}

/// Collects R004 `SystemTime::now()` replacements on one masked line.
/// Only fully qualified hits in simple call positions are rewritten;
/// `.duration_since` continuations keep their epoch semantics.
fn r004_system_time_splices(masked_line: &str, out: &mut Vec<Splice>) {
    const NEEDLE: &str = "SystemTime::now";
    let mut from = 0;
    while let Some(pos) = masked_line[from..].find(NEEDLE) {
        let hit = from + pos;
        let end = hit + NEEDLE.len();
        from = end;
        // Must be qualified: the unqualified form can't be told apart
        // from a local type alias without real name resolution.
        let mut start = hit;
        for prefix in ["std::time::", "time::"] {
            if masked_line[..hit].ends_with(prefix) {
                start = hit - prefix.len();
                break;
            }
        }
        if start == hit {
            continue;
        }
        // Simple call position: `()` immediately after, and no
        // `.duration_since` continuation consuming the SystemTime.
        let after = &masked_line[end..];
        if !after.starts_with("()") {
            continue;
        }
        if after["()".len()..]
            .trim_start()
            .starts_with(".duration_since")
        {
            continue;
        }
        out.push(Splice {
            start,
            end,
            with: "cap_obs::clock::now",
        });
    }
}

/// Applies sorted, non-overlapping char-span splices to a raw line.
/// Masking is char-per-char position preserving, so masked-line byte
/// offsets are char offsets on the raw line.
fn apply_splices(raw: &str, mut splices: Vec<Splice>) -> String {
    splices.sort_by_key(|s| s.start);
    let chars: Vec<char> = raw.chars().collect();
    let mut out = String::with_capacity(raw.len());
    let mut i = 0;
    for s in &splices {
        out.extend(chars[i..s.start.min(chars.len())].iter());
        out.push_str(s.with);
        i = s.end.min(chars.len());
    }
    out.extend(chars[i..].iter());
    out
}

/// Rewrites one source file's R003/R004 violations. Returns the fixed
/// text and replacement count, or `None` when nothing needed fixing.
/// `path` must be workspace-relative — rule scoping (obs exemption for
/// R004, test-dir exemption) is keyed on it, mirroring the scanner.
pub fn fix_source(path: &str, src: &str) -> Option<(String, usize)> {
    if crate::rules::is_test_path(path) {
        return None;
    }
    let fix_r004 = !path.starts_with("crates/obs/src/");
    // fsx.rs implements atomic_write with raw files; cap-lint is
    // zero-dependency and cannot import cap_obs (its own fs::write is
    // R002-baselined with that justification).
    let fix_r002 = !path.ends_with("fsx.rs") && !path.starts_with("crates/lint/");
    let masked = mask(src);
    let mut raw_lines: Vec<String> = src.split('\n').map(str::to_string).collect();
    let mut replacements = 0;
    for (idx, masked_line) in masked.code.iter().enumerate() {
        if masked.test[idx] || idx >= raw_lines.len() {
            continue;
        }
        let mut splices = Vec::new();
        r003_splices(masked_line, &mut splices);
        if fix_r004 {
            r004_splices(masked_line, &mut splices);
            r004_system_time_splices(masked_line, &mut splices);
        }
        if fix_r002 {
            r002_splices(masked_line, &mut splices);
        }
        if splices.is_empty() {
            continue;
        }
        replacements += splices.len();
        raw_lines[idx] = apply_splices(&raw_lines[idx], splices);
    }
    (replacements > 0).then(|| (raw_lines.join("\n"), replacements))
}

/// Applies [`fix_source`] to every Rust source under `root`, writing
/// changed files back in place.
///
/// # Errors
///
/// Returns a formatted message when the tree cannot be walked or a
/// file cannot be read or written.
pub fn fix_workspace(root: &Path) -> Result<FixReport, String> {
    let entries = walk::walk(root).map_err(|e| format!("walk {}: {e}", root.display()))?;
    let mut report = FixReport::default();
    for entry in &entries {
        if entry.manifest {
            continue;
        }
        let src =
            std::fs::read_to_string(&entry.abs).map_err(|e| format!("read {}: {e}", entry.rel))?;
        if let Some((fixed, n)) = fix_source(&entry.rel, &src) {
            // Source edits are not durable state: a torn write is
            // recoverable from git, and cap-lint is zero-dependency by
            // design so it cannot use cap_obs::fsx (R002 baselined).
            std::fs::write(&entry.abs, fixed).map_err(|e| format!("write {}: {e}", entry.rel))?;
            report.files_changed += 1;
            report.replacements += n;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{check_rust, RuleId};

    #[test]
    fn r003_rewrites_word_bounded_hash_collections() {
        let src = "use std::collections::{HashMap, HashSet};\n\
                   fn f(m: HashMap<u32, FxHashMap>, s: HashSet<u8>) {}\n\
                   // a HashMap in a comment stays\n\
                   let s = \"HashMap in a string stays\";\n";
        let (fixed, n) = fix_source("crates/x/src/lib.rs", src).unwrap();
        assert_eq!(n, 4);
        assert!(fixed.contains("use std::collections::{BTreeMap, BTreeSet};"));
        assert!(fixed.contains("m: BTreeMap<u32, FxHashMap>"), "{fixed}");
        assert!(fixed.contains("s: BTreeSet<u8>"));
        assert!(fixed.contains("// a HashMap in a comment stays"));
        assert!(fixed.contains("\"HashMap in a string stays\""));
    }

    #[test]
    fn r004_rewrites_qualified_instant_now_and_simple_system_time_calls() {
        let src = "let a = Instant::now();\n\
                   let b = std::time::Instant::now();\n\
                   let c = time::Instant::now();\n\
                   let d = std::time::SystemTime::now();\n";
        let (fixed, n) = fix_source("crates/x/src/lib.rs", src).unwrap();
        assert_eq!(n, 4);
        assert_eq!(fixed.matches("cap_obs::clock::now()").count(), 4);
        assert!(
            !fixed.contains("std::time::cap_obs"),
            "prefix folded: {fixed}"
        );
        assert!(!fixed.contains("SystemTime"), "{fixed}");
    }

    #[test]
    fn r004_system_time_epoch_math_and_unqualified_hits_stay() {
        let src = "let e = std::time::SystemTime::now().duration_since(UNIX_EPOCH);\n\
                   let f = std::time::SystemTime::now() .duration_since(UNIX_EPOCH);\n\
                   let g = SystemTime::now();\n\
                   let h: fn() -> SystemTime = std::time::SystemTime::now;\n";
        assert!(
            fix_source("crates/x/src/lib.rs", src).is_none(),
            "epoch math, unqualified, and non-call positions are reported, not rewritten"
        );
    }

    #[test]
    fn r002_rewrites_simple_fs_write_calls_only() {
        let src = "std::fs::write(&path, bytes)?;\n\
                   fs::write(path, b\"x\")?;\n\
                   let f: fn(_, _) -> _ = std::fs::write;\n\
                   dfs::write(path, bytes);\n";
        let (fixed, n) = fix_source("crates/x/src/lib.rs", src).unwrap();
        assert_eq!(n, 2, "{fixed}");
        assert!(fixed.starts_with("cap_obs::fsx::atomic_write(&path, bytes)?;"));
        assert!(fixed.contains("\ncap_obs::fsx::atomic_write(path, b\"x\")?;"));
        assert!(
            fixed.contains("let f: fn(_, _) -> _ = std::fs::write;"),
            "non-call positions stay: {fixed}"
        );
        assert!(fixed.contains("dfs::write(path, bytes);"), "{fixed}");
    }

    #[test]
    fn r002_fix_skips_fsx_and_the_lint_crate_itself() {
        let src = "std::fs::write(&path, bytes)?;\n";
        assert!(fix_source("crates/obs/src/fsx.rs", src).is_none());
        assert!(fix_source("crates/lint/src/fix.rs", src).is_none());
        assert!(fix_source("crates/x/src/lib.rs", src).is_some());
    }

    #[test]
    fn fix_is_idempotent_and_verified_by_the_scanner() {
        let src = "use std::collections::HashMap;\n\
                   let t = std::time::Instant::now();\n\
                   let s = std::time::SystemTime::now();\n\
                   std::fs::write(&p, b)?;\n";
        let path = "crates/x/src/lib.rs";
        assert!(!check_rust(path, src).is_empty(), "fixture must violate");
        let (fixed, _) = fix_source(path, src).unwrap();
        let remaining: Vec<_> = check_rust(path, &fixed)
            .into_iter()
            .filter(|v| v.rule == RuleId::R002 || v.rule == RuleId::R003 || v.rule == RuleId::R004)
            .collect();
        assert!(remaining.is_empty(), "scanner still fires: {remaining:?}");
        assert!(
            fix_source(path, &fixed).is_none(),
            "second pass must be a no-op"
        );
    }

    #[test]
    fn test_regions_and_obs_are_left_alone() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert!(
            fix_source("crates/x/src/lib.rs", src).is_none(),
            "cfg(test) regions are exempt from R003, so not rewritten"
        );
        let obs = "let t = Instant::now();\nlet m: HashMap<u8, u8>;\n";
        let (fixed, n) = fix_source("crates/obs/src/clock.rs", obs).unwrap();
        assert_eq!(n, 1, "only the R003 hit; obs may read the clock");
        assert!(fixed.contains("Instant::now()"));
        assert!(fixed.contains("BTreeMap<u8, u8>"));
        assert!(
            fix_source("tests/whatever.rs", src).is_none(),
            "test dirs are exempt entirely"
        );
    }

    #[test]
    fn trailing_newline_and_crlf_free_layout_survive() {
        let src = "use std::collections::HashMap;";
        let (fixed, _) = fix_source("crates/x/src/lib.rs", src).unwrap();
        assert_eq!(fixed, "use std::collections::BTreeMap;", "no newline added");
        let src_nl = "use std::collections::HashMap;\n";
        let (fixed_nl, _) = fix_source("crates/x/src/lib.rs", src_nl).unwrap();
        assert!(fixed_nl.ends_with(";\n"), "trailing newline kept");
    }
}
