//! Rule set R001–R007: each rule encodes one load-bearing workspace
//! contract (see DESIGN.md §11). Rules operate on [`MaskedFile`]s, so
//! string literals and comments never trigger false positives, and
//! test regions are exempted where the contract only binds shipping
//! code.

use crate::lexer::{find_word, mask};

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Threads only via the `cap-par` pool.
    R001,
    /// Durable writes only via `cap_obs::fsx::atomic_write`.
    R002,
    /// No iteration-order-nondeterministic hash collections.
    R003,
    /// Wall-clock reads only inside the telemetry layer.
    R004,
    /// No panicking `unwrap`/`expect` in hot-path crates.
    R005,
    /// Every `unsafe` must carry a `// SAFETY:` comment.
    R006,
    /// Only workspace-internal and `vendor/` dependencies.
    R007,
    /// No clock/thread/raw-fs sink reachable from a kernel entry point.
    R008,
    /// `fs::rename` only with reachable fsync/atomic_write evidence.
    R009,
    /// No order-sensitive float `+=` folds over parallel results.
    R010,
    /// `unsafe` only in `simd.rs` or `crates/par`, even with SAFETY.
    R011,
}

impl RuleId {
    /// All rules, in order.
    pub const ALL: [RuleId; 11] = [
        RuleId::R001,
        RuleId::R002,
        RuleId::R003,
        RuleId::R004,
        RuleId::R005,
        RuleId::R006,
        RuleId::R007,
        RuleId::R008,
        RuleId::R009,
        RuleId::R010,
        RuleId::R011,
    ];

    /// The stable `Rnnn` code.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::R001 => "R001",
            RuleId::R002 => "R002",
            RuleId::R003 => "R003",
            RuleId::R004 => "R004",
            RuleId::R005 => "R005",
            RuleId::R006 => "R006",
            RuleId::R007 => "R007",
            RuleId::R008 => "R008",
            RuleId::R009 => "R009",
            RuleId::R010 => "R010",
            RuleId::R011 => "R011",
        }
    }

    /// Short kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::R001 => "raw-thread-spawn",
            RuleId::R002 => "non-atomic-write",
            RuleId::R003 => "hash-collection",
            RuleId::R004 => "raw-wall-clock",
            RuleId::R005 => "panic-in-hot-path",
            RuleId::R006 => "undocumented-unsafe",
            RuleId::R007 => "external-dependency",
            RuleId::R008 => "kernel-reaches-impurity",
            RuleId::R009 => "rename-without-fsync",
            RuleId::R010 => "order-sensitive-reduction",
            RuleId::R011 => "unsafe-outside-simd",
        }
    }

    /// One-line explanation shown with every finding and by
    /// `--list-rules`.
    pub fn explain(self) -> &'static str {
        match self {
            RuleId::R001 => {
                "spawn threads only through the cap-par pool (crates/par); ad-hoc \
                 threads bypass CAP_THREADS determinism, the watchdog, and panic recovery"
            }
            RuleId::R002 => {
                "route durable writes through cap_obs::fsx::atomic_write (tmp+rename+fsync); \
                 raw std::fs::write/File::create/OpenOptions can leave torn files after a crash"
            }
            RuleId::R003 => {
                "std HashMap/HashSet iterate in random order, breaking bit-identical \
                 replay; use BTreeMap/BTreeSet or index-keyed Vecs"
            }
            RuleId::R004 => {
                "read the wall clock only inside crates/obs (use cap_obs::clock::now()); \
                 scattered Instant::now/SystemTime::now calls evade the telemetry layer"
            }
            RuleId::R005 => {
                "hot-path crates (tensor/nn/core/data/baselines/models) must surface \
                 failures through their Error types, not .unwrap()/.expect() panics"
            }
            RuleId::R006 => {
                "every `unsafe` must be immediately preceded by (or share a line with) \
                 a // SAFETY: comment stating the upheld invariants"
            }
            RuleId::R007 => {
                "Cargo.toml dependencies must be workspace crates or vendor/ paths \
                 (workspace = true / path = ...); no crates.io, git, or version deps"
            }
            RuleId::R008 => {
                "no wall-clock read, raw std::thread call, or raw std::fs mutation may \
                 be reachable through the call graph from a tensor/nn/scoring kernel \
                 entry point (matmul*, im2col/col2im, conv forward/backward, \
                 evaluate_scores*); crates/obs and crates/par are the audited homes"
            }
            RuleId::R009 => {
                "a fn calling fs::rename must show durability evidence (sync_all/\
                 sync_data/atomic_write/append_durable) in its body or a reachable \
                 callee — renaming an unsynced file is not crash-durable"
            }
            RuleId::R010 => {
                "float `+=` folds over parallel_map/run_tasks results depend on thread \
                 count unless routed through a fixed-order tree/wave reduction \
                 (tree_reduce*); bit-identical replay at any CAP_THREADS forbids them"
            }
            RuleId::R011 => {
                "unsafe is confined to simd.rs and crates/par even with a SAFETY \
                 comment; anywhere else it must be explicitly baselined in \
                 caplint.allow with a justification"
            }
        }
    }

    /// Parses an `Rnnn` code.
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.code() == s)
    }
}

/// One finding: a rule fired at `path:line`.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule that fired.
    pub rule: RuleId,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// 1-based char column where the match starts.
    pub col: usize,
    /// 1-based char column just past the match, so `col..end_col` is
    /// the caret-underline span.
    pub end_col: usize,
    /// The raw source line, for caret snippets in reports.
    pub snippet: String,
    /// What was matched, e.g. `` `thread::spawn` ``.
    pub what: String,
}

/// Converts a byte offset into `line` to a 1-based char column.
/// Masking blanks multi-byte chars to single spaces, so char columns
/// (not byte columns) are what raw and masked lines agree on.
fn char_col(line: &str, byte: usize) -> usize {
    line[..byte.min(line.len())].chars().count() + 1
}

/// True for paths whose whole content is test/demo code: integration
/// test dirs, benches, and examples. `#[cfg(test)]` regions inside
/// library files are handled separately by the lexer.
pub(crate) fn is_test_path(path: &str) -> bool {
    path.split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
}

struct TextRule {
    id: RuleId,
    /// `(needle, word_boundary)` patterns searched in masked code.
    patterns: &'static [(&'static str, bool)],
    applies: fn(&str) -> bool,
}

const TEXT_RULES: &[TextRule] = &[
    TextRule {
        id: RuleId::R001,
        patterns: &[("thread::spawn", false), ("thread::Builder", false)],
        applies: |p| !p.starts_with("crates/par/src/"),
    },
    TextRule {
        id: RuleId::R002,
        patterns: &[
            ("fs::write", false),
            ("File::create", false),
            ("OpenOptions", true),
        ],
        applies: |p| !p.ends_with("fsx.rs"),
    },
    TextRule {
        id: RuleId::R003,
        patterns: &[("HashMap", true), ("HashSet", true)],
        applies: |_| true,
    },
    TextRule {
        id: RuleId::R004,
        patterns: &[("Instant::now", false), ("SystemTime::now", false)],
        applies: |p| !p.starts_with("crates/obs/src/"),
    },
    TextRule {
        id: RuleId::R005,
        patterns: &[(".unwrap()", false), (".expect(", false)],
        applies: |p| {
            p.starts_with("crates/tensor/src/")
                || p.starts_with("crates/nn/src/")
                || p.starts_with("crates/core/src/")
                || p.starts_with("crates/data/src/")
                || p.starts_with("crates/baselines/src/")
                || p.starts_with("crates/models/src/")
        },
    },
];

/// Runs every Rust-source rule against one file.
///
/// `path` must be workspace-relative with `/` separators — the rules'
/// scoping (pool crate, fsx.rs, hot-path crates, test dirs) is keyed
/// on it.
pub fn check_rust(path: &str, src: &str) -> Vec<Violation> {
    let masked = mask(src);
    let raw_lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();
    let whole_file_test = is_test_path(path);

    for rule in TEXT_RULES {
        if !(rule.applies)(path) {
            continue;
        }
        if whole_file_test {
            continue;
        }
        for (idx, line) in masked.code.iter().enumerate() {
            if masked.test[idx] {
                continue;
            }
            for &(needle, word) in rule.patterns {
                let hit = if word {
                    find_word(line, needle)
                } else {
                    line.find(needle)
                };
                if let Some(pos) = hit {
                    let col = char_col(line, pos);
                    out.push(Violation {
                        rule: rule.id,
                        path: path.to_string(),
                        line: idx + 1,
                        col,
                        end_col: col + needle.chars().count(),
                        snippet: raw_lines.get(idx).copied().unwrap_or("").to_string(),
                        what: format!("`{needle}`"),
                    });
                    break;
                }
            }
        }
    }

    // R006 applies everywhere, including test code: an undocumented
    // unsafe block is equally suspect in a test. R011 additionally
    // confines (even documented) unsafe to its designated homes —
    // `simd.rs` and the pool crate — in shipping code.
    let r011_applies = !path.ends_with("simd.rs") && !path.starts_with("crates/par/src/");
    for (idx, line) in masked.code.iter().enumerate() {
        let Some(pos) = find_word(line, "unsafe") else {
            continue;
        };
        let col = char_col(line, pos);
        let snippet = raw_lines.get(idx).copied().unwrap_or("").to_string();
        if !has_safety_comment(&masked.comments, idx) {
            out.push(Violation {
                rule: RuleId::R006,
                path: path.to_string(),
                line: idx + 1,
                col,
                end_col: col + "unsafe".len(),
                snippet: snippet.clone(),
                what: "`unsafe` without `// SAFETY:`".to_string(),
            });
        }
        if r011_applies && !whole_file_test && !masked.test[idx] {
            out.push(Violation {
                rule: RuleId::R011,
                path: path.to_string(),
                line: idx + 1,
                col,
                end_col: col + "unsafe".len(),
                snippet,
                what: "`unsafe` outside simd.rs / crates/par".to_string(),
            });
        }
    }

    out.sort_by_key(|v| (v.line, v.rule));
    out
}

/// A `SAFETY:` marker counts when it appears in a comment on the
/// `unsafe` line itself or in the contiguous comment block directly
/// above it (blank code lines allowed in between only if they carry
/// comments).
fn has_safety_comment(comments: &[String], line: usize) -> bool {
    if comments[line].contains("SAFETY") {
        return true;
    }
    let mut i = line;
    while i > 0 {
        i -= 1;
        if comments[i].contains("SAFETY") {
            return true;
        }
        if comments[i].trim().is_empty() {
            return false;
        }
    }
    false
}

/// R007: checks one `Cargo.toml` for non-workspace dependencies.
///
/// Accepted dependency forms: `name.workspace = true`,
/// `name = { workspace = true, ... }`, and `name = { path = "..." }`
/// (all path deps in this workspace point at `crates/` or `vendor/`).
/// Anything with `version`, `git`, or a bare `"x.y"` requirement is an
/// external dependency and violates the zero-dependency guarantee.
pub fn check_manifest(path: &str, src: &str) -> Vec<Violation> {
    let lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();
    let mut in_dep_table = false; // inside [dependencies]-like section
    let mut dotted_dep: Option<(usize, bool)> = None; // [dependencies.foo]: (header line, seen ok key)

    for (idx, raw) in src.lines().enumerate() {
        let line = strip_toml_comment(raw);
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed.starts_with('[') {
            // Close a pending [dependencies.foo] table before the next
            // section starts.
            if let Some((hdr, ok)) = dotted_dep.take() {
                if !ok {
                    out.push(manifest_violation(path, hdr, &lines, "table dependency"));
                }
            }
            let section = trimmed.trim_matches(['[', ']']);
            let is_dep_section = section == "dependencies"
                || section == "dev-dependencies"
                || section == "build-dependencies"
                || section == "workspace.dependencies"
                || section.ends_with(".dependencies");
            let is_dotted_dep = !is_dep_section
                && (section.starts_with("dependencies.")
                    || section.starts_with("dev-dependencies.")
                    || section.starts_with("build-dependencies.")
                    || section.starts_with("workspace.dependencies."));
            in_dep_table = is_dep_section;
            if is_dotted_dep {
                dotted_dep = Some((idx, false));
            }
            continue;
        }
        if let Some((hdr, ok)) = dotted_dep.as_mut() {
            let _ = hdr;
            if trimmed.contains("workspace") && trimmed.contains("true")
                || trimmed.starts_with("path")
            {
                *ok = true;
            }
            continue;
        }
        if !in_dep_table {
            continue;
        }
        let ok = trimmed.contains("workspace = true")
            || trimmed.contains("workspace=true")
            || trimmed.contains("path = ")
            || trimmed.contains("path=");
        if !ok && trimmed.contains('=') {
            out.push(manifest_violation(path, idx, &lines, "dependency"));
        }
    }
    if let Some((hdr, ok)) = dotted_dep {
        if !ok {
            out.push(manifest_violation(path, hdr, &lines, "table dependency"));
        }
    }
    out
}

/// Builds an R007 finding at 0-based line `idx`, underlining the
/// comment-stripped content of the line.
fn manifest_violation(path: &str, idx: usize, lines: &[&str], kind: &str) -> Violation {
    let raw = lines.get(idx).copied().unwrap_or("");
    let stripped = strip_toml_comment(raw);
    let trimmed = stripped.trim();
    let col = stripped
        .find(|c: char| !c.is_whitespace())
        .map_or(1, |b| char_col(stripped, b));
    Violation {
        rule: RuleId::R007,
        path: path.to_string(),
        line: idx + 1,
        col,
        end_col: col + trimmed.chars().count().max(1),
        snippet: raw.to_string(),
        what: format!("{kind} without `workspace = true` or `path = ...`"),
    }
}

/// Removes a `#` comment that is not inside a quoted string.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_codes_roundtrip() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::parse(r.code()), Some(r));
            assert!(!r.explain().is_empty());
            assert!(!r.name().is_empty());
        }
        assert_eq!(RuleId::parse("R999"), None);
    }

    #[test]
    fn manifest_accepts_workspace_and_path() {
        let toml = "[dependencies]\ncap-obs.workspace = true\nrand = { path = \"../rand\" }\n";
        assert!(check_manifest("crates/x/Cargo.toml", toml).is_empty());
    }

    #[test]
    fn manifest_rejects_version_and_git() {
        let toml = "[dependencies]\nserde = \"1.0\"\nfoo = { git = \"https://x\" }\n";
        let v = check_manifest("crates/x/Cargo.toml", toml);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| x.rule == RuleId::R007));
        assert_eq!(v[0].line, 2);
        assert_eq!(v[1].line, 3);
    }

    #[test]
    fn manifest_ignores_package_metadata() {
        let toml = "[package]\nversion.workspace = true\nedition = \"2021\"\n";
        assert!(check_manifest("crates/x/Cargo.toml", toml).is_empty());
    }

    #[test]
    fn dotted_dependency_tables() {
        let ok = "[dependencies.cap-nn]\nworkspace = true\n";
        assert!(check_manifest("crates/x/Cargo.toml", ok).is_empty());
        let bad = "[dependencies.serde]\nversion = \"1\"\n";
        assert_eq!(check_manifest("crates/x/Cargo.toml", bad).len(), 1);
    }
}
