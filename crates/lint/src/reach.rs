//! Graph-based rules R008–R010: checks that need to see across files,
//! which the per-line scanner structurally cannot.
//!
//! - **R008** `kernel-reaches-impurity` — no wall-clock read, raw
//!   `std::thread` call, or raw `std::fs` mutation may be *reachable*
//!   (transitively, through the call graph) from a tensor/nn hot-path
//!   entry point. This generalizes R001/R002/R004 from "don't mention
//!   it in this file" to "can't reach it from a kernel": a kernel
//!   calling a helper in another crate that calls `thread::sleep` is
//!   invisible per-file, but breaks `CAP_THREADS` bit-identical timing
//!   guarantees all the same. `crates/obs` and `crates/par` are the
//!   designated homes for clock/thread machinery — kernels are
//!   *instrumented* with spans whose implementation reads the clock —
//!   so nodes there are neither scanned nor traversed.
//! - **R009** `rename-without-fsync` — a fn that calls `fs::rename`
//!   must have fsync evidence (`sync_all`/`sync_data`/`atomic_write`/
//!   `append_durable`) in its own body or in a reachable callee; a
//!   rename of an unsynced file is not durable after power loss.
//!   `fsx.rs` itself is the blessed implementation.
//! - **R010** `order-sensitive-reduction` — a float `+=` fold over
//!   results produced by `parallel_map`/`run_tasks` is flagged unless
//!   the fn routes through a blessed fixed-order `tree_reduce*`
//!   helper. Summation order must not depend on thread count.
//!
//! All three are over-approximations tuned to be *quiet on this
//! workspace*: unknown accumulator types don't fire R010, unknown
//! call targets simply add no edges, and the count-based allowlist
//! covers anything that is individually justified.

use crate::graph::{Deps, Graph};
use crate::lexer::find_word;
use crate::parse::ParsedFile;
use crate::rules::{RuleId, Violation};

/// Hot-path entry points: `(path predicate, name predicate)`.
/// A node is an entry when its file matches and its name matches.
fn is_entry(path: &str, name: &str) -> bool {
    (path == "crates/tensor/src/matmul.rs" && name.starts_with("matmul"))
        || (path == "crates/tensor/src/conv.rs"
            && (name.starts_with("im2col") || name.starts_with("col2im")))
        || (path == "crates/nn/src/layer/conv.rs" && (name == "forward" || name == "backward"))
        || (path == "crates/core/src/score.rs" && name.starts_with("evaluate_scores"))
}

/// Designated homes for clock/thread/IO machinery: not scanned for
/// sinks, not traversed through. Kernels may be instrumented with
/// spans (obs) and must use the pool (par); both read clocks/spawn
/// threads *by design*, behind their own audited doorways.
fn is_home(path: &str) -> bool {
    path.starts_with("crates/obs/src/") || path.starts_with("crates/par/src/")
}

/// R008 sink needles: `(needle, word_bounded, category)`.
const SINKS: &[(&str, bool, &str)] = &[
    ("Instant::now", false, "wall-clock"),
    ("SystemTime::now", false, "wall-clock"),
    ("thread::spawn", false, "raw thread"),
    ("thread::Builder", false, "raw thread"),
    ("thread::sleep", false, "raw thread"),
    ("thread::park", false, "raw thread"),
    ("thread::yield_now", false, "raw thread"),
    ("fs::write", false, "raw fs write"),
    ("File::create", false, "raw fs write"),
    ("OpenOptions", true, "raw fs write"),
    ("fs::rename", false, "raw fs write"),
];

/// Durability evidence needles for R009.
const FSYNC_EVIDENCE: &[&str] = &[
    "sync_all",
    "sync_data",
    "fsync",
    "atomic_write",
    "append_durable",
];

/// Runs all graph rules. `files` is the parsed workspace, `graph` was
/// built from it. Violations come back sorted by (path, line, rule).
pub fn check_graph(files: &[ParsedFile], graph: &Graph, deps: &Deps) -> Vec<Violation> {
    let _ = deps;
    let mut out = Vec::new();
    check_r008(files, graph, &mut out);
    check_r009(files, graph, &mut out);
    check_r010(files, graph, &mut out);
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

/// Scans a node's body for the first matching needle from `needles`.
/// Test-marked lines are skipped. Returns `(needle_idx, line, col)`.
fn body_find(
    files: &[ParsedFile],
    graph: &Graph,
    node: usize,
    needles: &[(&str, bool)],
) -> Option<(usize, usize, usize)> {
    let n = &graph.nodes[node];
    let f = &files[n.file];
    let (start, end) = f.fns[n.item].body?;
    for line_no in start..=end {
        let idx = line_no - 1;
        let Some(code) = f.masked.code.get(idx) else {
            break;
        };
        if f.masked.test.get(idx).copied().unwrap_or(false) {
            continue;
        }
        for (ni, &(needle, word)) in needles.iter().enumerate() {
            let hit = if word {
                find_word(code, needle)
            } else {
                code.find(needle)
            };
            if let Some(pos) = hit {
                let col = code[..pos].chars().count() + 1;
                return Some((ni, line_no, col));
            }
        }
    }
    None
}

/// BFS from `start` over the graph. `enter` filters which nodes are
/// traversed *through* (the start node is always visited). Returns
/// visit order and parent indices for chain reconstruction.
fn bfs(
    graph: &Graph,
    start: usize,
    enter: impl Fn(&str) -> bool,
) -> (Vec<usize>, Vec<Option<usize>>) {
    let mut visited = vec![false; graph.nodes.len()];
    let mut parent: Vec<Option<usize>> = vec![None; graph.nodes.len()];
    let mut order = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    visited[start] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in &graph.adjacency[u] {
            if !visited[v] && enter(&graph.nodes[v].path) {
                visited[v] = true;
                parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    (order, parent)
}

/// Renders `entry -> a -> b` from BFS parent pointers.
fn chain(graph: &Graph, parent: &[Option<usize>], mut node: usize) -> String {
    let mut names = vec![graph.nodes[node].label()];
    while let Some(p) = parent[node] {
        names.push(graph.nodes[p].label());
        node = p;
    }
    names.reverse();
    names.join(" -> ")
}

fn check_r008(files: &[ParsedFile], graph: &Graph, out: &mut Vec<Violation>) {
    let needles: Vec<(&str, bool)> = SINKS.iter().map(|&(n, w, _)| (n, w)).collect();
    for (i, node) in graph.nodes.iter().enumerate() {
        if !is_entry(&node.path, &node.name) || is_home(&node.path) {
            continue;
        }
        let (order, parent) = bfs(graph, i, |p| !is_home(p));
        // BFS order => the first hit reports the shortest call chain.
        let hit = order
            .iter()
            .find_map(|&v| body_find(files, graph, v, &needles).map(|h| (v, h)));
        let Some((via, (ni, sink_line, _))) = hit else {
            continue;
        };
        let (needle, _, category) = SINKS[ni];
        let f = &files[node.file];
        let what = if via == i {
            format!(
                "`{needle}` ({category}) in hot-path entry `{}`",
                node.label()
            )
        } else {
            format!(
                "`{needle}` ({category}) reachable from hot-path entry: {} (at {}:{})",
                chain(graph, &parent, via),
                graph.nodes[via].path,
                sink_line
            )
        };
        out.push(Violation {
            rule: RuleId::R008,
            path: node.path.clone(),
            line: node.line,
            col: node.col,
            end_col: node.col + node.name.chars().count(),
            snippet: f.raw.get(node.line - 1).cloned().unwrap_or_default(),
            what,
        });
    }
}

fn check_r009(files: &[ParsedFile], graph: &Graph, out: &mut Vec<Violation>) {
    let evidence: Vec<(&str, bool)> = FSYNC_EVIDENCE.iter().map(|&n| (n, false)).collect();
    for (i, node) in graph.nodes.iter().enumerate() {
        if node.path.ends_with("fsx.rs") {
            continue;
        }
        let Some((_, line, col)) = body_find(files, graph, i, &[("fs::rename", false)]) else {
            continue;
        };
        // Evidence may live in any reachable callee — including the
        // obs home: routing through fsx *is* the fix.
        let (order, _) = bfs(graph, i, |_| true);
        let synced = order
            .iter()
            .any(|&v| body_find(files, graph, v, &evidence).is_some());
        if synced {
            continue;
        }
        let f = &files[node.file];
        out.push(Violation {
            rule: RuleId::R009,
            path: node.path.clone(),
            line,
            col,
            end_col: col + "fs::rename".chars().count(),
            snippet: f.raw.get(line - 1).cloned().unwrap_or_default(),
            what: format!(
                "`fs::rename` in `{}` with no reachable fsync/atomic_write",
                node.label()
            ),
        });
    }
}

/// One masked body char with its source position.
struct BodyChar {
    c: char,
    line: usize,
    col: usize,
    test: bool,
}

/// Flattens a fn body's masked lines into a char vec (newlines
/// included so statement back-walks terminate naturally).
fn flatten_body(f: &ParsedFile, start: usize, end: usize) -> Vec<BodyChar> {
    let mut out = Vec::new();
    for line_no in start..=end {
        let idx = line_no - 1;
        let Some(code) = f.masked.code.get(idx) else {
            break;
        };
        let test = f.masked.test.get(idx).copied().unwrap_or(false);
        for (ci, c) in code.chars().enumerate() {
            out.push(BodyChar {
                c,
                line: line_no,
                col: ci + 1,
                test,
            });
        }
        out.push(BodyChar {
            c: '\n',
            line: line_no,
            col: code.chars().count() + 1,
            test,
        });
    }
    out
}

fn flat_index(body: &[BodyChar], line: usize, col: usize) -> Option<usize> {
    body.iter().position(|b| b.line == line && b.col == col)
}

/// Index just past the group closed by the delimiter matching
/// `body[open]` (`(` or `{`).
fn match_delim(body: &[BodyChar], open: usize) -> usize {
    let (o, c) = match body.get(open).map(|b| b.c) {
        Some('(') => ('(', ')'),
        Some('{') => ('{', '}'),
        _ => return open + 1,
    };
    let mut depth = 0i64;
    for (i, b) in body.iter().enumerate().skip(open) {
        if b.c == o {
            depth += 1;
        } else if b.c == c {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
    }
    body.len()
}

/// Walks backwards from `pos` to the statement start (`;`, `{`, `}`)
/// and returns the statement text before `pos`.
fn stmt_before(body: &[BodyChar], pos: usize) -> String {
    let mut start = pos;
    while start > 0 {
        let c = body[start - 1].c;
        if c == ';' || c == '{' || c == '}' {
            break;
        }
        start -= 1;
    }
    body[start..pos].iter().map(|b| b.c).collect()
}

/// Extracts bound identifiers from a `let`-statement prefix like
/// `let mut acc = ` or `let (a, b) = ` (empty when not a let).
fn let_bindings(stmt: &str) -> Vec<String> {
    let Some(pos) = find_word(stmt, "let") else {
        return Vec::new();
    };
    let after = &stmt[pos + 3..];
    let eq = after.find('=').unwrap_or(after.len());
    let pat = &after[..eq];
    let mut out = Vec::new();
    for word in pat
        .split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .filter(|w| !w.is_empty())
    {
        if word == "mut" || word == "let" {
            continue;
        }
        if word
            .chars()
            .next()
            .is_some_and(|c| c.is_lowercase() || c == '_')
        {
            out.push(word.to_string());
        }
        // Type ascription after `:` may add uppercase words; harmless
        // extra entries only widen matching slightly.
    }
    out
}

/// Float evidence classifier for an accumulator `let` initializer or a
/// `+=` right-hand side: `Some(true)` float, `Some(false)` integer,
/// `None` unknown.
fn float_class(text: &str) -> Option<bool> {
    if text.contains("f32") || text.contains("f64") {
        return Some(true);
    }
    // A `1.` / `0.0` style literal.
    let bytes = text.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'.'
            && i > 0
            && bytes[i - 1].is_ascii_digit()
            && bytes.get(i + 1).is_none_or(|n| !n.is_ascii_alphabetic())
        {
            return Some(true);
        }
    }
    for int_marker in [
        "usize", "isize", "u8", "u16", "u32", "u64", "i8", "i16", "i32", "i64",
    ] {
        if text.contains(int_marker) {
            return Some(false);
        }
    }
    let t = text.trim();
    if t == "0" || t.starts_with("0;") || t.starts_with("0 ") {
        return Some(false);
    }
    None
}

/// Trigger calls whose results must not be folded with bare `+=`.
const TRIGGERS: &[&str] = &["parallel_map", "run_tasks"];

/// Fixed-order reduction helpers that bless the whole fn.
fn is_blessed_call(name: &str) -> bool {
    name.starts_with("tree_reduce")
}

fn check_r010(files: &[ParsedFile], graph: &Graph, out: &mut Vec<Violation>) {
    for node in &graph.nodes {
        let f = &files[node.file];
        let item = &f.fns[node.item];
        let Some((start, end)) = item.body else {
            continue;
        };
        let triggers: Vec<_> = item
            .calls
            .iter()
            .filter(|c| TRIGGERS.contains(&c.name.as_str()))
            .collect();
        if triggers.is_empty() {
            continue;
        }
        if item.calls.iter().any(|c| is_blessed_call(&c.name)) {
            continue;
        }
        let body = flatten_body(f, start, end);
        // Trigger call positions, their argument spans, and the
        // identifiers their results land in.
        let mut first_trigger = usize::MAX;
        let mut arg_spans: Vec<(usize, usize)> = Vec::new();
        let mut bindings: Vec<String> = Vec::new();
        for t in &triggers {
            let Some(fpos) = flat_index(&body, t.line, t.col) else {
                continue;
            };
            first_trigger = first_trigger.min(fpos);
            // The `(` follows the name (possibly via `::<...>`); find it.
            let mut open = fpos;
            while open < body.len() && body[open].c != '(' && body[open].c != '\n' {
                open += 1;
            }
            let span_end = match_delim(&body, open);
            arg_spans.push((open, span_end));
            let stmt = stmt_before(&body, fpos);
            let lets = let_bindings(&stmt);
            if !lets.is_empty() {
                bindings.extend(lets);
            } else if t.name == "run_tasks" {
                // run_tasks returns (); its results live in captured
                // buffers. Track `let mut X = <vec-ish>` bindings that
                // the task closure captures.
                let arg_text: String = body[open..span_end].iter().map(|b| b.c).collect();
                for line_no in start..t.line {
                    let Some(code) = f.masked.code.get(line_no - 1) else {
                        continue;
                    };
                    if let Some(p) = find_word(code, "let") {
                        let rest = &code[p..];
                        if !(rest.contains("vec!")
                            || rest.contains("Vec::")
                            || rest.contains("with_capacity"))
                        {
                            continue;
                        }
                        for b in let_bindings(rest) {
                            if find_word(&arg_text, &b).is_some() {
                                bindings.push(b);
                            }
                        }
                    }
                }
            }
        }
        bindings.sort();
        bindings.dedup();
        if bindings.is_empty() || first_trigger == usize::MAX {
            continue;
        }
        // `for` loop headers in the body, with loop body spans.
        let loops = for_loops(&body);
        // Scan for `+=` after the first trigger, outside trigger args.
        let chars: Vec<char> = body.iter().map(|b| b.c).collect();
        for i in first_trigger..chars.len().saturating_sub(1) {
            if !(chars[i] == '+' && chars[i + 1] == '=') {
                continue;
            }
            if i > 0 && (chars[i - 1] == '+' || chars[i - 1] == '=') {
                continue;
            }
            if body[i].test {
                continue;
            }
            if arg_spans.iter().any(|&(s, e)| i >= s && i < e) {
                continue;
            }
            let line_no = body[i].line;
            let line_text = f.masked.code.get(line_no - 1).cloned().unwrap_or_default();
            let mentions = |text: &str| bindings.iter().any(|b| find_word(text, b).is_some());
            let relevant = mentions(&line_text)
                || loops
                    .iter()
                    .any(|l| i >= l.body_start && i < l.body_end && mentions(&l.header));
            if !relevant {
                continue;
            }
            // Float evidence: accumulator's `let` init, or the RHS.
            let lhs: String = {
                let stmt = stmt_before(&body, i);
                stmt.trim().to_string()
            };
            let acc_root = lhs
                .split(|c: char| !(c.is_alphanumeric() || c == '_'))
                .find(|w| !w.is_empty())
                .unwrap_or("")
                .to_string();
            let rhs_end = chars[i..]
                .iter()
                .position(|&c| c == ';' || c == '\n')
                .map_or(chars.len(), |p| i + p);
            let rhs: String = chars[i + 2..rhs_end].iter().collect();
            let init_class = acc_init_class(f, start, line_no, &acc_root);
            let is_float = match init_class {
                Some(cls) => cls,
                None => float_class(&rhs) == Some(true),
            };
            if !is_float {
                continue;
            }
            let col = body[i].col;
            out.push(Violation {
                rule: RuleId::R010,
                path: node.path.clone(),
                line: line_no,
                col,
                end_col: col + 2,
                snippet: f.raw.get(line_no - 1).cloned().unwrap_or_default(),
                what: format!(
                    "order-sensitive float `+=` over `{}` from `{}` in `{}` (use a fixed-order tree/wave reduction)",
                    bindings.join("`/`"),
                    triggers
                        .iter()
                        .map(|t| t.name.as_str())
                        .collect::<Vec<_>>()
                        .join("`/`"),
                    node.label()
                ),
            });
            break; // one finding per fn keeps reports readable
        }
    }
}

/// Finds the `let` initializer for `acc` between the body start and
/// `before_line`, and classifies it via [`float_class`].
fn acc_init_class(f: &ParsedFile, start: usize, before_line: usize, acc: &str) -> Option<bool> {
    if acc.is_empty() {
        return None;
    }
    for line_no in (start..before_line).rev() {
        let Some(code) = f.masked.code.get(line_no - 1) else {
            continue;
        };
        let Some(p) = find_word(code, "let") else {
            continue;
        };
        let rest = &code[p..];
        if !let_bindings(rest).iter().any(|b| b == acc) {
            continue;
        }
        let init = rest.split_once('=').map(|(_, r)| r).unwrap_or("");
        return float_class(init);
    }
    None
}

/// A `for` loop: its header text and the flat span of its body.
struct ForLoop {
    header: String,
    body_start: usize,
    body_end: usize,
}

/// Extracts `for <header> {` loops from a flattened body. The header
/// runs to the first `{` — a closure brace inside the header would cut
/// it short, which only makes matching more conservative.
fn for_loops(body: &[BodyChar]) -> Vec<ForLoop> {
    let chars: Vec<char> = body.iter().map(|b| b.c).collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 3 < chars.len() {
        let is_word_start = i == 0 || !(chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
        if is_word_start
            && chars[i] == 'f'
            && chars[i + 1] == 'o'
            && chars[i + 2] == 'r'
            && !(chars[i + 3].is_alphanumeric() || chars[i + 3] == '_')
        {
            let mut open = i + 3;
            while open < chars.len() && chars[open] != '{' && chars[open] != ';' {
                open += 1;
            }
            if open < chars.len() && chars[open] == '{' {
                let end = match_delim(body, open);
                out.push(ForLoop {
                    header: chars[i..open].iter().collect(),
                    body_start: open,
                    body_end: end,
                });
                i = open + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build, Deps};
    use crate::parse::parse_file;

    fn run(files: Vec<ParsedFile>) -> Vec<Violation> {
        let deps = Deps::default();
        let graph = build(&files, &deps);
        check_graph(&files, &graph, &deps)
    }

    #[test]
    fn r008_fires_through_a_cross_file_chain() {
        let v = run(vec![
            parse_file(
                "crates/tensor/src/matmul.rs",
                "use crate::util::stall;\npub fn matmul_x() { stall(); }\n",
            ),
            parse_file(
                "crates/tensor/src/util.rs",
                "pub fn stall() { std::thread::sleep(d); }\n",
            ),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::R008);
        assert_eq!(v[0].path, "crates/tensor/src/matmul.rs");
        assert!(v[0].what.contains("matmul_x -> stall"), "{}", v[0].what);
        assert!(v[0].what.contains("thread::sleep"));
    }

    #[test]
    fn r008_ignores_obs_home_and_non_entries() {
        let v = run(vec![
            parse_file(
                "crates/tensor/src/matmul.rs",
                "use cap_obs::span::enter;\npub fn matmul_x() { enter(); }\n",
            ),
            parse_file(
                "crates/obs/src/span.rs",
                "pub fn enter() { let t = std::time::Instant::now(); }\n",
            ),
            parse_file(
                "crates/fleet/src/sup.rs",
                "pub fn wait() { std::thread::sleep(d); }\n",
            ),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r009_requires_fsync_evidence_possibly_cross_file() {
        let bad = run(vec![parse_file(
            "crates/x/src/io.rs",
            "pub fn publish() { std::fs::rename(a, b); }\n",
        )]);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, RuleId::R009);
        let ok_local = run(vec![parse_file(
            "crates/x/src/io.rs",
            "pub fn publish() { f.sync_all(); std::fs::rename(a, b); }\n",
        )]);
        assert!(ok_local.is_empty(), "{ok_local:?}");
        let ok_cross = run(vec![
            parse_file(
                "crates/x/src/io.rs",
                "use crate::util::flush;\npub fn publish() { flush(f); std::fs::rename(a, b); }\n",
            ),
            parse_file(
                "crates/x/src/util.rs",
                "pub fn flush(f: &File) { f.sync_all(); }\n",
            ),
        ]);
        assert!(ok_cross.is_empty(), "{ok_cross:?}");
    }

    #[test]
    fn r010_flags_float_folds_but_not_int_or_blessed() {
        let bad = run(vec![parse_file(
            "crates/x/src/red.rs",
            "pub fn s(n: usize) -> f64 {\n    let parts = cap_par::parallel_map(n, |i| i as f64);\n    let mut acc = 0.0f64;\n    for p in parts {\n        acc += p;\n    }\n    acc\n}\n",
        )]);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert_eq!(bad[0].rule, RuleId::R010);
        assert_eq!(bad[0].line, 5);

        let int = run(vec![parse_file(
            "crates/x/src/red.rs",
            "pub fn s(n: usize) -> usize {\n    let parts = cap_par::parallel_map(n, |i| i);\n    let mut acc = 0usize;\n    for p in parts {\n        acc += p;\n    }\n    acc\n}\n",
        )]);
        assert!(int.is_empty(), "integer folds are fine: {int:?}");

        let blessed = run(vec![parse_file(
            "crates/x/src/red.rs",
            "pub fn s(n: usize) -> f64 {\n    let parts = cap_par::parallel_map(n, |i| i as f64);\n    let mut acc = 0.0f64;\n    for p in tree_reduce_pairs(parts) {\n        acc += p;\n    }\n    acc\n}\n",
        )]);
        assert!(
            blessed.is_empty(),
            "tree_reduce blesses the fn: {blessed:?}"
        );
    }

    #[test]
    fn r010_ignores_accumulation_inside_the_closure_or_before_the_call() {
        let v = run(vec![parse_file(
            "crates/x/src/red.rs",
            "pub fn s(xs: &[f32]) -> f32 {\n    let mut tau = 0.0f32;\n    for x in xs {\n        tau += x;\n    }\n    let parts = cap_par::parallel_map(4, |i| {\n        let mut local = 0.0f32;\n        local += i as f32;\n        local\n    });\n    tau\n}\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r010_tracks_run_tasks_captured_buffers() {
        let v = run(vec![parse_file(
            "crates/x/src/red.rs",
            "pub fn s() -> f32 {\n    let mut parts = vec![0.0f32; 4];\n    cap_par::run_tasks(make(&mut parts));\n    let mut acc = 0.0f32;\n    for p in &parts {\n        acc += p;\n    }\n    acc\n}\n",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::R010);
    }
}
