//! Deterministic workspace walker.
//!
//! Collects the `.rs` and `Cargo.toml` files a lint run must see, in a
//! stable sorted order (directory read order is OS-dependent, and lint
//! output must be byte-stable for CI diffing).

use std::path::{Path, PathBuf};

/// One file the checker will read.
#[derive(Debug)]
pub struct Entry {
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Workspace-relative path with `/` separators (rule scoping key).
    pub rel: String,
    /// Whether this is a `Cargo.toml` (R007) rather than Rust source.
    pub manifest: bool,
}

/// Directories never descended into: build output, VCS metadata, and
/// lint fixtures (fixtures must violate rules on purpose).
fn skip_dir(name: &str) -> bool {
    name == "target" || name == ".git" || name == "fixtures" || name.starts_with('.')
}

/// Walks `root`, returning entries sorted by relative path.
///
/// `vendor/` is special-cased: its Rust sources are third-party code
/// outside our contracts, but its `Cargo.toml`s still participate in
/// R007 (a vendored crate sprouting a crates.io dependency would break
/// the zero-dependency guarantee just the same).
pub fn walk(root: &Path) -> std::io::Result<Vec<Entry>> {
    let mut out = Vec::new();
    descend(root, root, false, &mut out)?;
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn descend(root: &Path, dir: &Path, in_vendor: bool, out: &mut Vec<Entry>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for e in entries {
        let path = e.path();
        let name = e.file_name().to_string_lossy().into_owned();
        let ty = e.file_type()?;
        if ty.is_dir() {
            if skip_dir(&name) {
                continue;
            }
            let vendor = in_vendor || (name == "vendor" && path.parent() == Some(root));
            descend(root, &path, vendor, out)?;
        } else if ty.is_file() {
            let manifest = name == "Cargo.toml";
            let rust = name.ends_with(".rs");
            // Keep manifests anywhere; keep .rs only outside vendor/.
            if !(manifest || (rust && !in_vendor)) {
                continue;
            }
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(Entry {
                abs: path,
                rel,
                manifest,
            });
        }
    }
    Ok(())
}
