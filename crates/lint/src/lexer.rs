//! A minimal Rust source "lexer" for lint purposes.
//!
//! This is not a full tokenizer: it produces, per source line, the
//! *code* text (with comments and string-literal contents blanked to
//! spaces), the *comment* text (so `// SAFETY:` annotations can be
//! found), and a flag saying whether the line sits inside a test
//! region (`#[cfg(test)]` / `#[test]` item bodies).
//!
//! Blanking preserves byte positions line-by-line, so every rule match
//! reports the original line number. The scanner understands:
//!
//! - line comments (`//`, `///`, `//!`) and nested block comments
//! - string literals with escapes, byte strings, and raw strings with
//!   any number of `#` guards (`r"…"`, `r##"…"##`, `br#"…"#`)
//! - char literals vs. lifetimes (`'a'` vs. `'a`)

/// Per-line view of a masked source file.
#[derive(Debug)]
pub struct MaskedFile {
    /// Source lines with comments and string contents replaced by
    /// spaces (string delimiters are kept so `""` still reads as a
    /// literal).
    pub code: Vec<String>,
    /// Comment text found on each line (empty when the line has none).
    pub comments: Vec<String>,
    /// Whether each line lies inside a `#[cfg(test)]` / `#[test]`
    /// region (attribute line through the end of the annotated item).
    pub test: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str {
        raw_hashes: Option<u32>,
        escaped: bool,
    },
    CharLit {
        escaped: bool,
    },
}

/// Masks `src` into per-line code/comment views and marks test regions.
pub fn mask(src: &str) -> MaskedFile {
    let chars: Vec<char> = src.chars().collect();
    let mut code_lines = Vec::new();
    let mut comment_lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let mut i = 0usize;

    let flush = |code: &mut String,
                 comment: &mut String,
                 code_lines: &mut Vec<String>,
                 comment_lines: &mut Vec<String>| {
        code_lines.push(std::mem::take(code));
        comment_lines.push(std::mem::take(comment));
    };

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // A line comment ends at the newline; strings and block
            // comments simply continue on the next line.
            if state == State::LineComment {
                state = State::Code;
            }
            flush(&mut code, &mut comment, &mut code_lines, &mut comment_lines);
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Str {
                        raw_hashes: None,
                        escaped: false,
                    };
                    code.push('"');
                    i += 1;
                } else if let Some((skip, hashes)) = raw_string_open(&chars, i) {
                    state = State::Str {
                        raw_hashes: Some(hashes),
                        escaped: false,
                    };
                    for _ in 0..skip {
                        code.push(' ');
                    }
                    code.push('"');
                    i += skip + 1;
                } else if c == 'b' && next == Some('"') && !prev_is_ident(&chars, i) {
                    state = State::Str {
                        raw_hashes: None,
                        escaped: false,
                    };
                    code.push_str(" \"");
                    i += 2;
                } else if c == '\'' {
                    // Distinguish a char literal from a lifetime: 'x'
                    // closes within two chars (or starts an escape);
                    // 'ident does not.
                    let is_char = matches!(next, Some('\\'))
                        || matches!(chars.get(i + 2), Some('\'') if next != Some('\''));
                    if is_char {
                        state = State::CharLit { escaped: false };
                        code.push('\'');
                        i += 1;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::LineComment | State::BlockComment(_) => {
                if let State::BlockComment(depth) = state {
                    let next = chars.get(i + 1).copied();
                    if c == '*' && next == Some('/') {
                        let d = depth - 1;
                        state = if d == 0 {
                            State::Code
                        } else {
                            State::BlockComment(d)
                        };
                        code.push_str("  ");
                        comment.push_str("  ");
                        i += 2;
                        continue;
                    }
                    if c == '/' && next == Some('*') {
                        state = State::BlockComment(depth + 1);
                        code.push_str("  ");
                        comment.push_str("  ");
                        i += 2;
                        continue;
                    }
                }
                comment.push(c);
                code.push(' ');
                i += 1;
            }
            State::Str {
                raw_hashes,
                escaped,
            } => match raw_hashes {
                None => {
                    if escaped {
                        state = State::Str {
                            raw_hashes,
                            escaped: false,
                        };
                    } else if c == '\\' {
                        state = State::Str {
                            raw_hashes,
                            escaped: true,
                        };
                    } else if c == '"' {
                        state = State::Code;
                        code.push('"');
                        i += 1;
                        continue;
                    }
                    code.push(' ');
                    i += 1;
                }
                Some(hashes) => {
                    if c == '"' && closes_raw(&chars, i, hashes) {
                        state = State::Code;
                        code.push('"');
                        for _ in 0..hashes {
                            code.push(' ');
                        }
                        i += 1 + hashes as usize;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
            },
            State::CharLit { escaped } => {
                if escaped {
                    state = State::CharLit { escaped: false };
                } else if c == '\\' {
                    state = State::CharLit { escaped: true };
                } else if c == '\'' {
                    state = State::Code;
                    code.push('\'');
                    i += 1;
                    continue;
                }
                code.push(' ');
                i += 1;
            }
        }
    }
    // A trailing newline already flushed its line; only a final
    // unterminated line still needs flushing (keeps the per-line
    // arrays aligned with `str::lines`).
    if !src.is_empty() && !src.ends_with('\n') {
        flush(&mut code, &mut comment, &mut code_lines, &mut comment_lines);
    }

    let test = mark_test_regions(&code_lines);
    MaskedFile {
        code: code_lines,
        comments: comment_lines,
        test,
    }
}

/// Returns `(chars_before_quote, hash_count)` when `chars[i]` starts a
/// raw (byte) string opener like `r"`, `r##"`, or `br#"`.
fn raw_string_open(chars: &[char], i: usize) -> Option<(usize, u32)> {
    if prev_is_ident(chars, i) {
        return None;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((j - i, hashes))
    } else {
        None
    }
}

/// True when the `"` at `i` is followed by `hashes` `#` characters.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Marks the line ranges covered by `#[cfg(test)]` / `#[test]`
/// annotated items: from the attribute line through the matching `}`
/// of the item body (or the `;` of a body-less item).
fn mark_test_regions(code_lines: &[String]) -> Vec<bool> {
    let mut test = vec![false; code_lines.len()];
    // Flatten with line indices so region scans can cross lines.
    let mut flat: Vec<(usize, char)> = Vec::new();
    for (ln, line) in code_lines.iter().enumerate() {
        for c in line.chars() {
            flat.push((ln, c));
        }
        flat.push((ln, '\n'));
    }
    let mut i = 0usize;
    while i < flat.len() {
        if flat[i].1 == '#' && matches!(flat.get(i + 1), Some(&(_, '['))) {
            let attr_start_line = flat[i].0;
            let (inner, after) = read_attr(&flat, i + 1);
            if is_test_attr(&inner) {
                let end = mark_item(&flat, after);
                let end_line = flat
                    .get(end.min(flat.len() - 1))
                    .map_or(attr_start_line, |t| t.0);
                for t in test.iter_mut().take(end_line + 1).skip(attr_start_line) {
                    *t = true;
                }
                i = end + 1;
                continue;
            }
            i = after;
            continue;
        }
        i += 1;
    }
    test
}

/// Reads a `[...]` attribute starting at the opening bracket; returns
/// the inner text and the index just past the closing bracket.
fn read_attr(flat: &[(usize, char)], open: usize) -> (String, usize) {
    let mut depth = 0i32;
    let mut inner = String::new();
    let mut i = open;
    while i < flat.len() {
        let c = flat[i].1;
        if c == '[' {
            depth += 1;
            if depth > 1 {
                inner.push(c);
            }
        } else if c == ']' {
            depth -= 1;
            if depth == 0 {
                return (inner, i + 1);
            }
            inner.push(c);
        } else if depth >= 1 {
            inner.push(c);
        }
        i += 1;
    }
    (inner, i)
}

/// Recognises attributes that gate an item to test builds.
fn is_test_attr(inner: &str) -> bool {
    let inner = inner.trim();
    if inner == "test" {
        return true;
    }
    inner.starts_with("cfg") && has_word(inner, "test")
}

/// True when `word` appears in `text` delimited by non-identifier chars.
pub fn has_word(text: &str, word: &str) -> bool {
    find_word(text, word).is_some()
}

/// Byte offset of the first occurrence of `word` in `text` delimited
/// by non-identifier chars. Masking is char-per-char position
/// preserving, so an offset found on a masked line locates the same
/// match on the raw line.
pub fn find_word(text: &str, word: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(pos) = text[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let left_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let right_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if left_ok && right_ok {
            return Some(start);
        }
        from = start + 1;
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Scans forward from the end of a test attribute over any further
/// attributes, then consumes the annotated item: up to the matching
/// `}` of its first brace, or the terminating `;` when no brace opens
/// first. Returns the index of the final char of the item.
fn mark_item(flat: &[(usize, char)], mut i: usize) -> usize {
    // Skip whitespace and subsequent attributes (#[test] #[ignore] fn ..).
    loop {
        while i < flat.len() && flat[i].1.is_whitespace() {
            i += 1;
        }
        if i < flat.len() && flat[i].1 == '#' && matches!(flat.get(i + 1), Some(&(_, '['))) {
            let (_, after) = read_attr(flat, i + 1);
            i = after;
        } else {
            break;
        }
    }
    let mut depth = 0i32;
    while i < flat.len() {
        match flat[i].1 {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            ';' if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    flat.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let m = mask("let x = \"thread::spawn\"; // thread::spawn\nlet y = 1;\n");
        assert!(!m.code[0].contains("thread::spawn"));
        assert!(m.comments[0].contains("thread::spawn"));
        assert!(m.code[1].contains("let y = 1;"));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let m = mask("let s = r##\"HashMap \"# inner\"##; HashSet\n");
        assert!(!m.code[0].contains("HashMap"));
        assert!(m.code[0].contains("HashSet"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let m = mask("fn f<'a>(x: &'a str) { let q = '\"'; let z = \"Instant::now\"; }\n");
        assert!(m.code[0].contains("fn f<'a>"));
        assert!(!m.code[0].contains("Instant::now"));
    }

    #[test]
    fn nested_block_comments() {
        let m = mask("/* outer /* inner */ still comment */ code();\n");
        assert!(m.code[0].contains("code();"));
        assert!(!m.code[0].contains("outer"));
        assert!(m.comments[0].contains("inner"));
    }

    #[test]
    fn cfg_test_mod_region() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}\n";
        let m = mask(src);
        assert_eq!(m.test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn test_attr_fn_region() {
        let src = "#[test]\nfn t() {\n    body();\n}\nfn live() {}\n";
        let m = mask(src);
        assert_eq!(m.test, vec![true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_use_statement() {
        let src = "#[cfg(test)]\nuse std::thread;\nfn live() {}\n";
        let m = mask(src);
        assert_eq!(m.test, vec![true, true, false]);
    }

    #[test]
    fn cfg_feature_is_not_test() {
        let src = "#[cfg(feature = \"x\")]\nfn gated() {}\n";
        let m = mask(src);
        assert_eq!(m.test, vec![false, false]);
    }

    #[test]
    fn stacked_attributes_before_test_fn() {
        let src = "#[test]\n#[ignore]\nfn t() {\n    body();\n}\n";
        let m = mask(src);
        assert!(m.test[..4].iter().all(|&t| t));
    }
}
