//! `caplint` — mechanical enforcement of the workspace's determinism,
//! atomic-IO, and threading contracts (rules R001–R007).
//!
//! ```text
//! caplint [--root DIR] [--allow FILE] [--json] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean, `1` non-baselined violations, `2` stale
//! baseline entries (violation fixed but entry remains), `3` usage or
//! I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    root: PathBuf,
    allow: Option<PathBuf>,
    json: bool,
    list_rules: bool,
    fix: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        allow: None,
        json: false,
        list_rules: false,
        fix: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--allow" => {
                opts.allow = Some(PathBuf::from(args.next().ok_or("--allow needs a file")?));
            }
            "--json" => opts.json = true,
            "--list-rules" => opts.list_rules = true,
            "--fix" => opts.fix = true,
            "--help" | "-h" => {
                println!(
                    "caplint [--root DIR] [--allow FILE] [--json] [--list-rules] [--fix]\n\n\
                     Checks every Rust source and Cargo.toml under DIR (default .)\n\
                     against rules R001-R007; see --list-rules. The baseline defaults\n\
                     to DIR/caplint.allow when present.\n\n\
                     --fix rewrites R003 (HashMap/HashSet -> BTreeMap/BTreeSet) and\n\
                     R004 (Instant::now -> cap_obs::clock::now) in place, then runs\n\
                     the normal check to verify; the rewrite is idempotent.\n\n\
                     Exit codes: 0 clean, 1 violations, 2 stale baseline, 3 usage/IO error."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(opts)
}

fn run() -> Result<i32, String> {
    let opts = parse_args()?;
    if opts.list_rules {
        print!("{}", cap_lint::render_rule_list());
        return Ok(0);
    }
    if opts.fix {
        let report = cap_lint::fix::fix_workspace(&opts.root)?;
        eprintln!(
            "caplint --fix: {} replacement(s) in {} file(s); re-checking",
            report.replacements, report.files_changed
        );
    }
    let allow_path = opts.allow.clone().or_else(|| {
        let default = opts.root.join("caplint.allow");
        default.exists().then_some(default)
    });
    let allow = match &allow_path {
        Some(p) => {
            let src =
                std::fs::read_to_string(p).map_err(|e| format!("read {}: {e}", p.display()))?;
            cap_lint::allow::parse(&src)?
        }
        None => Vec::new(),
    };
    let outcome = cap_lint::check_workspace(&opts.root, &allow)?;
    if opts.json {
        println!("{}", cap_lint::render_json(&outcome));
    } else {
        print!("{}", cap_lint::render_human(&outcome));
    }
    Ok(outcome.exit_code())
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => ExitCode::from(u8::try_from(code).unwrap_or(3)),
        Err(msg) => {
            eprintln!("caplint: {msg}");
            ExitCode::from(3)
        }
    }
}
