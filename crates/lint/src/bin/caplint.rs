//! `caplint` — mechanical enforcement of the workspace's determinism,
//! atomic-IO, and threading contracts (rules R001–R011).
//!
//! ```text
//! caplint [--root DIR] [--allow FILE] [--json] [--list-rules]
//! caplint graph [--root DIR] [--json]
//! ```
//!
//! Exit codes: `0` clean, `1` non-baselined violations, `2` stale
//! baseline entries (violation fixed but entry remains), `3` usage or
//! I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    root: PathBuf,
    allow: Option<PathBuf>,
    json: bool,
    list_rules: bool,
    fix: bool,
    graph: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        allow: None,
        json: false,
        list_rules: false,
        fix: false,
        graph: false,
    };
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("graph") {
        opts.graph = true;
        args.next();
    }
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--allow" if !opts.graph => {
                opts.allow = Some(PathBuf::from(args.next().ok_or("--allow needs a file")?));
            }
            "--json" => opts.json = true,
            "--list-rules" if !opts.graph => opts.list_rules = true,
            "--fix" if !opts.graph => opts.fix = true,
            "--help" | "-h" => {
                println!(
                    "caplint [--root DIR] [--allow FILE] [--json] [--list-rules] [--fix]\n\
                     caplint graph [--root DIR] [--json]\n\n\
                     Checks every Rust source and Cargo.toml under DIR (default .)\n\
                     against rules R001-R011; see --list-rules. R008-R010 run on an\n\
                     approximate workspace call graph built from an item-level parse\n\
                     of every non-test source. The baseline defaults to\n\
                     DIR/caplint.allow when present.\n\n\
                     caplint graph prints that call graph (deterministic text, or\n\
                     JSON with --json) and exits 0.\n\n\
                     --fix rewrites R003 (HashMap/HashSet -> BTreeMap/BTreeSet),\n\
                     R004 (Instant::now / SystemTime::now -> cap_obs::clock::now),\n\
                     and R002 (simple std::fs::write calls ->\n\
                     cap_obs::fsx::atomic_write) in place, then runs the normal\n\
                     check to verify; the rewrite is idempotent.\n\n\
                     Exit codes: 0 clean, 1 violations, 2 stale baseline, 3 usage/IO error."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(opts)
}

fn run() -> Result<i32, String> {
    let opts = parse_args()?;
    if opts.graph {
        let g = cap_lint::load_graph(&opts.root)?;
        let out = if opts.json {
            cap_lint::graph::render_json(&g)
        } else {
            cap_lint::graph::render_text(&g)
        };
        // The graph runs to thousands of lines and is routinely piped
        // into `head`/`grep -m`; a closed pipe is success, not a panic.
        use std::io::Write as _;
        let _ = std::io::stdout().write_all(out.as_bytes());
        return Ok(0);
    }
    if opts.list_rules {
        print!("{}", cap_lint::render_rule_list());
        return Ok(0);
    }
    if opts.fix {
        let report = cap_lint::fix::fix_workspace(&opts.root)?;
        eprintln!(
            "caplint --fix: {} replacement(s) in {} file(s); re-checking",
            report.replacements, report.files_changed
        );
    }
    let allow_path = opts.allow.clone().or_else(|| {
        let default = opts.root.join("caplint.allow");
        default.exists().then_some(default)
    });
    let allow = match &allow_path {
        Some(p) => {
            let src =
                std::fs::read_to_string(p).map_err(|e| format!("read {}: {e}", p.display()))?;
            cap_lint::allow::parse(&src)?
        }
        None => Vec::new(),
    };
    let outcome = cap_lint::check_workspace(&opts.root, &allow)?;
    if opts.json {
        println!("{}", cap_lint::render_json(&outcome));
    } else {
        print!("{}", cap_lint::render_human(&outcome));
    }
    Ok(outcome.exit_code())
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => ExitCode::from(u8::try_from(code).unwrap_or(3)),
        Err(msg) => {
            eprintln!("caplint: {msg}");
            ExitCode::from(3)
        }
    }
}
