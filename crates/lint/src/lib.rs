#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

//! `cap-lint` — the workspace invariant checker behind the `caplint`
//! binary.
//!
//! PRs 1–4 established the contracts this workspace runs on: results
//! are bit-identical at any `CAP_THREADS`, durable writes go through
//! `cap_obs::fsx::atomic_write`, threads come only from the `cap-par`
//! pool, and nothing depends on crates.io. `caplint` turns those
//! contracts from tribal knowledge into a mechanical CI gate: a small
//! comment/string/raw-string-aware scanner (no rustc, no syn — this
//! crate has **zero** dependencies, so a broken workspace crate can
//! never take the lint gate down with it) walks every Rust source and
//! `Cargo.toml` and enforces rules R001–R007 (see [`RuleId`]).
//!
//! Pre-existing accepted violations live in a checked-in
//! [`caplint.allow` baseline](allow) with per-file expected counts and
//! mandatory justifications; new violations and stale baseline entries
//! both fail the run, so the baseline only ever shrinks.
//!
//! ```text
//! cargo run -p cap-lint --bin caplint -- --root . --json
//! ```

pub mod allow;
pub mod fix;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod reach;
pub mod rules;
pub mod walk;

use allow::AllowEntry;
use rules::{RuleId, Violation};
use std::collections::BTreeMap;
use std::path::Path;

/// A baseline entry that no longer matches reality and must be
/// tightened or removed.
#[derive(Debug, Clone)]
pub struct StaleEntry {
    /// The stale allowlist entry.
    pub entry: AllowEntry,
    /// How many violations actually remain (strictly fewer than
    /// `entry.count`).
    pub found: usize,
}

/// Result of checking a workspace: what fires, what the baseline
/// suppressed, and what parts of the baseline have gone stale.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Violations not covered by the baseline.
    pub violations: Vec<Violation>,
    /// Baseline entries whose expected count exceeds reality.
    pub stale: Vec<StaleEntry>,
    /// Number of violations suppressed by the baseline.
    pub suppressed: usize,
    /// Number of files scanned.
    pub files_checked: usize,
    /// Number of `fn` nodes in the workspace call graph (0 when only
    /// [`apply_baseline`] ran without a graph pass).
    pub graph_fns: usize,
    /// Number of call edges in the workspace call graph.
    pub graph_edges: usize,
}

impl Outcome {
    /// Process exit code: 0 clean, 1 violations, 2 stale-baseline-only.
    pub fn exit_code(&self) -> i32 {
        if !self.violations.is_empty() {
            1
        } else if !self.stale.is_empty() {
            2
        } else {
            0
        }
    }
}

/// Checks every Rust source and manifest reachable from `root`,
/// applying the baseline in `allow` (pass `&[]` for none).
///
/// # Errors
///
/// Returns a formatted message when the tree cannot be walked or a
/// file cannot be read.
pub fn check_workspace(root: &Path, allow: &[AllowEntry]) -> Result<Outcome, String> {
    let entries = walk::walk(root).map_err(|e| format!("walk {}: {e}", root.display()))?;
    let mut raw: Vec<Violation> = Vec::new();
    let mut files_checked = 0usize;
    let mut parsed: Vec<parse::ParsedFile> = Vec::new();
    let mut manifests: Vec<(String, String)> = Vec::new();
    for entry in &entries {
        let src =
            std::fs::read_to_string(&entry.abs).map_err(|e| format!("read {}: {e}", entry.rel))?;
        files_checked += 1;
        if entry.manifest {
            raw.extend(rules::check_manifest(&entry.rel, &src));
            manifests.push((entry.rel.clone(), src));
        } else {
            raw.extend(rules::check_rust(&entry.rel, &src));
            // The graph only carries shipping code: whole-file test
            // paths contribute no nodes (cfg(test) regions are dropped
            // per-fn at build time).
            if !rules::is_test_path(&entry.rel) {
                parsed.push(parse::parse_file(&entry.rel, &src));
            }
        }
    }
    let deps = graph::Deps::from_manifests(&manifests);
    let g = graph::build(&parsed, &deps);
    raw.extend(reach::check_graph(&parsed, &g, &deps));
    let mut outcome = apply_baseline(raw, allow, files_checked);
    outcome.graph_fns = g.nodes.len();
    outcome.graph_edges = g.edges.len();
    Ok(outcome)
}

/// Parses the workspace and builds the call graph without running any
/// rules — the engine behind `caplint graph`.
///
/// # Errors
///
/// Returns a formatted message when the tree cannot be walked or a
/// file cannot be read.
pub fn load_graph(root: &Path) -> Result<graph::Graph, String> {
    let entries = walk::walk(root).map_err(|e| format!("walk {}: {e}", root.display()))?;
    let mut parsed: Vec<parse::ParsedFile> = Vec::new();
    let mut manifests: Vec<(String, String)> = Vec::new();
    for entry in &entries {
        let src =
            std::fs::read_to_string(&entry.abs).map_err(|e| format!("read {}: {e}", entry.rel))?;
        if entry.manifest {
            manifests.push((entry.rel.clone(), src));
        } else if !rules::is_test_path(&entry.rel) {
            parsed.push(parse::parse_file(&entry.rel, &src));
        }
    }
    let deps = graph::Deps::from_manifests(&manifests);
    Ok(graph::build(&parsed, &deps))
}

/// Applies baseline count semantics to raw findings.
pub fn apply_baseline(raw: Vec<Violation>, allow: &[AllowEntry], files_checked: usize) -> Outcome {
    let mut counts: BTreeMap<(RuleId, &str), usize> = BTreeMap::new();
    for v in &raw {
        *counts.entry((v.rule, v.path.as_str())).or_default() += 1;
    }
    let mut out = Outcome {
        files_checked,
        ..Outcome::default()
    };
    for v in raw.iter() {
        let found = counts[&(v.rule, v.path.as_str())];
        match allow.iter().find(|e| e.rule == v.rule && e.path == v.path) {
            // Within budget: suppressed. (Under budget is also
            // suppressed here; the staleness pass below still flags
            // the entry so the budget gets tightened.)
            Some(e) if found <= e.count => out.suppressed += 1,
            // Over budget: someone introduced a new violation — report
            // every instance in the file so the offender is visible.
            Some(_) => out.violations.push(v.clone()),
            None => out.violations.push(v.clone()),
        }
    }
    for e in allow {
        let found = counts.get(&(e.rule, e.path.as_str())).copied().unwrap_or(0);
        if found < e.count {
            out.stale.push(StaleEntry {
                entry: e.clone(),
                found,
            });
        }
    }
    out
}

/// Renders the human-readable report.
pub fn render_human(o: &Outcome) -> String {
    let mut s = String::new();
    for v in &o.violations {
        s.push_str(&format!(
            "{}:{}:{}: {} [{}/{}]: {} — {}\n",
            v.path,
            v.line,
            v.col,
            v.what,
            v.rule.code(),
            v.rule.name(),
            short(v.rule),
            v.rule.explain()
        ));
        // Caret snippet: tabs become single spaces so the underline's
        // char-column arithmetic holds on screen.
        let snippet = v.snippet.replace('\t', " ");
        let pad = " ".repeat(v.col.saturating_sub(1));
        let carets = "^".repeat(v.end_col.saturating_sub(v.col).max(1));
        s.push_str(&format!("    {snippet}\n    {pad}{carets}\n"));
    }
    for st in &o.stale {
        s.push_str(&format!(
            "caplint.allow:{}: stale entry {} {} allows {} but {} remain — tighten or remove it\n",
            st.entry.line,
            st.entry.rule.code(),
            st.entry.path,
            st.entry.count,
            st.found
        ));
    }
    s.push_str(&format!(
        "caplint: {} file(s) checked, graph {} fn(s) / {} edge(s), {} violation(s), {} suppressed by baseline, {} stale baseline entr{}\n",
        o.files_checked,
        o.graph_fns,
        o.graph_edges,
        o.violations.len(),
        o.suppressed,
        o.stale.len(),
        if o.stale.len() == 1 { "y" } else { "ies" }
    ));
    s
}

fn short(rule: RuleId) -> &'static str {
    match rule {
        RuleId::R001 => "raw thread spawn",
        RuleId::R002 => "write bypasses atomic_write",
        RuleId::R003 => "nondeterministic hash collection",
        RuleId::R004 => "raw wall-clock read",
        RuleId::R005 => "panic path in hot-path crate",
        RuleId::R006 => "undocumented unsafe",
        RuleId::R007 => "non-workspace dependency",
        RuleId::R008 => "impure sink reachable from kernel",
        RuleId::R009 => "rename without fsync evidence",
        RuleId::R010 => "order-sensitive parallel float fold",
        RuleId::R011 => "unsafe outside its designated homes",
    }
}

/// Renders the machine-readable JSON report (sorted, byte-stable).
pub fn render_json(o: &Outcome) -> String {
    let mut s = String::from("{");
    s.push_str(&format!("\"ok\":{},", o.exit_code() == 0));
    s.push_str(&format!("\"files_checked\":{},", o.files_checked));
    s.push_str(&format!("\"graph_fns\":{},", o.graph_fns));
    s.push_str(&format!("\"graph_edges\":{},", o.graph_edges));
    s.push_str(&format!("\"suppressed\":{},", o.suppressed));
    s.push_str("\"violations\":[");
    for (i, v) in o.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"rule\":\"{}\",\"name\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"end_col\":{},\"what\":\"{}\"}}",
            v.rule.code(),
            v.rule.name(),
            json_escape(&v.path),
            v.line,
            v.col,
            v.end_col,
            json_escape(&v.what)
        ));
    }
    s.push_str("],\"stale_allowlist\":[");
    for (i, st) in o.stale.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"allowed\":{},\"found\":{},\"allow_line\":{}}}",
            st.entry.rule.code(),
            json_escape(&st.entry.path),
            st.entry.count,
            st.found,
            st.entry.line
        ));
    }
    s.push_str("]}");
    s
}

/// Escapes a string for embedding in JSON output.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders `--list-rules` documentation.
pub fn render_rule_list() -> String {
    let mut s = String::from("caplint rules (scope: non-test code unless noted)\n\n");
    for r in RuleId::ALL {
        s.push_str(&format!("{} {:<22} {}\n", r.code(), r.name(), r.explain()));
    }
    s.push_str(
        "\nBaseline: caplint.allow carries accepted violations as\n\
         `RULE path count justification`; runs fail on new violations (count\n\
         exceeded) and on stale entries (count no longer reached).\n\
         Exemptions: vendor/ sources, tests/ benches/ examples/ dirs and\n\
         #[cfg(test)]/#[test] regions (R006 applies to test code too).\n\
         Graph rules: R008-R010 run on the approximate workspace call graph\n\
         (`caplint graph` prints it); crates/obs and crates/par are the\n\
         designated homes for clock/thread machinery and are not traversed.\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: RuleId, path: &str, line: usize) -> Violation {
        Violation {
            rule,
            path: path.to_string(),
            line,
            col: 5,
            end_col: 6,
            snippet: "    x();".to_string(),
            what: "`x`".to_string(),
        }
    }

    fn entry(rule: RuleId, path: &str, count: usize) -> AllowEntry {
        AllowEntry {
            rule,
            path: path.to_string(),
            count,
            justification: "test".to_string(),
            line: 1,
        }
    }

    #[test]
    fn baseline_suppresses_exact_count() {
        let o = apply_baseline(
            vec![v(RuleId::R001, "a.rs", 3)],
            &[entry(RuleId::R001, "a.rs", 1)],
            1,
        );
        assert!(o.violations.is_empty());
        assert_eq!(o.suppressed, 1);
        assert!(o.stale.is_empty());
        assert_eq!(o.exit_code(), 0);
    }

    #[test]
    fn baseline_overrun_reports_all() {
        let o = apply_baseline(
            vec![v(RuleId::R001, "a.rs", 3), v(RuleId::R001, "a.rs", 9)],
            &[entry(RuleId::R001, "a.rs", 1)],
            1,
        );
        assert_eq!(o.violations.len(), 2);
        assert_eq!(o.exit_code(), 1);
    }

    #[test]
    fn stale_entry_reported_with_distinct_exit_code() {
        let o = apply_baseline(vec![], &[entry(RuleId::R002, "gone.rs", 1)], 0);
        assert!(o.violations.is_empty());
        assert_eq!(o.stale.len(), 1);
        assert_eq!(o.exit_code(), 2);
    }

    #[test]
    fn human_report_carets_underline_the_span() {
        let o = apply_baseline(vec![v(RuleId::R001, "a.rs", 3)], &[], 1);
        let h = render_human(&o);
        assert!(h.contains("a.rs:3:5:"));
        assert!(h.contains("\n        x();\n"));
        // 4-space report indent + 4 columns of padding, then the caret.
        assert!(h.contains("\n        ^\n"));
    }

    #[test]
    fn json_carries_column_span() {
        let o = apply_baseline(vec![v(RuleId::R001, "a.rs", 3)], &[], 1);
        let j = render_json(&o);
        assert!(j.contains("\"col\":5,\"end_col\":6"));
    }

    #[test]
    fn json_is_wellformed_and_escaped() {
        let o = apply_baseline(vec![v(RuleId::R003, "a\"b.rs", 1)], &[], 1);
        let j = render_json(&o);
        assert!(j.contains("\\\"b.rs"));
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"ok\":false"));
    }
}
