//! Property-based tests for the tensor kernels.

use cap_tensor::{
    col2im, im2col, matmul, matmul_transpose_a, matmul_transpose_b, softmax_rows,
    toeplitz::conv2d_via_toeplitz, transpose2d, Conv2dGeometry, Tensor,
};
use proptest::prelude::*;

fn small_matrix(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |v| Tensor::from_vec(vec![r, c], v).expect("sized to shape"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_distributes_over_addition(
        a in small_matrix(6),
        s in -3.0f32..3.0,
    ) {
        // A(B + C) == AB + AC with B, C derived from A's shape.
        let k = a.dim(1);
        let b = Tensor::from_fn(&[k, 3], |i| (i as f32 * 0.17).sin());
        let c = b.map(|x| x * s);
        let lhs = matmul(&a, &b.add(&c).unwrap()).unwrap();
        let ab = matmul(&a, &b).unwrap();
        let ac = matmul(&a, &c).unwrap();
        let rhs = ab.add(&ac).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn blocked_matmul_matches_naive_reference(
        m in 1usize..80,
        k in 1usize..90,
        n in 1usize..80,
        seed in 0u64..1000,
    ) {
        // Shapes intentionally straddle the MR=4 / NR=8 / MC=64 tile
        // boundaries so ragged edge tiles and the parallel row split are
        // both exercised against a plain triple loop in f64.
        let a = Tensor::from_fn(&[m, k], |i| {
            ((((i as u64).wrapping_mul(seed + 13)) % 29) as f32 - 14.0) * 0.1
        });
        let b = Tensor::from_fn(&[k, n], |i| {
            ((((i as u64).wrapping_mul(seed + 17)) % 31) as f32 - 15.0) * 0.1
        });
        let fast = matmul(&a, &b).unwrap();
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for p in 0..k {
                    acc += f64::from(a.at2(i, p)) * f64::from(b.at2(p, j));
                }
                let got = f64::from(fast.at2(i, j));
                prop_assert!(
                    (got - acc).abs() < 1e-3 * (1.0 + acc.abs()),
                    "({m},{n},{k}) at ({i},{j}): {got} vs {acc}"
                );
            }
        }
    }

    #[test]
    fn transpose_is_involution(a in small_matrix(8)) {
        let tt = transpose2d(&transpose2d(&a).unwrap()).unwrap();
        prop_assert_eq!(a, tt);
    }

    #[test]
    fn fused_transpose_matmuls_match_explicit(a in small_matrix(5)) {
        let (m, k) = (a.dim(0), a.dim(1));
        let b = Tensor::from_fn(&[m, 4], |i| (i as f32 * 0.23).cos());
        // aT (m,k)->(k,m) x b (m,4)
        let explicit = matmul(&transpose2d(&a).unwrap(), &b).unwrap();
        let fused = matmul_transpose_a(&a, &b).unwrap();
        for (x, y) in explicit.data().iter().zip(fused.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
        let c = Tensor::from_fn(&[6, k], |i| (i as f32 * 0.31).sin());
        let explicit2 = matmul(&a, &transpose2d(&c).unwrap()).unwrap();
        let fused2 = matmul_transpose_b(&a, &c).unwrap();
        for (x, y) in explicit2.data().iter().zip(fused2.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(a in small_matrix(7)) {
        let s = softmax_rows(&a).unwrap();
        for r in 0..s.dim(0) {
            let sum: f64 = (0..s.dim(1)).map(|c| f64::from(s.at2(r, c))).sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
        prop_assert!(s.data().iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn im2col_col2im_adjoint(
        in_c in 1usize..3,
        k in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
        hw in 3usize..7,
        seed in 0u64..1000,
    ) {
        prop_assume!(k <= hw + 2 * padding);
        let g = Conv2dGeometry::new(in_c, 1, k, stride, padding, hw, hw).unwrap();
        let x = Tensor::from_fn(&[1, in_c, hw, hw], |i| {
            (((i as u64).wrapping_mul(seed + 1) % 17) as f32) - 8.0
        });
        let y = Tensor::from_fn(&[g.col_rows(), g.col_cols()], |i| {
            (((i as u64).wrapping_mul(seed + 3) % 13) as f32) - 6.0
        });
        let cols = im2col(&x, 0, &g).unwrap();
        let lhs: f64 = cols.data().iter().zip(y.data())
            .map(|(&a, &b)| f64::from(a) * f64::from(b)).sum();
        let mut xg = Tensor::zeros(&[1, in_c, hw, hw]);
        col2im(&y, &mut xg, 0, &g).unwrap();
        let rhs: f64 = x.data().iter().zip(xg.data())
            .map(|(&a, &b)| f64::from(a) * f64::from(b)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn im2col_matmul_equals_toeplitz_conv(
        in_c in 1usize..3,
        out_c in 1usize..4,
        k in 1usize..4,
        hw in 3usize..6,
        seed in 0u64..1000,
    ) {
        let g = Conv2dGeometry::new(in_c, out_c, k, 1, k / 2, hw, hw).unwrap();
        let w = Tensor::from_fn(&[out_c, in_c, k, k], |i| {
            ((((i as u64).wrapping_mul(seed + 7)) % 19) as f32 - 9.0) * 0.1
        });
        let x = Tensor::from_fn(&[1, in_c, hw, hw], |i| {
            ((((i as u64).wrapping_mul(seed + 11)) % 23) as f32 - 11.0) * 0.1
        });
        // im2col path: W_mat [out_c, in_c*k*k] x cols.
        let cols = im2col(&x, 0, &g).unwrap();
        let wmat = w.reshape(&[out_c, in_c * k * k]).unwrap();
        let out_cols = matmul(&wmat, &cols).unwrap();
        let via_cols = out_cols.reshape(&[1, out_c, g.out_h, g.out_w]).unwrap();
        let via_toeplitz = conv2d_via_toeplitz(&x, &w, &g).unwrap();
        for (a, b) in via_cols.data().iter().zip(via_toeplitz.data()) {
            prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }
}
