//! A hostile autotune-cache file must be ignored — never a panic,
//! never wrong results.
//!
//! `CAP_AUTOTUNE` is resolved once per process at the first cache
//! lookup, so this binary holds exactly one test and sets the variable
//! before any matmul runs.

use cap_tensor::Tensor;

#[test]
fn garbage_autotune_cache_is_ignored() {
    let path =
        std::env::temp_dir().join(format!("cap-autotune-hostile-{}.json", std::process::id()));
    // A mix of invalid JSON framing and adversarial-but-parseable
    // content (huge blocking values would blow up pack buffers if
    // trusted).
    std::fs::write(
        &path,
        b"{\"version\": 1, \"entries\": {\"m512-n512-k512|x86_64|avx2\": \
          {\"micro\": \"avx2_8x8\", \"mc\": 888888888888, \"nc\": 512}, \"trunc",
    )
    .unwrap();
    std::env::set_var("CAP_AUTOTUNE", &path);

    // Big enough to leave the direct path, so the cache is consulted.
    let m = 300;
    let k = 64;
    let n = 280;
    let a = Tensor::from_fn(&[m, k], |i| ((i as u64 % 13) as f32) - 6.0);
    let b = Tensor::from_fn(&[k, n], |i| ((i as u64 % 11) as f32) - 5.0);
    let out = cap_tensor::matmul(&a, &b).unwrap();
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                acc += f64::from(a.at2(i, p)) * f64::from(b.at2(p, j));
            }
            assert_eq!(f64::from(out.at2(i, j)), acc, "({i},{j})");
        }
    }
    let _ = std::fs::remove_file(&path);
}
