//! SIMD-vs-scalar kernel parity and determinism.
//!
//! The contract under test (DESIGN.md §13): for a fixed `CAP_SIMD`
//! mode, matmul results are bitwise identical across thread counts and
//! repeated runs; across modes, results agree elementwise to an
//! accumulation-error bound, and are bit-identical whenever the
//! arithmetic is exact (`k == 1`, or integer-valued operands small
//! enough that every product and partial sum is representable).
//!
//! `set_simd_mode` is process-global, so every test that flips it
//! holds `MODE_LOCK`.

use std::sync::Mutex;

use cap_tensor::{matmul, set_simd_mode, SimdMode, Tensor};
use proptest::prelude::*;

static MODE_LOCK: Mutex<()> = Mutex::new(());

fn with_mode<T>(mode: SimdMode, f: impl FnOnce() -> T) -> Option<T> {
    let _guard = MODE_LOCK.lock().unwrap();
    if set_simd_mode(mode).is_err() {
        return None; // ISA not available on this host: vacuously pass
    }
    let out = f();
    set_simd_mode(SimdMode::Scalar).unwrap();
    out.into()
}

fn run_both(a: &Tensor, b: &Tensor) -> Option<(Tensor, Tensor)> {
    let _guard = MODE_LOCK.lock().unwrap();
    if set_simd_mode(SimdMode::Avx2).is_err() {
        return None;
    }
    let vec_out = matmul(a, b).unwrap();
    set_simd_mode(SimdMode::Scalar).unwrap();
    let scalar_out = matmul(a, b).unwrap();
    Some((scalar_out, vec_out))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Elementwise parity on arbitrary values: the FMA path may round
    /// differently at every accumulation step, so the budget scales
    /// with `k` and the magnitude of the products feeding an element.
    #[test]
    fn simd_matches_scalar_within_accumulation_error(
        m in 1usize..48,
        k in 1usize..96,
        n in 1usize..48,
        seed in 0u64..1000,
    ) {
        let a = Tensor::from_fn(&[m, k], |i| {
            ((((i as u64).wrapping_mul(seed + 3)) % 997) as f32 - 498.0) * 0.02
        });
        let b = Tensor::from_fn(&[k, n], |i| {
            ((((i as u64).wrapping_mul(seed + 7)) % 991) as f32 - 495.0) * 0.02
        });
        let Some((scalar_out, vec_out)) = run_both(&a, &b) else { return Ok(()) };
        for i in 0..m {
            for j in 0..n {
                let abs_sum: f64 = (0..k)
                    .map(|p| f64::from(a.at2(i, p)) * f64::from(b.at2(p, j)))
                    .map(f64::abs)
                    .sum();
                let tol = 4.0 * (k as f64 + 1.0) * f64::from(f32::EPSILON) * (abs_sum + 1.0);
                let s = f64::from(scalar_out.at2(i, j));
                let v = f64::from(vec_out.at2(i, j));
                prop_assert!(
                    (s - v).abs() <= tol,
                    "({m},{k},{n}) at ({i},{j}): scalar {s} vs simd {v}, tol {tol}"
                );
            }
        }
    }

    /// `k == 1` has no accumulation: `fma(a, b, 0)` and `0 + a*b` both
    /// round the exact product once, so the paths must agree bitwise
    /// for arbitrary values.
    #[test]
    fn rank_one_update_is_bit_exact_across_modes(
        m in 1usize..64,
        n in 1usize..64,
        seed in 0u64..1000,
    ) {
        let a = Tensor::from_fn(&[m, 1], |i| {
            ((((i as u64).wrapping_mul(seed + 13)) % 4093) as f32 - 2046.0) * 0.013
        });
        let b = Tensor::from_fn(&[1, n], |i| {
            ((((i as u64).wrapping_mul(seed + 17)) % 4091) as f32 - 2045.0) * 0.017
        });
        let Some((scalar_out, vec_out)) = run_both(&a, &b) else { return Ok(()) };
        for (x, y) in scalar_out.data().iter().zip(vec_out.data()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Small-integer operands keep every product and partial sum
    /// exactly representable, so FMA fusion can never round
    /// differently: modes must agree bitwise (FMA-free shapes).
    #[test]
    fn integer_valued_matmul_is_bit_exact_across_modes(
        m in 1usize..40,
        k in 1usize..64,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let a = Tensor::from_fn(&[m, k], |i| {
            (((i as u64).wrapping_mul(seed + 19)) % 17) as f32 - 8.0
        });
        let b = Tensor::from_fn(&[k, n], |i| {
            (((i as u64).wrapping_mul(seed + 23)) % 15) as f32 - 7.0
        });
        let Some((scalar_out, vec_out)) = run_both(&a, &b) else { return Ok(()) };
        for (x, y) in scalar_out.data().iter().zip(vec_out.data()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

/// Same exactness argument, but on a shape big enough to leave the
/// direct path (m > 256) and engage the packed SIMD kernels, their
/// panel packing, and the parallel split.
#[test]
fn packed_simd_kernels_are_bit_exact_on_integer_values() {
    let a = Tensor::from_fn(&[300, 280], |i| ((i as u64 % 13) as f32) - 6.0);
    let b = Tensor::from_fn(&[280, 96], |i| ((i as u64 % 11) as f32) - 5.0);
    let Some((scalar_out, vec_out)) = run_both(&a, &b) else {
        return;
    };
    for (x, y) in scalar_out.data().iter().zip(vec_out.data()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

/// The SIMD path must be bit-identical across CAP_THREADS=1/4 and
/// across repeated runs (the scalar equivalent lives in
/// `matmul::tests::thread_count_does_not_change_bits`).
#[test]
fn simd_path_bits_are_stable_across_threads_and_runs() {
    let a = Tensor::from_fn(&[300, 310], |i| (i as f32 * 0.0131).sin());
    let b = Tensor::from_fn(&[310, 73], |i| (i as f32 * 0.0077).cos());
    let runs = with_mode(SimdMode::Avx2, || {
        cap_par::set_threads(1);
        let serial = matmul(&a, &b).unwrap();
        let serial_again = matmul(&a, &b).unwrap();
        cap_par::set_threads(4);
        let parallel = matmul(&a, &b).unwrap();
        cap_par::set_threads(1);
        (serial, serial_again, parallel)
    });
    let Some((serial, serial_again, parallel)) = runs else {
        return;
    };
    for (x, y) in serial.data().iter().zip(serial_again.data()) {
        assert_eq!(x.to_bits(), y.to_bits(), "repeated runs differ");
    }
    for (x, y) in serial.data().iter().zip(parallel.data()) {
        assert_eq!(x.to_bits(), y.to_bits(), "thread count changed bits");
    }
}
