use crate::TensorError;

/// A dense, row-major `f32` tensor.
///
/// Shapes follow the NCHW convention used throughout the workspace:
/// activations are `[batch, channels, height, width]`, convolution weights
/// are `[out_channels, in_channels, kernel_h, kernel_w]`, and matrices are
/// `[rows, cols]`.
///
/// # Example
///
/// ```
/// use cap_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3, 4, 4]);
/// assert_eq!(t.numel(), 96);
/// assert_eq!(t.shape(), &[2, 3, 4, 4]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor {
            shape: vec![0],
            data: Vec::new(),
        }
    }
}

impl Tensor {
    /// Creates a tensor from a shape and backing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if `data.len()` does not
    /// equal the product of `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Self, TensorError> {
        let numel: usize = shape.iter().product();
        if numel != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                shape,
                data_len: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; numel],
        }
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; numel],
        }
    }

    /// Creates a tensor by evaluating `f` at each linear index.
    pub fn from_fn(shape: &[usize], f: impl FnMut(usize) -> f32) -> Self {
        let numel: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: (0..numel).map(f).collect(),
        }
    }

    /// The dimensions of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Size of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= self.ndim()`.
    pub fn dim(&self, d: usize) -> usize {
        self.shape[d]
    }

    /// Immutable view of the backing data in row-major order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data in row-major order.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the backing data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if the new shape has a
    /// different element count.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor, TensorError> {
        let numel: usize = shape.iter().product();
        if numel != self.data.len() {
            return Err(TensorError::ShapeDataMismatch {
                shape: shape.to_vec(),
                data_len: self.data.len(),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        })
    }

    /// Linear offset of an NCHW index.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the tensor is not 4-dimensional or the
    /// index is out of range.
    #[inline]
    pub fn offset4(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert_eq!(self.shape.len(), 4);
        debug_assert!(
            n < self.shape[0] && c < self.shape[1] && h < self.shape[2] && w < self.shape[3]
        );
        ((n * self.shape[1] + c) * self.shape[2] + h) * self.shape[3] + w
    }

    /// Reads an element of a 4-D tensor.
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.offset4(n, c, h, w)]
    }

    /// Writes an element of a 4-D tensor.
    #[inline]
    pub fn set4(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        let i = self.offset4(n, c, h, w);
        self.data[i] = v;
    }

    /// Reads an element of a 2-D tensor.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Writes an element of a 2-D tensor.
    #[inline]
    pub fn set2(&mut self, r: usize, c: usize, v: f32) {
        debug_assert_eq!(self.shape.len(), 2);
        let cols = self.shape[1];
        self.data[r * cols + c] = v;
    }

    /// Element-wise sum of two tensors of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on differing shapes.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_map(other, "add", |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on differing shapes.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_map(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on differing shapes.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_map(other, "mul", |a, b| a * b)
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on differing shapes.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
                op: "axpy",
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Returns a new tensor with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale(&mut self, s: f32) {
        self.map_inplace(|x| x * s);
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill(&mut self, value: f32) {
        for x in &mut self.data {
            *x = value;
        }
    }

    /// Sum of absolute values (L1 norm) of all elements, with an `f64`
    /// accumulator.
    pub fn l1_norm(&self) -> f64 {
        self.data.iter().map(|&x| f64::from(x.abs())).sum()
    }

    /// Euclidean (Frobenius) norm of all elements.
    pub fn l2_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|&x| f64::from(x) * f64::from(x))
            .sum::<f64>()
            .sqrt()
    }

    fn zip_map(
        &self,
        other: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
                op,
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0; 4]).is_ok());
        let err = Tensor::from_vec(vec![2, 2], vec![1.0; 3]).unwrap_err();
        assert!(matches!(err, TensorError::ShapeDataMismatch { .. }));
    }

    #[test]
    fn zeros_ones_full() {
        assert!(Tensor::zeros(&[3]).data().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones(&[3]).data().iter().all(|&x| x == 1.0));
        assert!(Tensor::full(&[3], 7.0).data().iter().all(|&x| x == 7.0));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn(&[2, 6], |i| i as f32);
        let r = t.reshape(&[3, 4]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[5, 5]).is_err());
    }

    #[test]
    fn offset4_is_row_major() {
        let t = Tensor::from_fn(&[2, 3, 4, 5], |i| i as f32);
        assert_eq!(t.at4(0, 0, 0, 0), 0.0);
        assert_eq!(t.at4(0, 0, 0, 1), 1.0);
        assert_eq!(t.at4(0, 0, 1, 0), 5.0);
        assert_eq!(t.at4(0, 1, 0, 0), 20.0);
        assert_eq!(t.at4(1, 0, 0, 0), 60.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::ones(&[2, 2]);
        assert_eq!(a.add(&b).unwrap().data(), &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(a.sub(&b).unwrap().data(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(a.mul(&a).unwrap().data(), &[1.0, 4.0, 9.0, 16.0]);
        assert!(a.add(&Tensor::ones(&[3])).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::zeros(&[4]);
        let b = Tensor::ones(&[4]);
        a.axpy(2.0, &b).unwrap();
        a.axpy(-0.5, &b).unwrap();
        assert_eq!(a.data(), &[1.5; 4]);
    }

    #[test]
    fn norms() {
        let t = Tensor::from_vec(vec![2], vec![3.0, -4.0]).unwrap();
        assert_eq!(t.l1_norm(), 7.0);
        assert!((t.l2_norm() - 5.0).abs() < 1e-12);
    }
}
