use crate::{Tensor, TensorError};

/// Sum of all elements with an `f64` accumulator.
pub fn sum_all(t: &Tensor) -> f64 {
    t.data().iter().map(|&x| f64::from(x)).sum()
}

/// Mean of all elements.
///
/// Returns `0.0` for an empty tensor.
pub fn mean_all(t: &Tensor) -> f64 {
    if t.numel() == 0 {
        return 0.0;
    }
    sum_all(t) / t.numel() as f64
}

/// Maximum element, or `None` for an empty tensor.
pub fn max_all(t: &Tensor) -> Option<f32> {
    t.data().iter().copied().fold(None, |acc, x| {
        Some(match acc {
            None => x,
            Some(m) => m.max(x),
        })
    })
}

/// For a matrix `[rows, cols]`, returns the argmax of each row.
///
/// Ties resolve to the lowest index, matching the usual top-1 accuracy
/// convention.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] if `t` is not 2-D.
pub fn argmax_rows(t: &Tensor) -> Result<Vec<usize>, TensorError> {
    if t.ndim() != 2 {
        return Err(TensorError::InvalidShape {
            shape: t.shape().to_vec(),
            expected: "2-D logits matrix",
        });
    }
    let (rows, cols) = (t.dim(0), t.dim(1));
    let mut out = Vec::with_capacity(rows);
    for r in 0..rows {
        let row = &t.data()[r * cols..(r + 1) * cols];
        let mut best = 0;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        out.push(best);
    }
    Ok(out)
}

/// Numerically-stable row-wise softmax of a `[rows, cols]` matrix.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] if `t` is not 2-D.
pub fn softmax_rows(t: &Tensor) -> Result<Tensor, TensorError> {
    if t.ndim() != 2 {
        return Err(TensorError::InvalidShape {
            shape: t.shape().to_vec(),
            expected: "2-D logits matrix",
        });
    }
    let (rows, cols) = (t.dim(0), t.dim(1));
    let mut out = Tensor::zeros(&[rows, cols]);
    for r in 0..rows {
        let row = &t.data()[r * cols..(r + 1) * cols];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f64;
        for &v in row {
            denom += f64::from((v - m).exp());
        }
        let orow = &mut out.data_mut()[r * cols..(r + 1) * cols];
        for (o, &v) in orow.iter_mut().zip(row.iter()) {
            *o = ((f64::from((v - m).exp())) / denom) as f32;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_and_means() {
        let t = Tensor::from_vec(vec![4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(sum_all(&t), 10.0);
        assert_eq!(mean_all(&t), 2.5);
        assert_eq!(max_all(&t), Some(4.0));
        assert_eq!(max_all(&Tensor::zeros(&[0])), None);
    }

    #[test]
    fn argmax_ties_to_lowest_index() {
        let t = Tensor::from_vec(vec![2, 3], vec![1.0, 3.0, 3.0, 0.0, -1.0, 0.0]).unwrap();
        assert_eq!(argmax_rows(&t).unwrap(), vec![1, 0]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_are_stable() {
        let t = Tensor::from_vec(vec![2, 3], vec![1000.0, 1001.0, 1002.0, -5.0, 0.0, 5.0]).unwrap();
        let s = softmax_rows(&t).unwrap();
        for r in 0..2 {
            let sum: f32 = (0..3).map(|c| s.at2(r, c)).sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        assert!(s.data().iter().all(|&x| x.is_finite() && x >= 0.0));
        // Larger logit ⇒ larger probability.
        assert!(s.at2(0, 2) > s.at2(0, 1) && s.at2(0, 1) > s.at2(0, 0));
    }

    #[test]
    fn non_matrix_rejected() {
        let t = Tensor::zeros(&[2, 2, 2]);
        assert!(argmax_rows(&t).is_err());
        assert!(softmax_rows(&t).is_err());
    }
}
