use crate::gemm::{gemm, MatRef};
use crate::{Tensor, TensorError};

/// Multiplies two matrices: `a` of shape `[m, k]` times `b` of shape
/// `[k, n]`, producing `[m, n]`.
///
/// Backed by the cache-blocked, register-blocked GEMM in [`crate::gemm`];
/// large products are distributed across the `cap-par` pool in
/// deterministic row blocks, so the result is bitwise identical for any
/// `CAP_THREADS` setting.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] if either operand is not 2-D and
/// [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use cap_tensor::{matmul, Tensor};
/// # fn main() -> Result<(), cap_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1, 2], vec![1.0, 2.0])?;
/// let b = Tensor::from_vec(vec![2, 1], vec![3.0, 4.0])?;
/// assert_eq!(matmul(&a, &b)?.data(), &[11.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let _span = cap_obs::span!("tensor.matmul");
    let (m, k) = check2d(a, "matmul lhs")?;
    let (kb, n) = check2d(b, "matmul rhs")?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op: "matmul",
        });
    }
    let mut out = vec![0.0f32; m * n];
    gemm(
        m,
        n,
        k,
        MatRef::row_major(a.data(), k),
        MatRef::row_major(b.data(), n),
        &mut out,
    );
    Tensor::from_vec(vec![m, n], out)
}

/// Computes `aᵀ · b` without materialising the transpose:
/// `a` is `[k, m]`, `b` is `[k, n]`, result is `[m, n]`.
///
/// Backed by the same blocked GEMM as [`matmul`]; the transpose is a
/// stride description, not a copy.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] for non-matrices and
/// [`TensorError::ShapeMismatch`] if the shared dimension `k` disagrees.
pub fn matmul_transpose_a(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let _span = cap_obs::span!("tensor.matmul_ta");
    let (k, m) = check2d(a, "matmul_transpose_a lhs")?;
    let (kb, n) = check2d(b, "matmul_transpose_a rhs")?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op: "matmul_transpose_a",
        });
    }
    let mut out = vec![0.0f32; m * n];
    gemm(
        m,
        n,
        k,
        MatRef::transposed(a.data(), m),
        MatRef::row_major(b.data(), n),
        &mut out,
    );
    Tensor::from_vec(vec![m, n], out)
}

/// Computes `a · bᵀ` without materialising the transpose:
/// `a` is `[m, k]`, `b` is `[n, k]`, result is `[m, n]`.
///
/// Backed by the same blocked GEMM as [`matmul`]; the transpose is a
/// stride description, not a copy.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] for non-matrices and
/// [`TensorError::ShapeMismatch`] if the shared dimension `k` disagrees.
pub fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let _span = cap_obs::span!("tensor.matmul_tb");
    let (m, k) = check2d(a, "matmul_transpose_b lhs")?;
    let (n, kb) = check2d(b, "matmul_transpose_b rhs")?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op: "matmul_transpose_b",
        });
    }
    let mut out = vec![0.0f32; m * n];
    gemm(
        m,
        n,
        k,
        MatRef::row_major(a.data(), k),
        MatRef::transposed(b.data(), k),
        &mut out,
    );
    Tensor::from_vec(vec![m, n], out)
}

/// Multiplies `a · b` with a zero-skip on elements of `a`, for operands
/// known to be mostly zero — e.g. the doubly-blocked Toeplitz matrices of
/// [`crate::toeplitz`], whose density is `k²/(in_h·in_w)`.
///
/// The dense kernels deliberately dropped this branch (it costs a test
/// per element on dense data and defeats the register-blocked
/// microkernel); this entry point keeps the old i-k-j skip loop for
/// callers whose sparsity makes it a win. Serial by construction.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] if either operand is not 2-D and
/// [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
pub fn matmul_sparse_aware(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let _span = cap_obs::span!("tensor.matmul_sparse");
    let (m, k) = check2d(a, "matmul_sparse_aware lhs")?;
    let (kb, n) = check2d(b, "matmul_sparse_aware rhs")?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op: "matmul_sparse_aware",
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec(vec![m, n], out)
}

/// Transposes a matrix `[m, n]` into `[n, m]`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] if `a` is not 2-D.
pub fn transpose2d(a: &Tensor) -> Result<Tensor, TensorError> {
    let (m, n) = check2d(a, "transpose2d")?;
    let ad = a.data();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = ad[i * n + j];
        }
    }
    Tensor::from_vec(vec![n, m], out)
}

fn check2d(t: &Tensor, what: &'static str) -> Result<(usize, usize), TensorError> {
    if t.ndim() != 2 {
        return Err(TensorError::InvalidShape {
            shape: t.shape().to_vec(),
            expected: what,
        });
    }
    Ok((t.dim(0), t.dim(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dim(0), a.dim(1));
        let n = b.dim(1);
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at2(i, p) * b.at2(p, j);
                }
                out.set2(i, j, acc);
            }
        }
        out
    }

    #[test]
    fn matmul_matches_naive() {
        let a = Tensor::from_fn(&[4, 7], |i| (i as f32 * 0.37).sin());
        let b = Tensor::from_fn(&[7, 5], |i| (i as f32 * 0.11).cos());
        let fast = matmul(&a, &b).unwrap();
        let slow = naive(&a, &b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_matches_naive_above_parallel_threshold() {
        // 2·90·70·300 flops clear the parallel dispatch threshold, and the
        // shape is ragged against every blocking constant.
        let a = Tensor::from_fn(&[90, 300], |i| (i as f32 * 0.013).sin());
        let b = Tensor::from_fn(&[300, 70], |i| (i as f32 * 0.007).cos());
        let fast = matmul(&a, &b).unwrap();
        let slow = naive(&a, &b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn sparse_aware_matches_dense() {
        let a = Tensor::from_fn(&[9, 14], |i| {
            if i % 3 == 0 {
                (i as f32 * 0.2).sin()
            } else {
                0.0
            }
        });
        let b = Tensor::from_fn(&[14, 6], |i| (i as f32 * 0.11).cos());
        let dense = matmul(&a, &b).unwrap();
        let sparse = matmul_sparse_aware(&a, &b).unwrap();
        for (x, y) in dense.data().iter().zip(sparse.data()) {
            assert!((x - y).abs() < 1e-5);
        }
        assert!(matmul_sparse_aware(&a, &Tensor::zeros(&[3, 3])).is_err());
    }

    #[test]
    fn transposed_variants_match() {
        let a = Tensor::from_fn(&[6, 4], |i| (i as f32 * 0.13).sin());
        let b = Tensor::from_fn(&[6, 3], |i| (i as f32 * 0.29).cos());
        let at = transpose2d(&a).unwrap();
        let direct = matmul(&at, &b).unwrap();
        let fused = matmul_transpose_a(&a, &b).unwrap();
        for (x, y) in direct.data().iter().zip(fused.data()) {
            assert!((x - y).abs() < 1e-5);
        }

        let c = Tensor::from_fn(&[5, 6], |i| (i as f32 * 0.07).sin());
        let bt = transpose2d(&b).unwrap();
        let direct2 = matmul(&c, &transpose2d(&bt).unwrap()).unwrap();
        let fused2 = matmul_transpose_b(&c, &bt).unwrap();
        for (x, y) in direct2.data().iter().zip(fused2.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transposed_variants_match_on_large_ragged_shapes() {
        let a = Tensor::from_fn(&[300, 67], |i| (i as f32 * 0.017).sin());
        let b = Tensor::from_fn(&[300, 41], |i| (i as f32 * 0.023).cos());
        let fused = matmul_transpose_a(&a, &b).unwrap();
        let direct = matmul(&transpose2d(&a).unwrap(), &b).unwrap();
        for (x, y) in fused.data().iter().zip(direct.data()) {
            assert!((x - y).abs() < 1e-3);
        }

        let c = Tensor::from_fn(&[67, 300], |i| (i as f32 * 0.019).sin());
        let d = Tensor::from_fn(&[41, 300], |i| (i as f32 * 0.029).cos());
        let fused2 = matmul_transpose_b(&c, &d).unwrap();
        let direct2 = matmul(&c, &transpose2d(&d).unwrap()).unwrap();
        for (x, y) in fused2.data().iter().zip(direct2.data()) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn thread_count_does_not_change_bits() {
        let a = Tensor::from_fn(&[129, 310], |i| (i as f32 * 0.0131).sin());
        let b = Tensor::from_fn(&[310, 73], |i| (i as f32 * 0.0077).cos());
        cap_par::set_threads(1);
        let serial = matmul(&a, &b).unwrap();
        let serial_ta = matmul_transpose_a(&transpose2d(&a).unwrap(), &b).unwrap();
        cap_par::set_threads(4);
        let parallel = matmul(&a, &b).unwrap();
        let parallel_ta = matmul_transpose_a(&transpose2d(&a).unwrap(), &b).unwrap();
        cap_par::set_threads(1);
        for (x, y) in serial.data().iter().zip(parallel.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in serial_ta.data().iter().zip(parallel_ta.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn shape_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul(&a, &Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_fn(&[3, 5], |i| i as f32);
        let back = transpose2d(&transpose2d(&a).unwrap()).unwrap();
        assert_eq!(a, back);
    }
}
