use crate::{Tensor, TensorError};

/// Multiplies two matrices: `a` of shape `[m, k]` times `b` of shape
/// `[k, n]`, producing `[m, n]`.
///
/// Uses an i-k-j loop order so the inner loop streams over contiguous
/// rows of both `b` and the output, which is the cache-friendly order for
/// row-major data.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] if either operand is not 2-D and
/// [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use cap_tensor::{matmul, Tensor};
/// # fn main() -> Result<(), cap_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1, 2], vec![1.0, 2.0])?;
/// let b = Tensor::from_vec(vec![2, 1], vec![3.0, 4.0])?;
/// assert_eq!(matmul(&a, &b)?.data(), &[11.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let _span = cap_obs::span!("tensor.matmul");
    let (m, k) = check2d(a, "matmul lhs")?;
    let (kb, n) = check2d(b, "matmul rhs")?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op: "matmul",
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec(vec![m, n], out)
}

/// Computes `aᵀ · b` without materialising the transpose:
/// `a` is `[k, m]`, `b` is `[k, n]`, result is `[m, n]`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] for non-matrices and
/// [`TensorError::ShapeMismatch`] if the shared dimension `k` disagrees.
pub fn matmul_transpose_a(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let _span = cap_obs::span!("tensor.matmul_ta");
    let (k, m) = check2d(a, "matmul_transpose_a lhs")?;
    let (kb, n) = check2d(b, "matmul_transpose_a rhs")?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op: "matmul_transpose_a",
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec(vec![m, n], out)
}

/// Computes `a · bᵀ` without materialising the transpose:
/// `a` is `[m, k]`, `b` is `[n, k]`, result is `[m, n]`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] for non-matrices and
/// [`TensorError::ShapeMismatch`] if the shared dimension `k` disagrees.
pub fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let _span = cap_obs::span!("tensor.matmul_tb");
    let (m, k) = check2d(a, "matmul_transpose_b lhs")?;
    let (n, kb) = check2d(b, "matmul_transpose_b rhs")?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op: "matmul_transpose_b",
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow.iter()) {
                acc += x * y;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(vec![m, n], out)
}

/// Transposes a matrix `[m, n]` into `[n, m]`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] if `a` is not 2-D.
pub fn transpose2d(a: &Tensor) -> Result<Tensor, TensorError> {
    let (m, n) = check2d(a, "transpose2d")?;
    let ad = a.data();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = ad[i * n + j];
        }
    }
    Tensor::from_vec(vec![n, m], out)
}

fn check2d(t: &Tensor, what: &'static str) -> Result<(usize, usize), TensorError> {
    if t.ndim() != 2 {
        return Err(TensorError::InvalidShape {
            shape: t.shape().to_vec(),
            expected: what,
        });
    }
    Ok((t.dim(0), t.dim(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dim(0), a.dim(1));
        let n = b.dim(1);
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at2(i, p) * b.at2(p, j);
                }
                out.set2(i, j, acc);
            }
        }
        out
    }

    #[test]
    fn matmul_matches_naive() {
        let a = Tensor::from_fn(&[4, 7], |i| (i as f32 * 0.37).sin());
        let b = Tensor::from_fn(&[7, 5], |i| (i as f32 * 0.11).cos());
        let fast = matmul(&a, &b).unwrap();
        let slow = naive(&a, &b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transposed_variants_match() {
        let a = Tensor::from_fn(&[6, 4], |i| (i as f32 * 0.13).sin());
        let b = Tensor::from_fn(&[6, 3], |i| (i as f32 * 0.29).cos());
        let at = transpose2d(&a).unwrap();
        let direct = matmul(&at, &b).unwrap();
        let fused = matmul_transpose_a(&a, &b).unwrap();
        for (x, y) in direct.data().iter().zip(fused.data()) {
            assert!((x - y).abs() < 1e-5);
        }

        let c = Tensor::from_fn(&[5, 6], |i| (i as f32 * 0.07).sin());
        let bt = transpose2d(&b).unwrap();
        let direct2 = matmul(&c, &transpose2d(&bt).unwrap()).unwrap();
        let fused2 = matmul_transpose_b(&c, &bt).unwrap();
        for (x, y) in direct2.data().iter().zip(fused2.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn shape_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul(&a, &Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_fn(&[3, 5], |i| i as f32);
        let back = transpose2d(&transpose2d(&a).unwrap()).unwrap();
        assert_eq!(a, back);
    }
}
