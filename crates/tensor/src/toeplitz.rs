//! The weight-reshaping construction of Fig. 2 of the paper: a convolution
//! kernel is unrolled into a (sparse, here densely stored) matrix `𝒦` such
//! that multiplying `𝒦` with the flattened input reproduces the
//! convolution output.
//!
//! The paper uses this matrix to define the orthogonality regulariser
//! `‖𝒦𝒦ᵀ − I‖` (Eq. 2). The training loop in `cap-nn` uses the cheaper
//! kernel-gram relaxation (see `cap_nn::regularizer`), while this module
//! provides the exact construction for validation and analysis.

use crate::{Conv2dGeometry, Tensor, TensorError};

/// Builds the doubly-blocked Toeplitz matrix of a full convolution layer.
///
/// `weight` has shape `[out_channels, in_channels, k, k]`. The result has
/// shape `[out_channels * out_h * out_w, in_channels * in_h * in_w]`; row
/// `(f * out_h + oh) * out_w + ow` contains filter `f` shifted to output
/// position `(oh, ow)`, so that
/// `toeplitz · flatten(x) == conv2d(x, weight)` for a single sample `x`.
///
/// Positions that fall into the zero padding contribute no entry, exactly
/// as in the paper's Fig. 2 (stride-offset sparse rows).
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] if `weight` is not 4-D or does
/// not match `geom`.
///
/// # Example
///
/// ```
/// use cap_tensor::{toeplitz::toeplitz_matrix, Conv2dGeometry, Tensor};
/// # fn main() -> Result<(), cap_tensor::TensorError> {
/// // The paper's Fig. 2: one 1x2x2 filter over a 3x3 input, stride 1.
/// let w = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let g = Conv2dGeometry::new(1, 1, 2, 1, 0, 3, 3)?;
/// let m = toeplitz_matrix(&w, &g)?;
/// assert_eq!(m.shape(), &[4, 9]); // 4 output positions x 9 input values
/// # Ok(())
/// # }
/// ```
pub fn toeplitz_matrix(weight: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor, TensorError> {
    let _span = cap_obs::span!("tensor.toeplitz");
    check_weight(weight, geom)?;
    let k = geom.kernel;
    let rows = geom.out_channels * geom.out_h * geom.out_w;
    let cols = geom.in_channels * geom.in_h * geom.in_w;
    let mut m = Tensor::zeros(&[rows, cols]);
    let wdata = weight.data();
    let mdata = m.data_mut();
    for f in 0..geom.out_channels {
        for oh in 0..geom.out_h {
            for ow in 0..geom.out_w {
                let row = (f * geom.out_h + oh) * geom.out_w + ow;
                for c in 0..geom.in_channels {
                    for kh in 0..k {
                        let ih = (oh * geom.stride + kh) as isize - geom.padding as isize;
                        if ih < 0 || ih >= geom.in_h as isize {
                            continue;
                        }
                        for kw in 0..k {
                            let iw = (ow * geom.stride + kw) as isize - geom.padding as isize;
                            if iw < 0 || iw >= geom.in_w as isize {
                                continue;
                            }
                            let col = (c * geom.in_h + ih as usize) * geom.in_w + iw as usize;
                            let widx = ((f * geom.in_channels + c) * k + kh) * k + kw;
                            mdata[row * cols + col] = wdata[widx];
                        }
                    }
                }
            }
        }
    }
    Ok(m)
}

/// Convolves a single sample through the Toeplitz matrix:
/// `out = 𝒦 · flatten(x)`, reshaped to `[1, out_channels, out_h, out_w]`.
///
/// This is the reference implementation used to validate the im2col path.
///
/// # Errors
///
/// Propagates shape errors from the matrix construction or if `input` is
/// not a single NCHW sample matching `geom`.
pub fn conv2d_via_toeplitz(
    input: &Tensor,
    weight: &Tensor,
    geom: &Conv2dGeometry,
) -> Result<Tensor, TensorError> {
    if input.ndim() != 4
        || input.dim(0) != 1
        || input.dim(1) != geom.in_channels
        || input.dim(2) != geom.in_h
        || input.dim(3) != geom.in_w
    {
        return Err(TensorError::InvalidShape {
            shape: input.shape().to_vec(),
            expected: "single NCHW sample matching geometry",
        });
    }
    let m = toeplitz_matrix(weight, geom)?;
    let x = input.reshape(&[geom.in_channels * geom.in_h * geom.in_w, 1])?;
    // The Toeplitz matrix is mostly zeros (density k²/(in_h·in_w)), so
    // the zero-skipping kernel beats the dense blocked one here.
    let y = crate::matmul_sparse_aware(&m, &x)?;
    y.reshape(&[1, geom.out_channels, geom.out_h, geom.out_w])
}

/// Computes the orthogonality residual `𝒦𝒦ᵀ − I` of the Toeplitz matrix
/// and returns its Frobenius norm, i.e. the paper's `‖𝒦𝒦ᵀ − I‖₂` term for
/// one layer evaluated exactly.
///
/// # Errors
///
/// Propagates shape errors from the matrix construction.
pub fn orthogonality_residual_norm(
    weight: &Tensor,
    geom: &Conv2dGeometry,
) -> Result<f64, TensorError> {
    let m = toeplitz_matrix(weight, geom)?;
    let gram = crate::matmul_transpose_b(&m, &m)?;
    let n = gram.dim(0);
    let mut acc = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            let target = if i == j { 1.0 } else { 0.0 };
            let d = f64::from(gram.at2(i, j)) - target;
            acc += d * d;
        }
    }
    Ok(acc.sqrt())
}

fn check_weight(weight: &Tensor, geom: &Conv2dGeometry) -> Result<(), TensorError> {
    if weight.ndim() != 4
        || weight.dim(0) != geom.out_channels
        || weight.dim(1) != geom.in_channels
        || weight.dim(2) != geom.kernel
        || weight.dim(3) != geom.kernel
    {
        return Err(TensorError::InvalidShape {
            shape: weight.shape().to_vec(),
            expected: "weight [out, in, k, k] matching geometry",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_example_matches_paper() {
        // Fig. 2: filter [[1,2],[3,4]] over 3x3 input, stride 1, no padding.
        let w = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let g = Conv2dGeometry::new(1, 1, 2, 1, 0, 3, 3).unwrap();
        let m = toeplitz_matrix(&w, &g).unwrap();
        assert_eq!(m.shape(), &[4, 9]);
        // Row 0: kernel anchored at (0,0) -> entries at inputs 0,1,3,4.
        assert_eq!(
            m.data()[0..9],
            [1.0, 2.0, 0.0, 3.0, 4.0, 0.0, 0.0, 0.0, 0.0]
        );
        // Row 1 is row 0 shifted by one column (stride-1 offset, as in Fig. 2).
        assert_eq!(
            m.data()[9..18],
            [0.0, 1.0, 2.0, 0.0, 3.0, 4.0, 0.0, 0.0, 0.0]
        );
        // Row 2: anchored at (1,0), offset by one full input row.
        assert_eq!(
            m.data()[18..27],
            [0.0, 0.0, 0.0, 1.0, 2.0, 0.0, 3.0, 4.0, 0.0]
        );
    }

    #[test]
    fn toeplitz_conv_equals_direct_conv() {
        // Direct (nested-loop) convolution as the ground truth.
        let g = Conv2dGeometry::new(2, 3, 3, 1, 1, 5, 5).unwrap();
        let w = Tensor::from_fn(&[3, 2, 3, 3], |i| ((i * 31 % 13) as f32 - 6.0) * 0.1);
        let x = Tensor::from_fn(&[1, 2, 5, 5], |i| ((i * 7 % 9) as f32 - 4.0) * 0.25);
        let via_toeplitz = conv2d_via_toeplitz(&x, &w, &g).unwrap();

        let mut direct = Tensor::zeros(&[1, 3, 5, 5]);
        for f in 0..3 {
            for oh in 0..5usize {
                for ow in 0..5usize {
                    let mut acc = 0.0f32;
                    for c in 0..2 {
                        for kh in 0..3usize {
                            for kw in 0..3usize {
                                let ih = oh as isize + kh as isize - 1;
                                let iw = ow as isize + kw as isize - 1;
                                if !(0..5).contains(&ih) || !(0..5).contains(&iw) {
                                    continue;
                                }
                                acc += w.at4(f, c, kh, kw) * x.at4(0, c, ih as usize, iw as usize);
                            }
                        }
                    }
                    direct.set4(0, f, oh, ow, acc);
                }
            }
        }
        for (a, b) in via_toeplitz.data().iter().zip(direct.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn residual_norm_zero_iff_rows_orthonormal() {
        // A 1x1 conv with a single filter of unit norm over a 1x1 input is
        // trivially orthonormal.
        let w = Tensor::from_vec(vec![1, 1, 1, 1], vec![1.0]).unwrap();
        let g = Conv2dGeometry::new(1, 1, 1, 1, 0, 1, 1).unwrap();
        assert!(orthogonality_residual_norm(&w, &g).unwrap() < 1e-6);

        let w2 = Tensor::from_vec(vec![1, 1, 1, 1], vec![2.0]).unwrap();
        assert!(orthogonality_residual_norm(&w2, &g).unwrap() > 1.0);
    }

    #[test]
    fn weight_shape_validated() {
        let g = Conv2dGeometry::new(2, 3, 3, 1, 1, 5, 5).unwrap();
        let bad = Tensor::zeros(&[3, 2, 2, 2]);
        assert!(toeplitz_matrix(&bad, &g).is_err());
    }
}
