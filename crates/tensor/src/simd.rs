//! SIMD microkernels and the process-wide instruction-set pin.
//!
//! This is the **only** module in `cap-tensor` that may contain `unsafe`
//! code (the crate root carries `#![deny(unsafe_code)]`; this module
//! opts out with `#![allow(unsafe_code)]` and every block carries a
//! `// SAFETY:` justification checked by caplint rule R006). Everything
//! here is a leaf: fixed-size register-tile kernels over packed panels,
//! plus one direct (unpacked) row kernel for small shapes. All loads
//! and stores are unaligned (`loadu`/`storeu`), so callers only have to
//! guarantee slice bounds, which the safe wrappers assert.
//!
//! # Mode pin
//!
//! The instruction set is resolved **once per process** from the
//! `CAP_SIMD` environment variable (`scalar`, `avx2`, or `auto`, the
//! default) intersected with runtime CPU feature detection, so a run's
//! kernel choice is deterministic and recorded. [`set_simd_mode`]
//! exists for benches and tests that A/B both paths in one process.
//!
//! # Determinism
//!
//! Every kernel accumulates each output element in ascending `p`
//! (depth) order. All AVX2 kernels use one fused multiply-add per
//! element per step, so *every* AVX2 kernel produces bit-identical
//! results for the same operands — selecting between 8×8 and 16×4
//! tiles (or changing cache blocking) never changes bits. The scalar
//! kernels use separate multiply and add, which rounds differently
//! from FMA; that is why the ISA pin, not the selector, is the unit of
//! numerical reproducibility (see DESIGN.md §13).

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};

/// Maximum microkernel rows across all kernels (16×4 tile).
pub(crate) const MR_MAX: usize = 16;
/// Maximum microkernel columns across all kernels (8×8 tile).
pub(crate) const NR_MAX: usize = 8;
/// Accumulator scratch large enough for any tile (`MR_MAX × NR_MAX`).
pub(crate) const ACC_LEN: usize = MR_MAX * NR_MAX;

/// The resolved instruction-set choice for every GEMM in this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdMode {
    /// Portable scalar kernels: the cross-architecture reference path.
    Scalar,
    /// AVX2 + FMA kernels (x86-64 only, runtime-detected).
    Avx2,
}

impl SimdMode {
    /// Stable lowercase name (`scalar` / `avx2`) used in telemetry,
    /// autotune-cache keys, and `BENCH_kernels.json`.
    pub fn name(self) -> &'static str {
        match self {
            SimdMode::Scalar => "scalar",
            SimdMode::Avx2 => "avx2",
        }
    }
}

/// 0 = unresolved, 1 = scalar, 2 = avx2.
static MODE: AtomicU8 = AtomicU8::new(0);

/// Whether this CPU can run the AVX2+FMA kernels.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn resolve_from_env() -> SimdMode {
    let requested = std::env::var("CAP_SIMD").unwrap_or_default();
    match requested.trim().to_ascii_lowercase().as_str() {
        "scalar" => SimdMode::Scalar,
        "avx2" => {
            if avx2_available() {
                SimdMode::Avx2
            } else {
                // Explicit request on an incapable host: fall back
                // loudly (counter + event) rather than abort — the
                // scalar path is always correct.
                if cap_obs::enabled() {
                    cap_obs::counter_add("tensor.gemm.simd_fallback_total", 1);
                    cap_obs::emit(
                        cap_obs::Event::new("simd_fallback")
                            .str("requested", "avx2")
                            .str("used", "scalar"),
                    );
                }
                SimdMode::Scalar
            }
        }
        // "auto", unset, and anything unrecognised: best available.
        _ => {
            if avx2_available() {
                SimdMode::Avx2
            } else {
                SimdMode::Scalar
            }
        }
    }
}

/// The pinned instruction-set mode, resolving `CAP_SIMD` on first use.
pub fn simd_mode() -> SimdMode {
    match MODE.load(Ordering::Relaxed) {
        1 => SimdMode::Scalar,
        2 => SimdMode::Avx2,
        _ => {
            let mode = resolve_from_env();
            MODE.store(
                match mode {
                    SimdMode::Scalar => 1,
                    SimdMode::Avx2 => 2,
                },
                Ordering::Relaxed,
            );
            mode
        }
    }
}

/// Overrides the pinned mode at runtime (benches and tests that A/B
/// both paths in one process; production runs should pin via
/// `CAP_SIMD` instead so the choice is recorded at startup).
///
/// # Errors
///
/// Returns a description if the requested ISA is unavailable on this
/// CPU; the pinned mode is left unchanged.
pub fn set_simd_mode(mode: SimdMode) -> Result<(), String> {
    if mode == SimdMode::Avx2 && !avx2_available() {
        return Err("CAP_SIMD: avx2 requested but not available on this CPU".to_string());
    }
    MODE.store(
        match mode {
            SimdMode::Scalar => 1,
            SimdMode::Avx2 => 2,
        },
        Ordering::Relaxed,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// AVX2 + FMA kernels (x86-64).
// ---------------------------------------------------------------------------

/// 8×8 register tile over packed panels: `acc[r*8 + c] += Σ_p
/// pa[p*8 + r] · pb[p*8 + c]`, ascending `p`, one FMA per element per
/// step. Panels are packed `p`-major with zero padding, exactly like
/// the scalar kernel's.
#[cfg(target_arch = "x86_64")]
pub(crate) fn micro_8x8_avx2(kc: usize, pa: &[f32], pb: &[f32], acc: &mut [f32; ACC_LEN]) {
    assert!(pa.len() >= kc * 8, "packed A strip too short");
    assert!(pb.len() >= kc * 8, "packed B strip too short");
    // SAFETY: AVX2+FMA availability is guaranteed by the mode pin
    // (`simd_mode()` only returns `Avx2` after feature detection), and
    // the slice bounds the kernel reads/writes are asserted above.
    unsafe { micro_8x8_avx2_impl(kc, pa.as_ptr(), pb.as_ptr(), acc.as_mut_ptr()) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
// SAFETY: callers must guarantee AVX2+FMA support, `pa`/`pb` valid for
// `kc*8` reads, and `acc` valid for 64 writes.
unsafe fn micro_8x8_avx2_impl(kc: usize, pa: *const f32, pb: *const f32, acc: *mut f32) {
    use std::arch::x86_64::{
        _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_setzero_ps, _mm256_storeu_ps,
    };
    // SAFETY: intrinsics below only touch pa[0..kc*8], pb[0..kc*8] and
    // acc[0..64], all within the caller-guaranteed bounds; loadu/storeu
    // have no alignment requirement.
    unsafe {
        let mut c0 = _mm256_setzero_ps();
        let mut c1 = _mm256_setzero_ps();
        let mut c2 = _mm256_setzero_ps();
        let mut c3 = _mm256_setzero_ps();
        let mut c4 = _mm256_setzero_ps();
        let mut c5 = _mm256_setzero_ps();
        let mut c6 = _mm256_setzero_ps();
        let mut c7 = _mm256_setzero_ps();
        for p in 0..kc {
            let b = _mm256_loadu_ps(pb.add(p * 8));
            let a = pa.add(p * 8);
            c0 = _mm256_fmadd_ps(_mm256_set1_ps(*a), b, c0);
            c1 = _mm256_fmadd_ps(_mm256_set1_ps(*a.add(1)), b, c1);
            c2 = _mm256_fmadd_ps(_mm256_set1_ps(*a.add(2)), b, c2);
            c3 = _mm256_fmadd_ps(_mm256_set1_ps(*a.add(3)), b, c3);
            c4 = _mm256_fmadd_ps(_mm256_set1_ps(*a.add(4)), b, c4);
            c5 = _mm256_fmadd_ps(_mm256_set1_ps(*a.add(5)), b, c5);
            c6 = _mm256_fmadd_ps(_mm256_set1_ps(*a.add(6)), b, c6);
            c7 = _mm256_fmadd_ps(_mm256_set1_ps(*a.add(7)), b, c7);
        }
        _mm256_storeu_ps(acc, c0);
        _mm256_storeu_ps(acc.add(8), c1);
        _mm256_storeu_ps(acc.add(16), c2);
        _mm256_storeu_ps(acc.add(24), c3);
        _mm256_storeu_ps(acc.add(32), c4);
        _mm256_storeu_ps(acc.add(40), c5);
        _mm256_storeu_ps(acc.add(48), c6);
        _mm256_storeu_ps(acc.add(56), c7);
    }
}

/// 16×4 register tile for tall-skinny problems (`n` too small to feed
/// 8-wide rows): `acc[r*4 + c] += Σ_p pa[p*16 + r] · pb[p*4 + c]`,
/// ascending `p`, one FMA per element per step.
#[cfg(target_arch = "x86_64")]
pub(crate) fn micro_16x4_avx2(kc: usize, pa: &[f32], pb: &[f32], acc: &mut [f32; ACC_LEN]) {
    assert!(pa.len() >= kc * 16, "packed A strip too short");
    assert!(pb.len() >= kc * 4, "packed B strip too short");
    // SAFETY: AVX2+FMA availability is guaranteed by the mode pin, and
    // the slice bounds the kernel reads/writes are asserted above.
    unsafe { micro_16x4_avx2_impl(kc, pa.as_ptr(), pb.as_ptr(), acc.as_mut_ptr()) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
// SAFETY: callers must guarantee AVX2+FMA support, `pa` valid for
// `kc*16` reads, `pb` for `kc*4` reads, and `acc` for 64 writes.
unsafe fn micro_16x4_avx2_impl(kc: usize, pa: *const f32, pb: *const f32, acc: *mut f32) {
    use std::arch::x86_64::{
        _mm_fmadd_ps, _mm_loadu_ps, _mm_set1_ps, _mm_setzero_ps, _mm_storeu_ps,
    };
    // SAFETY: intrinsics below only touch pa[0..kc*16], pb[0..kc*4] and
    // acc[0..64], all within the caller-guaranteed bounds.
    unsafe {
        let mut c = [_mm_setzero_ps(); 16];
        for p in 0..kc {
            let b = _mm_loadu_ps(pb.add(p * 4));
            let a = pa.add(p * 16);
            // Four unrolled groups of four keep register pressure
            // predictable; each row is one FMA per step.
            for g in 0..4 {
                let r = g * 4;
                c[r] = _mm_fmadd_ps(_mm_set1_ps(*a.add(r)), b, c[r]);
                c[r + 1] = _mm_fmadd_ps(_mm_set1_ps(*a.add(r + 1)), b, c[r + 1]);
                c[r + 2] = _mm_fmadd_ps(_mm_set1_ps(*a.add(r + 2)), b, c[r + 2]);
                c[r + 3] = _mm_fmadd_ps(_mm_set1_ps(*a.add(r + 3)), b, c[r + 3]);
            }
        }
        for (r, v) in c.iter().enumerate() {
            _mm_storeu_ps(acc.add(r * 4), *v);
        }
    }
}

/// Direct (unpacked) AVX2 row kernel for small shapes: computes
/// `out[i][j] += Σ_p a[i][p] · b[p][j]` for `rows` output rows, with
/// `b` row-major contiguous (`col_stride == 1`, leading dimension
/// `b_rs`). `a` may be strided (transposed views). Each element
/// accumulates ascending `p` with one FMA per step; the tail columns
/// (`n % 8`) use scalar FMA so the op sequence per element is uniform.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
pub(crate) fn direct_rows_avx2(
    n: usize,
    k: usize,
    a: &[f32],
    a_off: usize,
    a_rs: usize,
    a_cs: usize,
    b: &[f32],
    b_rs: usize,
    out: &mut [f32],
) {
    let rows = out.len() / n.max(1);
    if rows == 0 || n == 0 || k == 0 {
        return;
    }
    // Bounds for every access the unsafe kernel performs.
    assert!(a.len() > a_off + (rows - 1) * a_rs + (k - 1) * a_cs);
    assert!(b.len() >= (k - 1) * b_rs + n);
    assert!(out.len() >= rows * n);
    // SAFETY: AVX2+FMA availability is guaranteed by the mode pin; the
    // index bounds are asserted just above.
    unsafe {
        direct_rows_avx2_impl(
            rows,
            n,
            k,
            a.as_ptr().add(a_off),
            a_rs,
            a_cs,
            b.as_ptr(),
            b_rs,
            out.as_mut_ptr(),
        )
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
// SAFETY: callers must guarantee AVX2+FMA support and validity of
// `a` for strided reads over `rows × k`, `b` for `(k-1)*b_rs + n`
// reads, and `out` for `rows * n` read-writes.
unsafe fn direct_rows_avx2_impl(
    rows: usize,
    n: usize,
    k: usize,
    a: *const f32,
    a_rs: usize,
    a_cs: usize,
    b: *const f32,
    b_rs: usize,
    out: *mut f32,
) {
    use std::arch::x86_64::{_mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_storeu_ps};
    // Column blocks of 32 (four YMM accumulators) stay resident in
    // registers across the whole depth loop.
    const JB: usize = 32;
    // SAFETY: every pointer offset below stays inside the caller-
    // guaranteed ranges: a[i*a_rs + p*a_cs], b[p*b_rs + j..+8|1],
    // out[i*n + j..+8|1] with i < rows, p < k, j < n.
    unsafe {
        for i in 0..rows {
            let arow = a.add(i * a_rs);
            let orow = out.add(i * n);
            let mut j = 0;
            while j + JB <= n {
                let mut c0 = _mm256_loadu_ps(orow.add(j));
                let mut c1 = _mm256_loadu_ps(orow.add(j + 8));
                let mut c2 = _mm256_loadu_ps(orow.add(j + 16));
                let mut c3 = _mm256_loadu_ps(orow.add(j + 24));
                for p in 0..k {
                    let av = _mm256_set1_ps(*arow.add(p * a_cs));
                    let brow = b.add(p * b_rs + j);
                    c0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow), c0);
                    c1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow.add(8)), c1);
                    c2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow.add(16)), c2);
                    c3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow.add(24)), c3);
                }
                _mm256_storeu_ps(orow.add(j), c0);
                _mm256_storeu_ps(orow.add(j + 8), c1);
                _mm256_storeu_ps(orow.add(j + 16), c2);
                _mm256_storeu_ps(orow.add(j + 24), c3);
                j += JB;
            }
            while j + 8 <= n {
                let mut c0 = _mm256_loadu_ps(orow.add(j));
                for p in 0..k {
                    let av = _mm256_set1_ps(*arow.add(p * a_cs));
                    c0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b.add(p * b_rs + j)), c0);
                }
                _mm256_storeu_ps(orow.add(j), c0);
                j += 8;
            }
            while j < n {
                let mut acc = *orow.add(j);
                for p in 0..k {
                    acc = (*arow.add(p * a_cs)).mul_add(*b.add(p * b_rs + j), acc);
                }
                *orow.add(j) = acc;
                j += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// NEON stub (aarch64): detection reports unavailable until the kernels
// land; the scalar reference path covers the architecture meanwhile.
// ---------------------------------------------------------------------------

/// Whether NEON microkernels are implemented and available. Stub: the
/// aarch64 kernels are a planned follow-up (ROADMAP); until then every
/// aarch64 host runs the scalar reference path.
#[cfg(target_arch = "aarch64")]
pub fn neon_available() -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_are_stable() {
        assert_eq!(SimdMode::Scalar.name(), "scalar");
        assert_eq!(SimdMode::Avx2.name(), "avx2");
    }

    #[test]
    fn set_mode_rejects_unavailable_isa() {
        if !avx2_available() {
            assert!(set_simd_mode(SimdMode::Avx2).is_err());
        } else {
            assert!(set_simd_mode(SimdMode::Avx2).is_ok());
            assert_eq!(simd_mode(), SimdMode::Avx2);
        }
        assert!(set_simd_mode(SimdMode::Scalar).is_ok());
        assert_eq!(simd_mode(), SimdMode::Scalar);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_tiles_match_scalar_reference_values() {
        if !avx2_available() {
            return;
        }
        let kc = 37;
        // Integer-valued operands: products and partial sums are exact
        // in f32, so FMA and mul+add round identically and the tiles
        // must match the scalar computation bit for bit.
        let pa16: Vec<f32> = (0..kc * 16).map(|i| ((i % 7) as f32) - 3.0).collect();
        let pb8: Vec<f32> = (0..kc * 8).map(|i| ((i % 5) as f32) - 2.0).collect();
        let mut acc = [0.0f32; ACC_LEN];
        micro_8x8_avx2(kc, &pa16, &pb8, &mut acc);
        for r in 0..8 {
            for c in 0..8 {
                let want: f32 = (0..kc)
                    .map(|p| pa16[p * 8 + r] * pb8[p * 8 + c])
                    .sum::<f32>();
                assert_eq!(acc[r * 8 + c].to_bits(), want.to_bits(), "8x8 r{r} c{c}");
            }
        }
        let pb4: Vec<f32> = (0..kc * 4).map(|i| ((i % 3) as f32) - 1.0).collect();
        let mut acc = [0.0f32; ACC_LEN];
        micro_16x4_avx2(kc, &pa16, &pb4, &mut acc);
        for r in 0..16 {
            for c in 0..4 {
                let want: f32 = (0..kc)
                    .map(|p| pa16[p * 16 + r] * pb4[p * 4 + c])
                    .sum::<f32>();
                assert_eq!(acc[r * 4 + c].to_bits(), want.to_bits(), "16x4 r{r} c{c}");
            }
        }
    }
}
