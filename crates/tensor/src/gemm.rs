//! Cache-blocked GEMM shared by the three matmul variants.
//!
//! The entry point asks [`crate::select`] for a plan and runs one of
//! three paths:
//!
//! - **direct** — small shapes (all dims ≤ 256) run an unpacked serial
//!   kernel; operands already fit in cache, so packing was pure
//!   overhead (a measured regression at 192³).
//! - **packed serial / parallel** — the classic BLIS/GotoBLAS
//!   structure: `n` tiled by `nc`, `k` by the fixed [`KC`], `m` by
//!   `mc`; operand panels packed into `mr`×`kc` / `kc`×`nr` strips and
//!   multiplied by a register-tile microkernel ([`crate::simd`] for
//!   AVX2+FMA, a portable scalar 4×8 otherwise). The parallel path
//!   double-buffers B panels: the next panel is packed by a pool task
//!   while the current one is being computed.
//! - **tune** — very large shapes on the AVX2 path measure a few
//!   blocking candidates once and persist the winner
//!   ([`crate::autotune`]).
//!
//! # Parallelism and determinism
//!
//! Every output element is owned by exactly one task, and its
//! accumulation order — ascending `pc` blocks of the fixed size
//! [`KC`], each summed in ascending `p` order — depends only on the
//! shape, never on the thread count or on blocking choices. For a
//! fixed `CAP_SIMD` mode, results are bitwise identical for any
//! `CAP_THREADS`, any `mc`/`nc`, and either AVX2 tile (both perform
//! one FMA per element per step). Only switching between scalar
//! (separate multiply and add) and AVX2 (fused) changes rounding.

use std::cell::RefCell;

use crate::select::{self, Config, Decision, Micro};
use crate::simd::{self, SimdMode, ACC_LEN};

pub(crate) use crate::select::KC;

/// Below this many flops (`2·m·n·k`) the dispatch overhead of the pool
/// outweighs the work and the packed kernel stays on the calling
/// thread.
const PARALLEL_FLOP_THRESHOLD: usize = 1 << 17;

/// A borrowed matrix of logical shape `rows × cols` with arbitrary
/// strides, letting one kernel serve `A`, `Aᵀ`, `B` and `Bᵀ` without
/// copying.
#[derive(Clone, Copy)]
pub(crate) struct MatRef<'a> {
    data: &'a [f32],
    row_stride: usize,
    col_stride: usize,
}

impl<'a> MatRef<'a> {
    /// A row-major `rows × cols` matrix.
    pub(crate) fn row_major(data: &'a [f32], cols: usize) -> Self {
        MatRef {
            data,
            row_stride: cols,
            col_stride: 1,
        }
    }

    /// The transpose of a row-major `cols × rows` matrix, viewed as
    /// `rows × cols` without copying.
    pub(crate) fn transposed(data: &'a [f32], rows: usize) -> Self {
        MatRef {
            data,
            row_stride: 1,
            col_stride: rows,
        }
    }

    #[inline]
    fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.row_stride + c * self.col_stride]
    }
}

thread_local! {
    /// Per-thread packing buffers (packed A strips, packed B panel) so
    /// concurrent row-block tasks never share scratch memory. Borrows
    /// are confined to code that never re-enters the pool, because a
    /// draining caller may execute unrelated tasks inline.
    static PACK_BUFFERS: RefCell<(Vec<f32>, Vec<f32>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Computes `out = A · B` where `A` is logically `m × k`, `B` is `k × n`
/// and `out` is a zeroed row-major `m × n` buffer.
pub(crate) fn gemm(m: usize, n: usize, k: usize, a: MatRef<'_>, b: MatRef<'_>, out: &mut [f32]) {
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        return; // out is already zero
    }
    let mode = simd::simd_mode();
    let plan = select::plan(m, n, k, b.col_stride == 1, mode);
    select::observe(&plan);
    match plan.decision {
        Decision::Direct => direct(n, k, a, b, out, mode),
        Decision::Packed(cfg) => packed(m, n, k, a, b, out, cfg),
        Decision::Tune { candidates, key } => tune(m, n, k, a, b, out, &candidates, &key),
    }
}

fn count_kernel(name: &'static str) {
    if cap_obs::enabled() {
        cap_obs::counter_add(name, 1);
    }
}

/// Unpacked small-shape path: serial, operands read in place.
fn direct(n: usize, k: usize, a: MatRef<'_>, b: MatRef<'_>, out: &mut [f32], mode: SimdMode) {
    #[cfg(target_arch = "x86_64")]
    if mode == SimdMode::Avx2 && b.col_stride == 1 {
        count_kernel("tensor.gemm.kernel.direct_avx2_total");
        simd::direct_rows_avx2(
            n,
            k,
            a.data,
            0,
            a.row_stride,
            a.col_stride,
            b.data,
            b.row_stride,
            out,
        );
        return;
    }
    let _ = mode;
    count_kernel("tensor.gemm.kernel.direct_scalar_total");
    direct_scalar(n, k, a, b, out);
}

/// Scalar direct kernel, any operand layout: `i`-`p`-`j` loop order
/// (row of B streamed per `p`), separate multiply and add, matching
/// the scalar packed path's per-element ascending-`p` order for
/// `k ≤ KC`.
fn direct_scalar(n: usize, k: usize, a: MatRef<'_>, b: MatRef<'_>, out: &mut [f32]) {
    let m = out.len() / n;
    if b.col_stride == 1 && a.col_stride == 1 {
        // Fully contiguous operands: hoist both row slices so the
        // inner loop carries no stride arithmetic (this path must not
        // lose to the naive reference loop, which is identical).
        for i in 0..m {
            let orow = &mut out[i * n..][..n];
            let arow = &a.data[i * a.row_stride..][..k];
            for (p, &av) in arow.iter().enumerate() {
                let brow = &b.data[p * b.row_stride..][..n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
    } else if b.col_stride == 1 {
        for i in 0..m {
            let orow = &mut out[i * n..][..n];
            for p in 0..k {
                let av = a.at(i, p);
                let brow = &b.data[p * b.row_stride..][..n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
    } else {
        for i in 0..m {
            for p in 0..k {
                let av = a.at(i, p);
                for j in 0..n {
                    out[i * n + j] += av * b.at(p, j);
                }
            }
        }
    }
}

/// Packed blocked path with the given configuration.
fn packed(
    m: usize,
    n: usize,
    k: usize,
    a: MatRef<'_>,
    b: MatRef<'_>,
    out: &mut [f32],
    cfg: Config,
) {
    count_kernel(match cfg.micro {
        Micro::Scalar4x8 => "tensor.gemm.kernel.scalar_4x8_total",
        Micro::Avx2_8x8 => "tensor.gemm.kernel.avx2_8x8_total",
        Micro::Avx2_16x4 => "tensor.gemm.kernel.avx2_16x4_total",
    });
    let flops = 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k);
    if flops < PARALLEL_FLOP_THRESHOLD || cap_par::effective_parallelism() == 1 {
        packed_serial(m, n, k, a, b, out, cfg);
    } else {
        packed_parallel(m, n, k, a, b, out, cfg);
    }
}

/// Serial blocked kernel (also the per-call body when the pool would
/// not split). Packing scratch lives in the thread-local buffers; the
/// borrow never spans a pool dispatch.
fn packed_serial(
    m: usize,
    n: usize,
    k: usize,
    a: MatRef<'_>,
    b: MatRef<'_>,
    out: &mut [f32],
    cfg: Config,
) {
    let (mr, nr) = (cfg.micro.mr(), cfg.micro.nr());
    PACK_BUFFERS.with(|bufs| {
        let mut bufs = bufs.borrow_mut();
        let (pa, pb) = &mut *bufs;
        pa.resize(cfg.mc.div_ceil(mr) * mr * KC, 0.0);
        pb.resize(cfg.nc.div_ceil(nr) * nr * KC, 0.0);
        for jc in (0..n).step_by(cfg.nc) {
            let ncc = cfg.nc.min(n - jc);
            for pc in (0..k).step_by(KC) {
                let kcc = KC.min(k - pc);
                pack_b(b, pc, kcc, jc, ncc, nr, pb);
                for ic in (0..m).step_by(cfg.mc) {
                    let mcc = cfg.mc.min(m - ic);
                    pack_a(a, ic, mcc, pc, kcc, mr, pa);
                    macro_kernel(cfg.micro, mcc, ncc, kcc, pa, pb, &mut out[ic * n..], n, jc);
                }
            }
        }
    });
}

/// Parallel blocked kernel with double-buffered B packing: per
/// `(jc, pc)` panel, one pool task packs the *next* panel while the
/// row-block tasks compute against the current one. B is packed once
/// per panel (the serial-per-task design packed it once per row
/// block).
fn packed_parallel(
    _m: usize,
    n: usize,
    k: usize,
    a: MatRef<'_>,
    b: MatRef<'_>,
    out: &mut [f32],
    cfg: Config,
) {
    let nr = cfg.micro.nr();
    let panel_len = cfg.nc.div_ceil(nr) * nr * KC;
    let mut panels: Vec<(usize, usize, usize, usize)> = Vec::new();
    for jc in (0..n).step_by(cfg.nc) {
        let ncc = cfg.nc.min(n - jc);
        for pc in (0..k).step_by(KC) {
            panels.push((jc, ncc, pc, KC.min(k - pc)));
        }
    }
    let mut cur = vec![0.0f32; panel_len];
    let mut next = vec![0.0f32; panel_len];
    if let Some(&(jc, ncc, pc, kcc)) = panels.first() {
        pack_b(b, pc, kcc, jc, ncc, nr, &mut cur);
    }
    for idx in 0..panels.len() {
        let (jc, ncc, pc, kcc) = panels[idx];
        {
            let cur_ref: &[f32] = &cur;
            let mut tasks: Vec<cap_par::ScopedTask<'_>> = Vec::new();
            // Pack-ahead first, so it overlaps the compute tasks.
            if let Some(&(njc, nncc, npc, nkcc)) = panels.get(idx + 1) {
                let next_slice: &mut [f32] = &mut next;
                tasks.push(Box::new(move || {
                    pack_b(b, npc, nkcc, njc, nncc, nr, next_slice);
                }));
            }
            for (block_idx, chunk) in out.chunks_mut(cfg.mc * n).enumerate() {
                tasks.push(Box::new(move || {
                    let rows = chunk.len() / n;
                    compute_row_block(
                        a,
                        block_idx * cfg.mc,
                        rows,
                        n,
                        jc,
                        ncc,
                        pc,
                        kcc,
                        cur_ref,
                        cfg,
                        chunk,
                    );
                }));
            }
            cap_par::run_tasks(tasks);
        }
        std::mem::swap(&mut cur, &mut next);
    }
}

/// One parallel task: pack this task's A strips and run the macro
/// kernel against the shared packed B panel. The thread-local borrow
/// stays inside this body, which performs no pool dispatch.
#[allow(clippy::too_many_arguments)]
fn compute_row_block(
    a: MatRef<'_>,
    row0: usize,
    rows: usize,
    n: usize,
    jc: usize,
    ncc: usize,
    pc: usize,
    kcc: usize,
    pb: &[f32],
    cfg: Config,
    out: &mut [f32],
) {
    let mr = cfg.micro.mr();
    PACK_BUFFERS.with(|bufs| {
        let mut bufs = bufs.borrow_mut();
        let (pa, _) = &mut *bufs;
        pa.resize(cfg.mc.div_ceil(mr) * mr * KC, 0.0);
        pack_a(a, row0, rows, pc, kcc, mr, pa);
        macro_kernel(cfg.micro, rows, ncc, kcc, pa, pb, out, n, jc);
    });
}

/// Measures every candidate once, writes the first candidate's result
/// to `out` and the rest to scratch, and records the fastest in the
/// autotune cache. All candidates are AVX2+FMA configurations, so
/// every run produces identical bits and tuning is invisible in the
/// output.
#[allow(clippy::too_many_arguments)] // GEMM operand set + tuning key
fn tune(
    m: usize,
    n: usize,
    k: usize,
    a: MatRef<'_>,
    b: MatRef<'_>,
    out: &mut [f32],
    candidates: &[Config],
    key: &str,
) {
    let mut best: Option<(Config, f64)> = None;
    let mut scratch: Vec<f32> = Vec::new();
    for (i, cfg) in candidates.iter().enumerate() {
        let start = cap_obs::clock::now();
        if i == 0 {
            packed(m, n, k, a, b, out, *cfg);
        } else {
            scratch.clear();
            scratch.resize(m * n, 0.0);
            packed(m, n, k, a, b, &mut scratch, *cfg);
        }
        let ns = cap_obs::clock::elapsed_secs(start) * 1e9;
        if best.map(|(_, b_ns)| ns < b_ns).unwrap_or(true) {
            best = Some((*cfg, ns));
        }
    }
    let Some((winner, ns)) = best else {
        return; // empty candidate list: nothing ran, out untouched
    };
    crate::autotune::record(key, winner, ns);
    if cap_obs::enabled() {
        cap_obs::emit(
            cap_obs::Event::new("gemm.autotune")
                .str("key", key)
                .str("winner", winner.describe())
                .f64("ns_per_iter", ns)
                .u64("candidates", candidates.len() as u64),
        );
    }
}

/// Packs `A[row0 .. row0+mc, pc .. pc+kc]` into `mr`-row strips laid
/// out `p`-major (`strip · kc · mr + p · mr + r`), zero-padding the
/// ragged final strip so the microkernel never branches on row
/// validity.
fn pack_a(a: MatRef<'_>, row0: usize, mc: usize, pc: usize, kc: usize, mr: usize, pa: &mut [f32]) {
    for (strip, ir) in (0..mc).step_by(mr).enumerate() {
        let live = mr.min(mc - ir);
        let dst = &mut pa[strip * kc * mr..(strip + 1) * kc * mr];
        for p in 0..kc {
            let d = &mut dst[p * mr..p * mr + mr];
            for (r, slot) in d.iter_mut().enumerate() {
                *slot = if r < live {
                    a.at(row0 + ir + r, pc + p)
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs `B[pc .. pc+kc, jc .. jc+nc]` into `nr`-column strips laid
/// out `p`-major (`strip · kc · nr + p · nr + c`), zero-padding the
/// ragged final strip.
fn pack_b(b: MatRef<'_>, pc: usize, kc: usize, jc: usize, nc: usize, nr: usize, pb: &mut [f32]) {
    for (strip, jr) in (0..nc).step_by(nr).enumerate() {
        let live = nr.min(nc - jr);
        let dst = &mut pb[strip * kc * nr..(strip + 1) * kc * nr];
        for p in 0..kc {
            let d = &mut dst[p * nr..p * nr + nr];
            for (c, slot) in d.iter_mut().enumerate() {
                *slot = if c < live {
                    b.at(pc + p, jc + jr + c)
                } else {
                    0.0
                };
            }
        }
    }
}

/// Runs the selected microkernel over every `mr`×`nr` tile of an
/// `mc × nc` block, accumulating into `out` (row-major with leading
/// dimension `n`, columns offset by `jc`).
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    micro: Micro,
    mc: usize,
    nc: usize,
    kc: usize,
    pa: &[f32],
    pb: &[f32],
    out: &mut [f32],
    n: usize,
    jc: usize,
) {
    let (mr, nr) = (micro.mr(), micro.nr());
    for (bstrip, jr) in (0..nc).step_by(nr).enumerate() {
        let live_n = nr.min(nc - jr);
        let pbs = &pb[bstrip * kc * nr..(bstrip + 1) * kc * nr];
        for (astrip, ir) in (0..mc).step_by(mr).enumerate() {
            let live_m = mr.min(mc - ir);
            let pas = &pa[astrip * kc * mr..(astrip + 1) * kc * mr];
            let mut acc = [0.0f32; ACC_LEN];
            run_micro(micro, kc, pas, pbs, &mut acc);
            for r in 0..live_m {
                let orow = &mut out[(ir + r) * n + jc + jr..][..live_n];
                for (c, o) in orow.iter_mut().enumerate() {
                    *o += acc[r * nr + c];
                }
            }
        }
    }
}

/// Dispatches one register tile. The accumulator is a flat
/// `mr`-major/`nr`-stride array shared by all kernels.
fn run_micro(micro: Micro, kc: usize, pa: &[f32], pb: &[f32], acc: &mut [f32; ACC_LEN]) {
    match micro {
        Micro::Scalar4x8 => micro_scalar_4x8(kc, pa, pb, acc),
        #[cfg(target_arch = "x86_64")]
        Micro::Avx2_8x8 => simd::micro_8x8_avx2(kc, pa, pb, acc),
        #[cfg(target_arch = "x86_64")]
        Micro::Avx2_16x4 => simd::micro_16x4_avx2(kc, pa, pb, acc),
        // The selector never picks a SIMD kernel off-architecture.
        #[cfg(not(target_arch = "x86_64"))]
        _ => micro_scalar_4x8(kc, pa, pb, acc),
    }
}

/// Portable 4×8 register tile: a rank-`kc` update accumulated in
/// ascending `p` order with separate multiply and add — the
/// cross-architecture reference kernel.
#[inline]
fn micro_scalar_4x8(kc: usize, pa: &[f32], pb: &[f32], acc: &mut [f32; ACC_LEN]) {
    for p in 0..kc {
        let av = &pa[p * 4..p * 4 + 4];
        let bv = &pb[p * 8..p * 8 + 8];
        for r in 0..4 {
            let a = av[r];
            for c in 0..8 {
                acc[r * 8 + c] += a * bv[c];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f64; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    out[i * n + j] += f64::from(a[i * k + p]) * f64::from(b[p * n + j]);
                }
            }
        }
        out.into_iter().map(|v| v as f32).collect()
    }

    fn fill(len: usize, seed: f32) -> Vec<f32> {
        (0..len).map(|i| ((i as f32) * seed).sin()).collect()
    }

    fn run_packed(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], cfg: Config) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        packed(
            m,
            n,
            k,
            MatRef::row_major(a, k),
            MatRef::row_major(b, n),
            &mut out,
            cfg,
        );
        out
    }

    #[test]
    fn blocked_matches_reference_on_edge_shapes() {
        // Shapes straddling every blocking boundary: sub-tile, ragged
        // tiles, and k > KC so multiple pc blocks accumulate.
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 7, 5),
            (4, 8, 4),
            (5, 11, KC + 17),
            (69, 8, 33),
            (65, 130, 300),
            (300, 280, 70),
        ] {
            let a = fill(m * k, 0.137);
            let b = fill(k * n, 0.291);
            let mut out = vec![0.0f32; m * n];
            gemm(
                m,
                n,
                k,
                MatRef::row_major(&a, k),
                MatRef::row_major(&b, n),
                &mut out,
            );
            let want = reference(m, n, k, &a, &b);
            for (i, (&got, &expect)) in out.iter().zip(want.iter()).enumerate() {
                let tol = 1e-4 * (1.0 + expect.abs());
                assert!(
                    (got - expect).abs() < tol,
                    "({m},{n},{k}) element {i}: {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn every_packed_config_matches_reference() {
        let (m, n, k) = (70, 90, 130);
        let a = fill(m * k, 0.173);
        let b = fill(k * n, 0.119);
        let want = reference(m, n, k, &a, &b);
        let mut configs = vec![Config {
            micro: Micro::Scalar4x8,
            mc: 64,
            nc: 512,
        }];
        if crate::simd::avx2_available() {
            configs.push(Config {
                micro: Micro::Avx2_8x8,
                mc: 128,
                nc: 512,
            });
            configs.push(Config {
                micro: Micro::Avx2_16x4,
                mc: 128,
                nc: 64,
            });
        }
        for cfg in configs {
            let out = run_packed(m, n, k, &a, &b, cfg);
            for (i, (&got, &expect)) in out.iter().zip(want.iter()).enumerate() {
                let tol = 1e-4 * (1.0 + expect.abs());
                assert!(
                    (got - expect).abs() < tol,
                    "{} element {i}: {got} vs {expect}",
                    cfg.describe()
                );
            }
        }
    }

    #[test]
    fn avx2_tiles_and_blockings_are_bit_identical() {
        // The determinism contract: blocking parameters and the choice
        // between the two FMA tiles never change output bits — only
        // the ISA pin does. This is what lets the autotuner measure
        // candidates invisibly.
        if !crate::simd::avx2_available() {
            return;
        }
        let (m, n, k) = (97, 123, KC + 40);
        let a = fill(m * k, 0.211);
        let b = fill(k * n, 0.307);
        let base = run_packed(
            m,
            n,
            k,
            &a,
            &b,
            Config {
                micro: Micro::Avx2_8x8,
                mc: 128,
                nc: 512,
            },
        );
        for cfg in [
            Config {
                micro: Micro::Avx2_8x8,
                mc: 32,
                nc: 64,
            },
            Config {
                micro: Micro::Avx2_16x4,
                mc: 128,
                nc: 512,
            },
            Config {
                micro: Micro::Avx2_16x4,
                mc: 48,
                nc: 96,
            },
        ] {
            let got = run_packed(m, n, k, &a, &b, cfg);
            assert!(
                got.iter()
                    .zip(base.iter())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "bits differ for {}",
                cfg.describe()
            );
        }
    }

    #[test]
    fn direct_path_matches_packed_on_strided_operands() {
        // a transposed A view through both paths.
        let (m, n, k) = (33, 40, 21);
        let a_t = fill(k * m, 0.31); // stores k×m
        let b = fill(k * n, 0.27);
        let want = {
            let mut a = vec![0.0f32; m * k];
            for i in 0..m {
                for p in 0..k {
                    a[i * k + p] = a_t[p * m + i];
                }
            }
            reference(m, n, k, &a, &b)
        };
        let mut out = vec![0.0f32; m * n];
        gemm(
            m,
            n,
            k,
            MatRef::transposed(&a_t, m),
            MatRef::row_major(&b, n),
            &mut out,
        );
        for (i, (&got, &expect)) in out.iter().zip(want.iter()).enumerate() {
            let tol = 1e-4 * (1.0 + expect.abs());
            assert!((got - expect).abs() < tol, "element {i}: {got} vs {expect}");
        }
    }

    #[test]
    fn transposed_views_index_correctly() {
        let m = 5;
        let k = 9;
        // data stores the k×m transpose; the view must read A[i][p].
        let data = fill(k * m, 0.41);
        let view = MatRef::transposed(&data, m);
        for i in 0..m {
            for p in 0..k {
                assert_eq!(view.at(i, p), data[p * m + i]);
            }
        }
    }
}
