//! Cache-blocked GEMM shared by the three matmul variants.
//!
//! The kernel follows the classic BLIS/GotoBLAS structure: the `n`
//! dimension is tiled by [`NC`], the `k` dimension by [`KC`] and the `m`
//! dimension by [`MC`]; operand panels are packed into contiguous
//! [`MR`]×`kc` / `kc`×[`NR`] strips and multiplied by a register-blocked
//! [`MR`]×[`NR`] microkernel. Transposed operands are handled by the
//! stride description in [`MatRef`], so no transpose is materialised.
//!
//! # Parallelism and determinism
//!
//! Output rows are distributed across the `cap-par` pool in blocks of
//! [`MC`]. Every output element is owned by exactly one task, and its
//! accumulation order — ascending `pc` blocks of the fixed size [`KC`],
//! each summed in ascending `p` order inside the microkernel — depends
//! only on the shape, never on the thread count. Results are therefore
//! bitwise identical for any `CAP_THREADS` setting.

use std::cell::RefCell;

/// Microkernel row count (register block in `m`).
pub(crate) const MR: usize = 4;
/// Microkernel column count (register block in `n`).
pub(crate) const NR: usize = 8;
/// `k`-dimension cache block. Fixed (never adapted to thread count or
/// shape) because it determines the floating-point summation grouping.
pub(crate) const KC: usize = 256;
/// `m`-dimension cache block; also the row granularity of parallel tasks.
pub(crate) const MC: usize = 64;
/// `n`-dimension cache block.
pub(crate) const NC: usize = 512;

/// Below this many flops (`2·m·n·k`) the dispatch overhead of the pool
/// outweighs the work and the kernel stays on the calling thread.
const PARALLEL_FLOP_THRESHOLD: usize = 1 << 17;

/// A borrowed matrix of logical shape `rows × cols` with arbitrary
/// strides, letting one kernel serve `A`, `Aᵀ`, `B` and `Bᵀ` without
/// copying.
#[derive(Clone, Copy)]
pub(crate) struct MatRef<'a> {
    data: &'a [f32],
    row_stride: usize,
    col_stride: usize,
}

impl<'a> MatRef<'a> {
    /// A row-major `rows × cols` matrix.
    pub(crate) fn row_major(data: &'a [f32], cols: usize) -> Self {
        MatRef {
            data,
            row_stride: cols,
            col_stride: 1,
        }
    }

    /// The transpose of a row-major `cols × rows` matrix, viewed as
    /// `rows × cols` without copying.
    pub(crate) fn transposed(data: &'a [f32], rows: usize) -> Self {
        MatRef {
            data,
            row_stride: 1,
            col_stride: rows,
        }
    }

    #[inline]
    fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.row_stride + c * self.col_stride]
    }
}

thread_local! {
    /// Per-thread packing buffers (packed A strip, packed B panel) so
    /// concurrent row-block tasks never share scratch memory.
    static PACK_BUFFERS: RefCell<(Vec<f32>, Vec<f32>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Computes `out = A · B` where `A` is logically `m × k`, `B` is `k × n`
/// and `out` is a zeroed row-major `m × n` buffer.
pub(crate) fn gemm(m: usize, n: usize, k: usize, a: MatRef<'_>, b: MatRef<'_>, out: &mut [f32]) {
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        return; // out is already zero
    }
    let flops = 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k);
    if flops < PARALLEL_FLOP_THRESHOLD || cap_par::effective_parallelism() == 1 {
        gemm_rows(0, m, n, k, a, b, out);
        return;
    }
    // Row blocks of MC are the parallel grain; chunk boundaries depend
    // only on (m, n), and each task owns its output rows exclusively.
    cap_par::parallel_chunks_mut(out, MC * n, |block_idx, chunk| {
        let row0 = block_idx * MC;
        let rows = chunk.len() / n;
        gemm_rows(row0, rows, n, k, a, b, chunk);
    });
}

/// Serial blocked kernel for output rows `row0 .. row0 + rows`; `out` is
/// the row-major `rows × n` slice for exactly those rows.
fn gemm_rows(
    row0: usize,
    rows: usize,
    n: usize,
    k: usize,
    a: MatRef<'_>,
    b: MatRef<'_>,
    out: &mut [f32],
) {
    PACK_BUFFERS.with(|bufs| {
        let mut bufs = bufs.borrow_mut();
        let (pa, pb) = &mut *bufs;
        pa.resize(MC.div_ceil(MR) * MR * KC, 0.0);
        pb.resize(NC.div_ceil(NR) * NR * KC, 0.0);
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                pack_b(b, pc, kc, jc, nc, pb);
                for ic in (0..rows).step_by(MC) {
                    let mc = MC.min(rows - ic);
                    pack_a(a, row0 + ic, mc, pc, kc, pa);
                    macro_kernel(mc, nc, kc, pa, pb, &mut out[ic * n..], n, jc);
                }
            }
        }
    });
}

/// Packs `A[row0 .. row0+mc, pc .. pc+kc]` into MR-row strips laid out
/// `p`-major (`strip · kc · MR + p · MR + r`), zero-padding the ragged
/// final strip so the microkernel never branches on row validity.
fn pack_a(a: MatRef<'_>, row0: usize, mc: usize, pc: usize, kc: usize, pa: &mut [f32]) {
    for (strip, ir) in (0..mc).step_by(MR).enumerate() {
        let mr = MR.min(mc - ir);
        let dst = &mut pa[strip * kc * MR..(strip + 1) * kc * MR];
        for p in 0..kc {
            let d = &mut dst[p * MR..p * MR + MR];
            for (r, slot) in d.iter_mut().enumerate() {
                *slot = if r < mr {
                    a.at(row0 + ir + r, pc + p)
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs `B[pc .. pc+kc, jc .. jc+nc]` into NR-column strips laid out
/// `p`-major (`strip · kc · NR + p · NR + c`), zero-padding the ragged
/// final strip.
fn pack_b(b: MatRef<'_>, pc: usize, kc: usize, jc: usize, nc: usize, pb: &mut [f32]) {
    for (strip, jr) in (0..nc).step_by(NR).enumerate() {
        let nr = NR.min(nc - jr);
        let dst = &mut pb[strip * kc * NR..(strip + 1) * kc * NR];
        for p in 0..kc {
            let d = &mut dst[p * NR..p * NR + NR];
            for (c, slot) in d.iter_mut().enumerate() {
                *slot = if c < nr {
                    b.at(pc + p, jc + jr + c)
                } else {
                    0.0
                };
            }
        }
    }
}

/// Runs the microkernel over every MR×NR tile of an `mc × nc` block,
/// accumulating into `out` (row-major with leading dimension `n`,
/// columns offset by `jc`).
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    mc: usize,
    nc: usize,
    kc: usize,
    pa: &[f32],
    pb: &[f32],
    out: &mut [f32],
    n: usize,
    jc: usize,
) {
    for (bstrip, jr) in (0..nc).step_by(NR).enumerate() {
        let nr = NR.min(nc - jr);
        let pbs = &pb[bstrip * kc * NR..(bstrip + 1) * kc * NR];
        for (astrip, ir) in (0..mc).step_by(MR).enumerate() {
            let mr = MR.min(mc - ir);
            let pas = &pa[astrip * kc * MR..(astrip + 1) * kc * MR];
            let acc = micro_kernel(kc, pas, pbs);
            for (r, acc_row) in acc.iter().enumerate().take(mr) {
                let orow = &mut out[(ir + r) * n + jc + jr..][..nr];
                for (o, &v) in orow.iter_mut().zip(acc_row.iter()) {
                    *o += v;
                }
            }
        }
    }
}

/// MR×NR register-blocked inner kernel: a rank-`kc` update accumulated
/// in ascending `p` order into a fixed-size accumulator the compiler
/// keeps in registers / vector lanes.
#[inline]
fn micro_kernel(kc: usize, pa: &[f32], pb: &[f32]) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..kc {
        let av = &pa[p * MR..p * MR + MR];
        let bv = &pb[p * NR..p * NR + NR];
        for r in 0..MR {
            let a = av[r];
            for c in 0..NR {
                acc[r][c] += a * bv[c];
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f64; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    out[i * n + j] += f64::from(a[i * k + p]) * f64::from(b[p * n + j]);
                }
            }
        }
        out.into_iter().map(|v| v as f32).collect()
    }

    fn fill(len: usize, seed: f32) -> Vec<f32> {
        (0..len).map(|i| ((i as f32) * seed).sin()).collect()
    }

    #[test]
    fn blocked_matches_reference_on_edge_shapes() {
        // Shapes straddling every blocking boundary: sub-tile, ragged
        // tiles, and k > KC so multiple pc blocks accumulate.
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 7, 5),
            (MR, NR, 4),
            (MR + 1, NR + 3, KC + 17),
            (MC + 5, NR, 33),
            (65, 130, 300),
        ] {
            let a = fill(m * k, 0.137);
            let b = fill(k * n, 0.291);
            let mut out = vec![0.0f32; m * n];
            gemm(
                m,
                n,
                k,
                MatRef::row_major(&a, k),
                MatRef::row_major(&b, n),
                &mut out,
            );
            let want = reference(m, n, k, &a, &b);
            for (i, (&got, &expect)) in out.iter().zip(want.iter()).enumerate() {
                let tol = 1e-4 * (1.0 + expect.abs());
                assert!(
                    (got - expect).abs() < tol,
                    "({m},{n},{k}) element {i}: {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn transposed_views_index_correctly() {
        let m = 5;
        let k = 9;
        // data stores the k×m transpose; the view must read A[i][p].
        let data = fill(k * m, 0.41);
        let view = MatRef::transposed(&data, m);
        for i in 0..m {
            for p in 0..k {
                assert_eq!(view.at(i, p), data[p * m + i]);
            }
        }
    }
}
