//! Persistent GEMM autotune cache.
//!
//! Large shapes that miss the cache are measured once (every candidate
//! is bit-identical, so tuning never changes results — see
//! `crate::select`); the winner is recorded under a
//! `(shape-class, arch, mode)` key and written through
//! [`cap_obs::fsx::atomic_write`] so repeated prune runs skip
//! re-measurement. The file is loaded lazily on first lookup.
//!
//! Environment:
//! - `CAP_AUTOTUNE=off` disables persistence (in-memory only);
//! - `CAP_AUTOTUNE=<path>` uses that file;
//! - unset defaults to `results/cap-autotune.json` (directories are
//!   created on first write). A legacy `cap-autotune.json` in the
//!   working directory — the pre-PR-8 default — is still *read* when
//!   the default path does not exist yet, so old caches keep working;
//!   writes go to the new location.
//!
//! The loader is deliberately paranoid: a hostile, truncated or
//! garbage cache file is *ignored* (counted in telemetry), never a
//! panic — the cache is an optimisation, not an input.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

use cap_obs::json::{self, Json};

use crate::select::{Config, Micro};

/// Cache file format version; bump on incompatible layout changes
/// (old versions are discarded on load).
const FORMAT_VERSION: u64 = 1;

/// A tuned choice: the winning config and its measured time, kept so
/// humans (and benches) can audit what the tuner saw.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Choice {
    pub(crate) config: Config,
    pub(crate) ns_per_iter: f64,
}

struct State {
    entries: BTreeMap<String, Choice>,
    /// `None` when persistence is off.
    path: Option<PathBuf>,
}

/// Default cache location when `CAP_AUTOTUNE` is unset.
const DEFAULT_PATH: &str = "results/cap-autotune.json";

/// Pre-PR-8 default, still honoured as a read-only fallback.
const LEGACY_PATH: &str = "cap-autotune.json";

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| {
        let path = configured_path();
        let defaulted = std::env::var_os("CAP_AUTOTUNE").is_none();
        let mut entries = BTreeMap::new();
        if let Some(p) = &path {
            // Missing file is the normal first-run case; any read
            // error just means we start empty. When running on the
            // default path, an old root-level cache is read once so
            // upgrades don't re-tune (writes go to the new path).
            let text = std::fs::read_to_string(p).or_else(|e| {
                if defaulted {
                    std::fs::read_to_string(LEGACY_PATH)
                } else {
                    Err(e)
                }
            });
            if let Ok(text) = text {
                entries = parse_cache(&text);
                if cap_obs::enabled() {
                    cap_obs::counter_add("tensor.gemm.autotune.loaded_total", entries.len() as u64);
                }
            }
        }
        Mutex::new(State { entries, path })
    })
}

fn lock() -> std::sync::MutexGuard<'static, State> {
    match state().lock() {
        Ok(g) => g,
        // A panic while holding the lock can only leave a partially
        // updated in-memory map, which is still well-formed.
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn configured_path() -> Option<PathBuf> {
    match std::env::var("CAP_AUTOTUNE") {
        Ok(v) => {
            let v = v.trim().to_string();
            if v.is_empty() || v.eq_ignore_ascii_case("off") || v == "0" {
                None
            } else {
                Some(PathBuf::from(v))
            }
        }
        Err(_) => Some(PathBuf::from(DEFAULT_PATH)),
    }
}

/// Whether tuned winners will be written to disk. The selector only
/// spends time measuring candidates when the result can be kept.
pub(crate) fn persistence_enabled() -> bool {
    lock().path.is_some()
}

/// Looks up a previously tuned choice for `key` (see
/// [`crate::select::cache_key`]).
pub(crate) fn lookup(key: &str) -> Option<Choice> {
    lock().entries.get(key).copied()
}

/// Records a tuned winner and persists the whole cache atomically.
/// Persistence failures are counted, not raised: the in-memory entry
/// still prevents re-tuning within this process.
pub(crate) fn record(key: &str, config: Config, ns_per_iter: f64) {
    let mut st = lock();
    st.entries.insert(
        key.to_string(),
        Choice {
            config,
            ns_per_iter,
        },
    );
    let Some(path) = st.path.clone() else {
        return;
    };
    let body = render_cache(&st.entries);
    // The default path lives under results/; create the directory so a
    // fresh checkout's first tuned run can persist.
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    if cap_obs::fsx::atomic_write(&path, body.as_bytes()).is_err() && cap_obs::enabled() {
        cap_obs::counter_add("tensor.gemm.autotune.write_errors_total", 1);
    }
}

fn render_cache(entries: &BTreeMap<String, Choice>) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": {");
    let mut first = true;
    for (key, choice) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        json::write_str(&mut out, key);
        out.push_str(": {\"micro\": ");
        json::write_str(&mut out, choice.config.micro.name());
        out.push_str(&format!(
            ", \"mc\": {}, \"nc\": {}, \"ns_per_iter\": ",
            choice.config.mc, choice.config.nc
        ));
        json::write_f64(&mut out, choice.ns_per_iter);
        out.push('}');
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Parses a cache file, dropping anything malformed. Returns an empty
/// map (and bumps a counter) rather than failing: the cache must never
/// be able to take the process down.
fn parse_cache(text: &str) -> BTreeMap<String, Choice> {
    let mut out = BTreeMap::new();
    let doc = match json::parse(text) {
        Ok(doc) => doc,
        Err(_) => {
            if cap_obs::enabled() {
                cap_obs::counter_add("tensor.gemm.autotune.load_errors_total", 1);
            }
            return out;
        }
    };
    if doc.get("version").and_then(Json::as_u64) != Some(FORMAT_VERSION) {
        if cap_obs::enabled() {
            cap_obs::counter_add("tensor.gemm.autotune.load_errors_total", 1);
        }
        return out;
    }
    let Some(Json::Obj(entries)) = doc.get("entries") else {
        if cap_obs::enabled() {
            cap_obs::counter_add("tensor.gemm.autotune.load_errors_total", 1);
        }
        return out;
    };
    for (key, entry) in entries {
        let Some(choice) = parse_entry(entry) else {
            if cap_obs::enabled() {
                cap_obs::counter_add("tensor.gemm.autotune.bad_entries_total", 1);
            }
            continue;
        };
        out.insert(key.clone(), choice);
    }
    out
}

/// Validates one cache entry. Blocking parameters are clamped to sane
/// bounds so a tampered file can't make the kernels allocate absurd
/// pack buffers or degenerate blocks.
fn parse_entry(entry: &Json) -> Option<Choice> {
    let micro = Micro::parse(entry.get("micro")?.as_str()?)?;
    let mc = entry.get("mc")?.as_u64()? as usize;
    let nc = entry.get("nc")?.as_u64()? as usize;
    if !(16..=4096).contains(&mc) || !(64..=8192).contains(&nc) {
        return None;
    }
    let ns_per_iter = entry
        .get("ns_per_iter")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    if !ns_per_iter.is_finite() || ns_per_iter < 0.0 {
        return None;
    }
    Some(Choice {
        config: Config { micro, mc, nc },
        ns_per_iter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_render_parse() {
        let mut entries = BTreeMap::new();
        entries.insert(
            "m1024-n1024-k1024|x86_64|avx2".to_string(),
            Choice {
                config: Config {
                    micro: Micro::Avx2_8x8,
                    mc: 128,
                    nc: 512,
                },
                ns_per_iter: 1.25e8,
            },
        );
        let text = render_cache(&entries);
        let back = parse_cache(&text);
        assert_eq!(back.len(), 1);
        let c = back.values().next().map(|c| c.config);
        assert_eq!(
            c,
            Some(Config {
                micro: Micro::Avx2_8x8,
                mc: 128,
                nc: 512
            })
        );
    }

    #[test]
    fn hostile_inputs_yield_empty_cache_without_panic() {
        for garbage in [
            "",
            "not json at all",
            "{\"version\": 999, \"entries\": {}}",
            "{\"version\": 1}",
            "{\"version\": 1, \"entries\": [1,2,3]}",
            "{\"version\": 1, \"entries\": {\"k\": 42}}",
            "{\"version\": 1, \"entries\": {\"k\": {\"micro\": \"evil\", \"mc\": 64, \"nc\": 512}}}",
            "\u{0}\u{1}\u{2}binary",
            "{\"version\": 1, \"entries\": {\"k\": {\"micro\": \"avx2_8x8\", \"mc\": 99999999, \"nc\": 512}}}",
            "{\"version\": 1, \"entries\": {\"k\": {\"micro\": \"avx2_8x8\", \"mc\": 128, \"nc\": 512, \"ns_per_iter\": -5}}}",
        ] {
            assert!(parse_cache(garbage).is_empty(), "accepted: {garbage:?}");
        }
    }

    #[test]
    fn oversized_blocking_is_rejected_but_valid_neighbors_survive() {
        let text = concat!(
            "{\"version\": 1, \"entries\": {",
            "\"bad\": {\"micro\": \"avx2_8x8\", \"mc\": 8, \"nc\": 512, \"ns_per_iter\": 1},",
            "\"good\": {\"micro\": \"avx2_16x4\", \"mc\": 128, \"nc\": 256, \"ns_per_iter\": 2}",
            "}}"
        );
        let back = parse_cache(text);
        assert_eq!(back.len(), 1);
        assert!(back.contains_key("good"));
    }
}
