#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

//! Dense `f32` tensors and the linear-algebra kernels that back the
//! class-aware pruning reproduction.
//!
//! The crate provides exactly the substrate the paper's experiments rest
//! on when they run on PyTorch: an NCHW tensor type ([`Tensor`]), matrix
//! multiplication ([`matmul`]), the im2col/col2im lowering used to express
//! convolution as matmul ([`im2col`], [`col2im`]), and the doubly-blocked
//! Toeplitz construction from Fig. 2 of the paper that rewrites a
//! convolution kernel as a sparse matrix ([`toeplitz::toeplitz_matrix`]).
//!
//! # Example
//!
//! ```
//! use cap_tensor::Tensor;
//!
//! # fn main() -> Result<(), cap_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])?;
//! let b = Tensor::ones(&[3, 2]);
//! let c = cap_tensor::matmul(&a, &b)?;
//! assert_eq!(c.shape(), &[2, 2]);
//! assert_eq!(c.data()[0], 6.0);
//! # Ok(())
//! # }
//! ```

mod autotune;
mod conv;
mod error;
mod gemm;
mod init;
mod matmul;
mod reduce;
mod select;
mod simd;
mod tensor;
pub mod toeplitz;

pub use conv::{col2im, col2im_sample, conv_output_size, im2col, Conv2dGeometry};
pub use error::TensorError;
pub use init::{kaiming_normal, randn, uniform};
pub use matmul::{
    matmul, matmul_sparse_aware, matmul_transpose_a, matmul_transpose_b, transpose2d,
};
pub use reduce::{argmax_rows, max_all, mean_all, softmax_rows, sum_all};
pub use select::gemm_plan_summary;
pub use simd::{avx2_available, set_simd_mode, simd_mode, SimdMode};
pub use tensor::Tensor;
