use crate::Tensor;
use rand::Rng;

/// Samples a tensor with i.i.d. normal entries `N(mean, std²)`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let t = cap_tensor::randn(&[4, 4], 0.0, 1.0, &mut rng);
/// assert_eq!(t.numel(), 16);
/// ```
pub fn randn(shape: &[usize], mean: f32, std: f32, rng: &mut impl Rng) -> Tensor {
    // Box-Muller transform; avoids a dependency on rand_distr.
    let numel: usize = shape.iter().product();
    let mut data = Vec::with_capacity(numel);
    while data.len() < numel {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(mean + std * r * theta.cos());
        if data.len() < numel {
            data.push(mean + std * r * theta.sin());
        }
    }
    Tensor::from_vec(shape.to_vec(), data).expect("length matches by construction")
}

/// Samples a tensor with i.i.d. uniform entries in `[lo, hi)`.
pub fn uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    Tensor::from_fn(shape, |_| rng.gen_range(lo..hi))
}

/// Kaiming (He) normal initialisation for convolution / linear weights:
/// `N(0, sqrt(2 / fan_in)²)` where `fan_in` is the product of all
/// dimensions except the first.
pub fn kaiming_normal(shape: &[usize], rng: &mut impl Rng) -> Tensor {
    let fan_in: usize = shape.iter().skip(1).product::<usize>().max(1);
    let std = (2.0 / fan_in as f32).sqrt();
    randn(shape, 0.0, std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn randn_moments_roughly_correct() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let t = randn(&[10_000], 1.0, 2.0, &mut rng);
        let mean: f64 = t.data().iter().map(|&x| f64::from(x)).sum::<f64>() / 10_000.0;
        let var: f64 = t
            .data()
            .iter()
            .map(|&x| (f64::from(x) - mean).powi(2))
            .sum::<f64>()
            / 10_000.0;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.4, "var {var}");
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let t = uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn kaiming_scales_with_fan_in() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let t = kaiming_normal(&[64, 32, 3, 3], &mut rng);
        let var: f64 = t
            .data()
            .iter()
            .map(|&x| f64::from(x) * f64::from(x))
            .sum::<f64>()
            / t.numel() as f64;
        let expected = 2.0 / (32.0 * 9.0);
        assert!(
            (var - expected).abs() < expected * 0.3,
            "var {var} vs {expected}"
        );
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = randn(&[16], 0.0, 1.0, &mut rand::rngs::StdRng::seed_from_u64(42));
        let b = randn(&[16], 0.0, 1.0, &mut rand::rngs::StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
