use crate::{Tensor, TensorError};

/// Spatial output size of a convolution along one axis.
///
/// # Errors
///
/// Returns [`TensorError::InvalidGeometry`] when the kernel does not fit
/// the padded input or the stride is zero.
pub fn conv_output_size(
    input: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> Result<usize, TensorError> {
    if stride == 0 {
        return Err(TensorError::InvalidGeometry {
            reason: "stride must be non-zero".to_string(),
        });
    }
    let padded = input + 2 * padding;
    if kernel == 0 || kernel > padded {
        return Err(TensorError::InvalidGeometry {
            reason: format!("kernel {kernel} does not fit padded input {padded}"),
        });
    }
    Ok((padded - kernel) / stride + 1)
}

/// Geometry of a 2-D convolution: channel counts, kernel size, stride and
/// padding, plus the derived output size.
///
/// # Example
///
/// ```
/// use cap_tensor::Conv2dGeometry;
/// # fn main() -> Result<(), cap_tensor::TensorError> {
/// let g = Conv2dGeometry::new(3, 8, 3, 1, 1, 16, 16)?;
/// assert_eq!((g.out_h, g.out_w), (16, 16));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeometry {
    /// Input channel count.
    pub in_channels: usize,
    /// Output channel (filter) count.
    pub out_channels: usize,
    /// Square kernel side length.
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding in both spatial dimensions.
    pub padding: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

impl Conv2dGeometry {
    /// Validates and constructs a convolution geometry.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if any dimension is zero or
    /// the kernel does not fit the padded input.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        in_h: usize,
        in_w: usize,
    ) -> Result<Self, TensorError> {
        if in_channels == 0 || out_channels == 0 {
            return Err(TensorError::InvalidGeometry {
                reason: "channel counts must be non-zero".to_string(),
            });
        }
        let out_h = conv_output_size(in_h, kernel, stride, padding)?;
        let out_w = conv_output_size(in_w, kernel, stride, padding)?;
        Ok(Conv2dGeometry {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            in_h,
            in_w,
            out_h,
            out_w,
        })
    }

    /// Number of rows of the im2col matrix: `in_channels * kernel²`.
    pub fn col_rows(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Number of columns of the im2col matrix: `out_h * out_w`.
    pub fn col_cols(&self) -> usize {
        self.out_h * self.out_w
    }
}

/// Lowers one input sample `[in_channels, in_h, in_w]` (given as the
/// `n`-th sample of a 4-D batch) into the im2col matrix
/// `[in_channels * k * k, out_h * out_w]`.
///
/// Column `(oh * out_w + ow)` holds the receptive field of output position
/// `(oh, ow)`; row `((c * k + kh) * k + kw)` holds input channel `c`,
/// kernel offset `(kh, kw)`. Out-of-bounds (padding) positions are zero.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] if `input` is not 4-D or the
/// sample index / channel count disagrees with `geom`.
pub fn im2col(input: &Tensor, n: usize, geom: &Conv2dGeometry) -> Result<Tensor, TensorError> {
    let _span = cap_obs::span!("tensor.im2col");
    if input.ndim() != 4 {
        return Err(TensorError::InvalidShape {
            shape: input.shape().to_vec(),
            expected: "4-D NCHW input",
        });
    }
    if n >= input.dim(0)
        || input.dim(1) != geom.in_channels
        || input.dim(2) != geom.in_h
        || input.dim(3) != geom.in_w
    {
        return Err(TensorError::InvalidShape {
            shape: input.shape().to_vec(),
            expected: "input matching convolution geometry",
        });
    }
    let k = geom.kernel;
    let mut cols = Tensor::zeros(&[geom.col_rows(), geom.col_cols()]);
    let ncols = geom.col_cols();
    let data = input.data();
    let cols_data = cols.data_mut();
    for c in 0..geom.in_channels {
        for kh in 0..k {
            for kw in 0..k {
                let row = (c * k + kh) * k + kw;
                let base = row * ncols;
                for oh in 0..geom.out_h {
                    let ih = (oh * geom.stride + kh) as isize - geom.padding as isize;
                    if ih < 0 || ih >= geom.in_h as isize {
                        continue;
                    }
                    let in_row_base =
                        ((n * geom.in_channels + c) * geom.in_h + ih as usize) * geom.in_w;
                    for ow in 0..geom.out_w {
                        let iw = (ow * geom.stride + kw) as isize - geom.padding as isize;
                        if iw < 0 || iw >= geom.in_w as isize {
                            continue;
                        }
                        cols_data[base + oh * geom.out_w + ow] = data[in_row_base + iw as usize];
                    }
                }
            }
        }
    }
    Ok(cols)
}

/// Adjoint of [`im2col`]: scatters a column matrix
/// `[in_channels * k * k, out_h * out_w]` back into the `n`-th sample of
/// `output` (shape `[N, in_channels, in_h, in_w]`), *accumulating* into
/// whatever is already stored there.
///
/// Together the pair satisfies `⟨im2col(x), y⟩ = ⟨x, col2im(y)⟩`, which is
/// what makes it the correct backward operation for convolution inputs.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] if shapes disagree with `geom`.
pub fn col2im(
    cols: &Tensor,
    output: &mut Tensor,
    n: usize,
    geom: &Conv2dGeometry,
) -> Result<(), TensorError> {
    let _span = cap_obs::span!("tensor.col2im");
    if cols.ndim() != 2 || cols.dim(0) != geom.col_rows() || cols.dim(1) != geom.col_cols() {
        return Err(TensorError::InvalidShape {
            shape: cols.shape().to_vec(),
            expected: "im2col matrix matching geometry",
        });
    }
    if output.ndim() != 4
        || n >= output.dim(0)
        || output.dim(1) != geom.in_channels
        || output.dim(2) != geom.in_h
        || output.dim(3) != geom.in_w
    {
        return Err(TensorError::InvalidShape {
            shape: output.shape().to_vec(),
            expected: "4-D output matching convolution geometry",
        });
    }
    let per_sample = geom.in_channels * geom.in_h * geom.in_w;
    let sample = &mut output.data_mut()[n * per_sample..(n + 1) * per_sample];
    col2im_sample(cols, sample, geom);
    Ok(())
}

/// Scatter core of [`col2im`] for a single sample given as a flat
/// `[in_channels * in_h * in_w]` slice, accumulating into it.
///
/// This is the building block the data-parallel convolution backward
/// uses: each task owns one sample's slice of the input-gradient batch,
/// so concurrent scatters never alias.
///
/// # Panics
///
/// Panics in debug builds if `cols` or `sample` disagree with `geom`;
/// use [`col2im`] for the validated entry point.
pub fn col2im_sample(cols: &Tensor, sample: &mut [f32], geom: &Conv2dGeometry) {
    debug_assert_eq!(cols.shape(), &[geom.col_rows(), geom.col_cols()]);
    debug_assert_eq!(sample.len(), geom.in_channels * geom.in_h * geom.in_w);
    let k = geom.kernel;
    let ncols = geom.col_cols();
    let cols_data = cols.data();
    let (in_h, in_w) = (geom.in_h, geom.in_w);
    for c in 0..geom.in_channels {
        for kh in 0..k {
            for kw in 0..k {
                let row = (c * k + kh) * k + kw;
                let base = row * ncols;
                for oh in 0..geom.out_h {
                    let ih = (oh * geom.stride + kh) as isize - geom.padding as isize;
                    if ih < 0 || ih >= in_h as isize {
                        continue;
                    }
                    let out_row_base = (c * in_h + ih as usize) * in_w;
                    for ow in 0..geom.out_w {
                        let iw = (ow * geom.stride + kw) as isize - geom.padding as isize;
                        if iw < 0 || iw >= in_w as isize {
                            continue;
                        }
                        sample[out_row_base + iw as usize] +=
                            cols_data[base + oh * geom.out_w + ow];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_size_formula() {
        assert_eq!(conv_output_size(32, 3, 1, 1).unwrap(), 32);
        assert_eq!(conv_output_size(32, 3, 2, 1).unwrap(), 16);
        assert_eq!(conv_output_size(5, 2, 1, 0).unwrap(), 4);
        assert!(conv_output_size(3, 9, 1, 0).is_err());
        assert!(conv_output_size(3, 1, 0, 0).is_err());
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no padding: cols == flattened input.
        let x = Tensor::from_fn(&[1, 2, 3, 3], |i| i as f32);
        let g = Conv2dGeometry::new(2, 1, 1, 1, 0, 3, 3).unwrap();
        let cols = im2col(&x, 0, &g).unwrap();
        assert_eq!(cols.shape(), &[2, 9]);
        assert_eq!(cols.data(), x.data());
    }

    #[test]
    fn im2col_padding_zeroes_border() {
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let g = Conv2dGeometry::new(1, 1, 3, 1, 1, 2, 2).unwrap();
        let cols = im2col(&x, 0, &g).unwrap();
        // Column 0 is output position (0,0); its (kh=0, kw=0) row reads the
        // padded corner and must be zero.
        assert_eq!(cols.at2(0, 0), 0.0);
        // Centre tap (kh=1, kw=1) of output (0,0) reads input (0,0) = 1.
        assert_eq!(cols.at2(4, 0), 1.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        let g = Conv2dGeometry::new(2, 1, 3, 2, 1, 5, 4).unwrap();
        let x = Tensor::from_fn(&[1, 2, 5, 4], |i| ((i * 37 % 11) as f32) - 5.0);
        let y = Tensor::from_fn(&[g.col_rows(), g.col_cols()], |i| {
            ((i * 17 % 7) as f32) - 3.0
        });
        let cols = im2col(&x, 0, &g).unwrap();
        let lhs: f64 = cols
            .data()
            .iter()
            .zip(y.data())
            .map(|(&a, &b)| f64::from(a) * f64::from(b))
            .sum();
        let mut xgrad = Tensor::zeros(&[1, 2, 5, 4]);
        col2im(&y, &mut xgrad, 0, &g).unwrap();
        let rhs: f64 = x
            .data()
            .iter()
            .zip(xgrad.data())
            .map(|(&a, &b)| f64::from(a) * f64::from(b))
            .sum();
        assert!((lhs - rhs).abs() < 1e-6, "{lhs} vs {rhs}");
    }

    #[test]
    fn shape_validation() {
        let g = Conv2dGeometry::new(1, 1, 3, 1, 1, 4, 4).unwrap();
        let bad = Tensor::zeros(&[1, 2, 4, 4]);
        assert!(im2col(&bad, 0, &g).is_err());
        let cols = Tensor::zeros(&[9, 16]);
        let mut out = Tensor::zeros(&[1, 2, 4, 4]);
        assert!(col2im(&cols, &mut out, 0, &g).is_err());
    }
}
