use std::error::Error;
use std::fmt;

/// Errors produced by tensor construction and kernel routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The data length does not match the product of the shape dimensions.
    ShapeDataMismatch {
        /// Requested shape.
        shape: Vec<usize>,
        /// Number of elements supplied.
        data_len: usize,
    },
    /// A shape with a zero-sized or missing dimension was supplied where a
    /// non-degenerate shape is required.
    InvalidShape {
        /// The offending shape.
        shape: Vec<usize>,
        /// What the operation expected.
        expected: &'static str,
    },
    /// Two tensors passed to a binary kernel have incompatible shapes.
    ShapeMismatch {
        /// Shape of the left operand.
        left: Vec<usize>,
        /// Shape of the right operand.
        right: Vec<usize>,
        /// The operation that failed.
        op: &'static str,
    },
    /// Convolution geometry (kernel, stride, padding) does not fit the input.
    InvalidGeometry {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { shape, data_len } => write!(
                f,
                "shape {:?} requires {} elements but {} were supplied",
                shape,
                shape.iter().product::<usize>(),
                data_len
            ),
            TensorError::InvalidShape { shape, expected } => {
                write!(f, "invalid shape {shape:?}: expected {expected}")
            }
            TensorError::ShapeMismatch { left, right, op } => {
                write!(f, "shape mismatch in {op}: {left:?} vs {right:?}")
            }
            TensorError::InvalidGeometry { reason } => {
                write!(f, "invalid convolution geometry: {reason}")
            }
        }
    }
}

impl Error for TensorError {}
