//! Shape-aware kernel selection for the blocked GEMM.
//!
//! For every problem shape the selector picks a *path* (direct or
//! packed), a microkernel, and cache-blocking parameters, from three
//! sources in priority order:
//!
//! 1. **Small-shape heuristic** — problems whose operands fit in cache
//!    skip packing entirely (the packing passes were a measured
//!    regression at 192³, see `BENCH_kernels.json`).
//! 2. **Autotune cache** — large shapes consult the persistent
//!    per-(shape-class, arch, ISA) cache from [`crate::autotune`].
//! 3. **Static heuristic** — everything else: 8×8 tiles for wide
//!    problems, 16×4 for tall-skinny ones, reference blocking for the
//!    scalar path.
//!
//! The decision depends only on the shape, the operand layout and the
//! pinned [`SimdMode`] — never on the thread count or the clock — so a
//! run's kernel choices are reproducible. Changing blocking or
//! switching between AVX2 tiles never changes output bits (see
//! `crate::simd` module docs); only the ISA pin does.

use crate::autotune;
use crate::simd::SimdMode;

/// `k`-dimension cache block. Fixed forever (never selected or tuned)
/// because it determines the floating-point summation grouping: packed
/// kernels round the accumulator into the output at each `KC` boundary.
pub(crate) const KC: usize = 256;

/// Largest dimension for which the direct (unpacked) path is selected:
/// at `256³` the working set (~768 KiB) still lives in L2/L3 and the
/// packing passes cost more than they save.
const DIRECT_MAX_DIM: usize = 256;

/// Problems below `2·m·n·k = 2²⁸` flops are not worth measuring:
/// heuristic selection is within noise of tuned at these sizes, and
/// keeping the bar high means ordinary test workloads never trigger
/// tuning (or cache writes).
const TUNE_MIN_FLOPS: usize = 1 << 28;

/// A register-tile microkernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Micro {
    /// Portable 4×8 scalar tile (separate multiply and add); the
    /// cross-architecture reference kernel.
    Scalar4x8,
    /// AVX2+FMA 8×8 tile (eight YMM accumulators).
    Avx2_8x8,
    /// AVX2+FMA 16×4 tile for tall-skinny problems.
    Avx2_16x4,
}

impl Micro {
    /// Tile rows.
    pub(crate) fn mr(self) -> usize {
        match self {
            Micro::Scalar4x8 => 4,
            Micro::Avx2_8x8 => 8,
            Micro::Avx2_16x4 => 16,
        }
    }

    /// Tile columns.
    pub(crate) fn nr(self) -> usize {
        match self {
            Micro::Scalar4x8 => 8,
            Micro::Avx2_8x8 => 8,
            Micro::Avx2_16x4 => 4,
        }
    }

    /// Stable name used in telemetry, the autotune cache, and
    /// `BENCH_kernels.json`.
    pub(crate) fn name(self) -> &'static str {
        match self {
            Micro::Scalar4x8 => "scalar_4x8",
            Micro::Avx2_8x8 => "avx2_8x8",
            Micro::Avx2_16x4 => "avx2_16x4",
        }
    }

    /// Parses a stable name back (autotune cache loading).
    pub(crate) fn parse(name: &str) -> Option<Micro> {
        match name {
            "scalar_4x8" => Some(Micro::Scalar4x8),
            "avx2_8x8" => Some(Micro::Avx2_8x8),
            "avx2_16x4" => Some(Micro::Avx2_16x4),
            _ => None,
        }
    }

    /// Whether this kernel is runnable under the given mode (an AVX2
    /// cache entry must not leak onto a scalar-pinned run).
    pub(crate) fn runs_under(self, mode: SimdMode) -> bool {
        match self {
            Micro::Scalar4x8 => true,
            Micro::Avx2_8x8 | Micro::Avx2_16x4 => mode == SimdMode::Avx2,
        }
    }
}

/// One packed-path configuration: microkernel plus cache blocking.
/// (`KC` is global and fixed; see its doc.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Config {
    pub(crate) micro: Micro,
    /// `m`-dimension cache block; also the row granularity of parallel
    /// tasks.
    pub(crate) mc: usize,
    /// `n`-dimension cache block (one packed B panel).
    pub(crate) nc: usize,
}

impl Config {
    pub(crate) fn describe(&self) -> String {
        format!(
            "{} mc={} nc={} kc={KC}",
            self.micro.name(),
            self.mc,
            self.nc
        )
    }
}

/// How the GEMM entry point should run one problem.
pub(crate) enum Decision {
    /// Unpacked small-shape path (serial, operands stay in cache).
    Direct,
    /// Packed blocked path with a fixed configuration.
    Packed(Config),
    /// Packed path, but measure the candidates first and record the
    /// winner in the autotune cache. All candidates produce identical
    /// bits, so the measurement is invisible in the output.
    Tune {
        candidates: Vec<Config>,
        key: String,
    },
}

/// A full selector verdict.
pub(crate) struct Plan {
    pub(crate) decision: Decision,
    /// Where the packed config came from: `direct`, `cached`,
    /// `heuristic`, or `tuning`.
    pub(crate) source: &'static str,
}

/// Power-of-two shape bucket: shapes within the same octave share
/// blocking behaviour, so they share one autotune entry.
fn bucket(d: usize) -> usize {
    d.max(16).next_power_of_two()
}

/// The autotune key for a problem under a mode:
/// `m<bucket>-n<bucket>-k<bucket>|<arch>|<mode>`.
pub(crate) fn cache_key(m: usize, n: usize, k: usize, mode: SimdMode) -> String {
    format!(
        "m{}-n{}-k{}|{}|{}",
        bucket(m),
        bucket(n),
        bucket(k),
        std::env::consts::ARCH,
        mode.name()
    )
}

fn heuristic(m: usize, n: usize, mode: SimdMode) -> Config {
    match mode {
        SimdMode::Scalar => Config {
            micro: Micro::Scalar4x8,
            mc: 64,
            nc: 512,
        },
        SimdMode::Avx2 => {
            // Tall-skinny outputs can't fill 8-wide rows; everything
            // else feeds the 8×8 tile. A larger MC than the scalar
            // path pays off because the A block streams from L2.
            let micro = if n < 48 && m >= 2 * n {
                Micro::Avx2_16x4
            } else {
                Micro::Avx2_8x8
            };
            Config {
                micro,
                mc: 128,
                nc: 512,
            }
        }
    }
}

/// Candidate set measured when a large shape misses the autotune
/// cache. All are AVX2+FMA kernels, so every candidate produces the
/// same bits and measurement order cannot leak into results.
fn tune_candidates() -> Vec<Config> {
    vec![
        Config {
            micro: Micro::Avx2_8x8,
            mc: 128,
            nc: 512,
        },
        Config {
            micro: Micro::Avx2_8x8,
            mc: 64,
            nc: 512,
        },
        Config {
            micro: Micro::Avx2_8x8,
            mc: 128,
            nc: 256,
        },
        Config {
            micro: Micro::Avx2_16x4,
            mc: 128,
            nc: 512,
        },
    ]
}

/// Selects the execution plan for `out[m×n] += A[m×k] · B[k×n]`.
/// `b_contiguous` is whether B's rows are unit-stride (the direct SIMD
/// path streams B rows without packing).
pub(crate) fn plan(m: usize, n: usize, k: usize, b_contiguous: bool, mode: SimdMode) -> Plan {
    // Small shapes: skip packing. The AVX2 direct kernel needs
    // unit-stride B rows; the scalar direct loop handles any layout.
    if m <= DIRECT_MAX_DIM && n <= DIRECT_MAX_DIM && k <= DIRECT_MAX_DIM {
        let direct_ok = match mode {
            SimdMode::Scalar => true,
            SimdMode::Avx2 => b_contiguous,
        };
        if direct_ok {
            return Plan {
                decision: Decision::Direct,
                source: "direct",
            };
        }
    }

    let key = cache_key(m, n, k, mode);
    if let Some(choice) = autotune::lookup(&key) {
        if choice.config.micro.runs_under(mode) {
            return Plan {
                decision: Decision::Packed(choice.config),
                source: "cached",
            };
        }
    }

    let flops = 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k);
    if mode == SimdMode::Avx2 && flops >= TUNE_MIN_FLOPS && autotune::persistence_enabled() {
        return Plan {
            decision: Decision::Tune {
                candidates: tune_candidates(),
                key,
            },
            source: "tuning",
        };
    }

    Plan {
        decision: Decision::Packed(heuristic(m, n, mode)),
        source: "heuristic",
    }
}

/// Publishes the selector decision to the metrics registry (counters
/// only; the per-kernel execution counters live in `gemm`).
pub(crate) fn observe(plan: &Plan) {
    if !cap_obs::enabled() {
        return;
    }
    let which = match plan.decision {
        Decision::Direct => "tensor.gemm.select.direct_total",
        Decision::Packed(_) => match plan.source {
            "cached" => "tensor.gemm.select.cached_total",
            _ => "tensor.gemm.select.heuristic_total",
        },
        Decision::Tune { .. } => "tensor.gemm.select.tune_total",
    };
    cap_obs::counter_add(which, 1);
}

/// Human-readable selector verdict for a (row-major) matmul of the
/// given shape — what `matmul` would run right now, without running
/// it. Exposed for benches and telemetry (`BENCH_kernels.json`'s
/// `selector` fields).
pub fn gemm_plan_summary(m: usize, n: usize, k: usize) -> String {
    let mode = crate::simd::simd_mode();
    let p = plan(m, n, k, true, mode);
    match &p.decision {
        Decision::Direct => format!("direct({})", mode.name()),
        Decision::Packed(cfg) => format!("packed({}, {})", cfg.describe(), p.source),
        Decision::Tune { candidates, .. } => format!(
            "packed(tuning {} candidates, will cache as {})",
            candidates.len(),
            cache_key(m, n, k, mode)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_names_roundtrip() {
        for m in [Micro::Scalar4x8, Micro::Avx2_8x8, Micro::Avx2_16x4] {
            assert_eq!(Micro::parse(m.name()), Some(m));
            assert!(m.mr() * m.nr() <= crate::simd::ACC_LEN);
        }
        assert_eq!(Micro::parse("avx512_32x2"), None);
    }

    #[test]
    fn small_shapes_go_direct_large_go_packed() {
        for mode in [SimdMode::Scalar, SimdMode::Avx2] {
            let p = plan(192, 192, 192, true, mode);
            assert!(matches!(p.decision, Decision::Direct), "{}", mode.name());
            let p = plan(1024, 1024, 1024, true, mode);
            assert!(
                !matches!(p.decision, Decision::Direct),
                "1024 must pack under {}",
                mode.name()
            );
        }
    }

    #[test]
    fn strided_b_under_avx2_stays_packed() {
        let p = plan(64, 64, 64, false, SimdMode::Avx2);
        assert!(matches!(p.decision, Decision::Packed(_)));
        // Scalar direct handles any layout.
        let p = plan(64, 64, 64, false, SimdMode::Scalar);
        assert!(matches!(p.decision, Decision::Direct));
    }

    #[test]
    fn skinny_heuristic_picks_16x4() {
        let cfg = heuristic(4096, 16, SimdMode::Avx2);
        assert_eq!(cfg.micro, Micro::Avx2_16x4);
        let cfg = heuristic(512, 512, SimdMode::Avx2);
        assert_eq!(cfg.micro, Micro::Avx2_8x8);
    }

    #[test]
    fn cache_key_buckets_by_octave() {
        let a = cache_key(1000, 1000, 1000, SimdMode::Avx2);
        let b = cache_key(1024, 600, 513, SimdMode::Avx2);
        assert_eq!(a, b, "same octave, same key");
        assert_ne!(a, cache_key(2048, 1000, 1000, SimdMode::Avx2));
        assert_ne!(a, cache_key(1000, 1000, 1000, SimdMode::Scalar));
    }

    #[test]
    fn scalar_mode_never_tunes() {
        let p = plan(2048, 2048, 2048, true, SimdMode::Scalar);
        assert!(matches!(p.decision, Decision::Packed(_)));
        match p.decision {
            Decision::Packed(cfg) => assert_eq!(cfg.micro, Micro::Scalar4x8),
            _ => unreachable!(),
        }
    }
}
