#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

//! `cap-faults` — a tiny fault-injection harness that lets integration
//! tests prove the workspace's recovery paths actually recover.
//!
//! Production code calls the `maybe_*` hooks at well-defined fault
//! points; with no fault armed every hook is a single relaxed atomic
//! load. Faults are armed either from the `CAP_FAULT` environment
//! variable (read once, on the first hook) or programmatically with
//! [`set_spec`] from tests.
//!
//! # Grammar
//!
//! `CAP_FAULT` is a comma-separated list of directives:
//!
//! ```text
//! crash_after_iter=2          abort() right after pruning iteration 2
//!                             has been journaled (simulates SIGKILL)
//! corrupt_ckpt=bitflip:1337   flip one seed-chosen bit in the next
//!                             checkpoint written (one-shot)
//! nan_grad_at=step:40         poison the gradients of training step 40
//!                             (per fit() call, steps count from 1)
//! panic_worker=3              panic inside the 3rd pooled task executed
//!                             in this process (one-shot)
//! wedge_after_iter=2          park the calling thread forever right
//!                             after pruning iteration 2 is journaled
//!                             (simulates a wedged worker: the process
//!                             stays alive but makes no progress)
//! exit_at_start=17            exit(17) at the first armed-fault check
//!                             (simulates a persistently failing run)
//! ```
//!
//! Directives compose: `CAP_FAULT=corrupt_ckpt=bitflip:7,crash_after_iter=2`.
//!
//! # Example
//!
//! ```
//! cap_faults::set_spec(Some("nan_grad_at=step:3")).unwrap();
//! assert!(!cap_faults::nan_grad_at_step(2));
//! assert!(cap_faults::nan_grad_at_step(3));
//! cap_faults::set_spec(None).unwrap();
//! assert!(!cap_faults::armed());
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// The parsed set of armed faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// `crash_after_iter=N`: abort the process right after pruning
    /// iteration `N` is durably recorded.
    pub crash_after_iter: Option<u64>,
    /// `corrupt_ckpt=bitflip:SEED`: flip one bit (position derived from
    /// the seed) in the next checkpoint written. One-shot.
    pub corrupt_ckpt: Option<u64>,
    /// `nan_grad_at=step:N`: poison the gradients of training step `N`
    /// (1-based, counted per `fit` call across epochs).
    pub nan_grad_at: Option<u64>,
    /// `panic_worker=N`: panic inside the `N`-th pooled task executed
    /// in this process. One-shot.
    pub panic_worker: Option<u64>,
    /// `wedge_after_iter=N`: park the calling thread forever right
    /// after pruning iteration `N` is durably recorded. The process
    /// stays alive (heartbeats stop, exit never comes) — the signature
    /// of a wedged worker a supervisor must detect and SIGKILL.
    pub wedge_after_iter: Option<u64>,
    /// `exit_at_start=CODE`: exit the process with `CODE` at the first
    /// armed-fault check. Unlike the iteration-anchored faults this
    /// fires on *every* attempt, simulating a persistently failing run
    /// for retry-budget/poisoning tests.
    pub exit_at_start: Option<u64>,
}

impl FaultSpec {
    fn is_empty(&self) -> bool {
        *self == FaultSpec::default()
    }
}

/// Parses a `CAP_FAULT` value.
///
/// # Errors
///
/// Returns a description of the first malformed directive.
pub fn parse(spec: &str) -> Result<FaultSpec, String> {
    let mut out = FaultSpec::default();
    for directive in spec.split(',').filter(|d| !d.trim().is_empty()) {
        let (key, value) = directive
            .split_once('=')
            .ok_or_else(|| format!("fault directive {directive:?} is not key=value"))?;
        let parse_u64 = |v: &str, what: &str| {
            v.parse::<u64>()
                .map_err(|e| format!("{what} in {directive:?}: {e}"))
        };
        match key.trim() {
            "crash_after_iter" => out.crash_after_iter = Some(parse_u64(value, "bad iteration")?),
            "corrupt_ckpt" => {
                let seed = value
                    .strip_prefix("bitflip:")
                    .ok_or_else(|| format!("corrupt_ckpt wants bitflip:<seed>, got {value:?}"))?;
                out.corrupt_ckpt = Some(parse_u64(seed, "bad seed")?);
            }
            "nan_grad_at" => {
                let step = value
                    .strip_prefix("step:")
                    .ok_or_else(|| format!("nan_grad_at wants step:<n>, got {value:?}"))?;
                out.nan_grad_at = Some(parse_u64(step, "bad step")?);
            }
            "panic_worker" => out.panic_worker = Some(parse_u64(value, "bad task index")?),
            "wedge_after_iter" => {
                out.wedge_after_iter = Some(parse_u64(value, "bad iteration")?);
            }
            "exit_at_start" => {
                let code = parse_u64(value, "bad exit code")?;
                if code > 255 {
                    return Err(format!("exit_at_start code {code} exceeds 255"));
                }
                out.exit_at_start = Some(code);
            }
            other => return Err(format!("unknown fault directive {other:?}")),
        }
    }
    Ok(out)
}

/// Fast-path gate: true when any fault is armed.
static ARMED: AtomicBool = AtomicBool::new(false);
/// Whether the spec has been resolved (from env or [`set_spec`]).
static INITED: AtomicBool = AtomicBool::new(false);
static SPEC: Mutex<FaultSpec> = Mutex::new(FaultSpec {
    crash_after_iter: None,
    corrupt_ckpt: None,
    nan_grad_at: None,
    panic_worker: None,
    wedge_after_iter: None,
    exit_at_start: None,
});
/// Pooled tasks executed so far (only counted while `panic_worker` is
/// armed).
static TASKS: AtomicU64 = AtomicU64::new(0);

fn ensure_init() {
    if INITED.load(Ordering::Acquire) {
        return;
    }
    let mut spec = SPEC.lock().unwrap_or_else(|p| p.into_inner());
    if INITED.load(Ordering::Acquire) {
        return;
    }
    let parsed = std::env::var("CAP_FAULT")
        .ok()
        .filter(|v| !v.is_empty())
        .and_then(|v| match parse(&v) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("cap-faults: ignoring CAP_FAULT: {e}");
                None
            }
        })
        .unwrap_or_default();
    *spec = parsed;
    ARMED.store(!parsed.is_empty(), Ordering::Release);
    INITED.store(true, Ordering::Release);
}

/// Whether any fault is armed. One relaxed atomic load after the first
/// call — this is the entire cost of a disarmed hook.
#[inline]
pub fn armed() -> bool {
    if !INITED.load(Ordering::Relaxed) {
        ensure_init();
    }
    ARMED.load(Ordering::Relaxed)
}

/// Arms faults programmatically (`None` disarms everything), replacing
/// whatever `CAP_FAULT` resolved to. Meant for tests; also resets the
/// one-shot state.
///
/// # Errors
///
/// Propagates [`parse`] errors without changing the armed state.
pub fn set_spec(spec: Option<&str>) -> Result<(), String> {
    let parsed = match spec {
        Some(s) => parse(s)?,
        None => FaultSpec::default(),
    };
    let mut slot = SPEC.lock().unwrap_or_else(|p| p.into_inner());
    *slot = parsed;
    TASKS.store(0, Ordering::Relaxed);
    ARMED.store(!parsed.is_empty(), Ordering::Release);
    INITED.store(true, Ordering::Release);
    Ok(())
}

/// A copy of the armed spec (resolving `CAP_FAULT` on first use).
pub fn spec() -> FaultSpec {
    ensure_init();
    *SPEC.lock().unwrap_or_else(|p| p.into_inner())
}

/// Crash point: aborts the process (no destructors, no flush — the
/// closest safe stand-in for SIGKILL) when `crash_after_iter=iter` is
/// armed. Call *after* iteration `iter` has been made durable.
pub fn maybe_crash_after_iter(iter: u64) {
    if !armed() {
        return;
    }
    if spec().crash_after_iter == Some(iter) {
        eprintln!("cap-faults: crash_after_iter={iter} fired, aborting");
        std::process::abort();
    }
}

/// One-shot checkpoint corruption: when `corrupt_ckpt=bitflip:<seed>`
/// is armed, returns the seed once and disarms the directive. The
/// caller flips one bit of the serialised checkpoint before writing it.
pub fn take_corrupt_ckpt() -> Option<u64> {
    if !armed() {
        return None;
    }
    let mut slot = SPEC.lock().unwrap_or_else(|p| p.into_inner());
    let seed = slot.corrupt_ckpt.take();
    if seed.is_some() {
        ARMED.store(!slot.is_empty(), Ordering::Release);
    }
    seed
}

/// Picks the bit to flip for a corruption of `len` bytes: a
/// splitmix64-scrambled position so different seeds hit different
/// framing/payload regions.
pub fn bitflip_position(seed: u64, len: usize) -> usize {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z % (len.max(1) as u64 * 8)) as usize
}

/// Wedge point: parks the calling thread forever (the process stays
/// alive, heartbeats stop) when `wedge_after_iter=iter` is armed. Call
/// *after* iteration `iter` has been made durable, next to
/// [`maybe_crash_after_iter`].
pub fn maybe_wedge_after_iter(iter: u64) {
    if !armed() {
        return;
    }
    if spec().wedge_after_iter == Some(iter) {
        eprintln!("cap-faults: wedge_after_iter={iter} fired, parking forever");
        loop {
            std::thread::park();
        }
    }
}

/// Start-of-run exit point: terminates the process with the armed code
/// when `exit_at_start=CODE` is set. Unlike the one-shot faults this
/// fires on every attempt (the directive comes from the environment, so
/// every retried process re-arms it), which is exactly what
/// retry-budget and poisoning tests need.
pub fn maybe_exit_at_start() {
    if !armed() {
        return;
    }
    if let Some(code) = spec().exit_at_start {
        eprintln!("cap-faults: exit_at_start={code} fired");
        std::process::exit(code as i32);
    }
}

/// Whether the gradients of training step `step` (1-based) should be
/// poisoned with NaN.
#[inline]
pub fn nan_grad_at_step(step: u64) -> bool {
    armed() && spec().nan_grad_at == Some(step)
}

/// Task-entry hook for thread-pool workers: panics inside the `N`-th
/// pooled task executed in this process when `panic_worker=N` is armed.
/// One-shot (the counter passes `N` exactly once).
#[inline]
pub fn maybe_panic_task() {
    if !armed() {
        return;
    }
    if let Some(n) = spec().panic_worker {
        let t = TASKS.fetch_add(1, Ordering::Relaxed) + 1;
        if t == n {
            panic!("cap-faults: panic_worker={n} fired");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that touch the process-global fault state.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn parse_grammar() {
        let s = parse("crash_after_iter=2,corrupt_ckpt=bitflip:1337").unwrap();
        assert_eq!(s.crash_after_iter, Some(2));
        assert_eq!(s.corrupt_ckpt, Some(1337));
        let s = parse("nan_grad_at=step:40,panic_worker=1").unwrap();
        assert_eq!(s.nan_grad_at, Some(40));
        assert_eq!(s.panic_worker, Some(1));
        let s = parse("wedge_after_iter=2,exit_at_start=17").unwrap();
        assert_eq!(s.wedge_after_iter, Some(2));
        assert_eq!(s.exit_at_start, Some(17));
        assert_eq!(parse("").unwrap(), FaultSpec::default());
        assert!(parse("bogus").is_err());
        assert!(parse("bogus=1").is_err());
        assert!(parse("corrupt_ckpt=zap:1").is_err());
        assert!(parse("nan_grad_at=step:x").is_err());
        assert!(parse("exit_at_start=300").is_err(), "exit codes are u8");
        assert!(parse("wedge_after_iter=x").is_err());
    }

    #[test]
    fn wedge_does_not_fire_on_other_iterations() {
        let _guard = lock();
        set_spec(Some("wedge_after_iter=5")).unwrap();
        // Would park forever if it fired; returning at all is the pass.
        maybe_wedge_after_iter(4);
        maybe_wedge_after_iter(6);
        set_spec(None).unwrap();
        maybe_wedge_after_iter(5);
    }

    #[test]
    fn exit_at_start_noop_when_disarmed() {
        let _guard = lock();
        set_spec(None).unwrap();
        maybe_exit_at_start();
    }

    #[test]
    fn corrupt_ckpt_is_one_shot() {
        let _guard = lock();
        set_spec(Some("corrupt_ckpt=bitflip:7")).unwrap();
        assert!(armed());
        assert_eq!(take_corrupt_ckpt(), Some(7));
        assert_eq!(take_corrupt_ckpt(), None);
        assert!(!armed(), "consuming the only directive disarms the gate");
        set_spec(None).unwrap();
    }

    #[test]
    fn nan_step_matches_exactly() {
        let _guard = lock();
        set_spec(Some("nan_grad_at=step:5")).unwrap();
        assert!(!nan_grad_at_step(4));
        assert!(nan_grad_at_step(5));
        assert!(!nan_grad_at_step(6));
        set_spec(None).unwrap();
    }

    #[test]
    fn panic_task_fires_once_at_index() {
        let _guard = lock();
        set_spec(Some("panic_worker=3")).unwrap();
        maybe_panic_task();
        maybe_panic_task();
        let result = std::panic::catch_unwind(maybe_panic_task);
        assert!(result.is_err(), "third task must panic");
        maybe_panic_task(); // fourth task is fine again
        set_spec(None).unwrap();
    }

    #[test]
    fn bitflip_position_in_range() {
        for seed in 0..64u64 {
            let pos = bitflip_position(seed, 100);
            assert!(pos < 800);
        }
        assert!(bitflip_position(1, 0) < 8, "len 0 clamps to one byte");
    }
}
