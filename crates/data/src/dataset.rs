use crate::DataError;
use cap_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// A labelled image dataset: images `[N, C, H, W]` plus class labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Creates a dataset, validating shape/label consistency.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Inconsistent`] if `images` is not 4-D, counts
    /// differ, or any label is `>= classes`.
    pub fn new(images: Tensor, labels: Vec<usize>, classes: usize) -> Result<Self, DataError> {
        if images.ndim() != 4 {
            return Err(DataError::Inconsistent {
                reason: format!("images must be [N,C,H,W], got {:?}", images.shape()),
            });
        }
        if images.dim(0) != labels.len() {
            return Err(DataError::Inconsistent {
                reason: format!("{} images vs {} labels", images.dim(0), labels.len()),
            });
        }
        if classes == 0 || labels.iter().any(|&l| l >= classes) {
            return Err(DataError::Inconsistent {
                reason: format!("labels must lie in 0..{classes}"),
            });
        }
        Ok(Dataset {
            images,
            labels,
            classes,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The image tensor `[N, C, H, W]`.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// The labels, aligned with the first image dimension.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Indices of all samples with class `class`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::NoSuchClass`] if `class >= classes`.
    pub fn indices_of_class(&self, class: usize) -> Result<Vec<usize>, DataError> {
        if class >= self.classes {
            return Err(DataError::NoSuchClass {
                class,
                classes: self.classes,
            });
        }
        Ok(self
            .labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == class)
            .map(|(i, _)| i)
            .collect())
    }

    /// Randomly selects up to `m` samples of `class` and returns them as a
    /// batch tensor `[m', C, H, W]` (`m' = min(m, population)`), the
    /// selection the paper's importance scoring uses ("a given number of
    /// images of this class in the training data are randomly selected").
    ///
    /// # Errors
    ///
    /// Returns [`DataError::NoSuchClass`] for an invalid class and
    /// [`DataError::Inconsistent`] if the class has no samples.
    pub fn sample_class_batch(
        &self,
        class: usize,
        m: usize,
        rng: &mut impl Rng,
    ) -> Result<Tensor, DataError> {
        let mut idx = self.indices_of_class(class)?;
        if idx.is_empty() {
            return Err(DataError::Inconsistent {
                reason: format!("class {class} has no samples"),
            });
        }
        idx.shuffle(rng);
        idx.truncate(m.max(1));
        let sample: usize = self.images.shape()[1..].iter().product();
        let mut shape = self.images.shape().to_vec();
        shape[0] = idx.len();
        let mut out = Tensor::zeros(&shape);
        for (bi, &src) in idx.iter().enumerate() {
            out.data_mut()[bi * sample..(bi + 1) * sample]
                .copy_from_slice(&self.images.data()[src * sample..(src + 1) * sample]);
        }
        Ok(out)
    }

    /// Returns a new dataset containing only the samples at `indices`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Inconsistent`] for out-of-range indices.
    pub fn subset(&self, indices: &[usize]) -> Result<Dataset, DataError> {
        let sample: usize = self.images.shape()[1..].iter().product();
        let mut shape = self.images.shape().to_vec();
        shape[0] = indices.len();
        let mut imgs = Tensor::zeros(&shape);
        let mut labels = Vec::with_capacity(indices.len());
        for (bi, &src) in indices.iter().enumerate() {
            if src >= self.len() {
                return Err(DataError::Inconsistent {
                    reason: format!("index {src} out of range for {} samples", self.len()),
                });
            }
            imgs.data_mut()[bi * sample..(bi + 1) * sample]
                .copy_from_slice(&self.images.data()[src * sample..(src + 1) * sample]);
            labels.push(self.labels[src]);
        }
        Dataset::new(imgs, labels, self.classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        let images = Tensor::from_fn(&[6, 1, 2, 2], |i| i as f32);
        Dataset::new(images, vec![0, 1, 0, 1, 2, 2], 3).unwrap()
    }

    #[test]
    fn construction_validates() {
        let images = Tensor::zeros(&[2, 1, 2, 2]);
        assert!(Dataset::new(images.clone(), vec![0], 2).is_err());
        assert!(Dataset::new(images.clone(), vec![0, 5], 2).is_err());
        assert!(Dataset::new(Tensor::zeros(&[2, 4]), vec![0, 1], 2).is_err());
        assert!(Dataset::new(images, vec![0, 1], 2).is_ok());
    }

    #[test]
    fn class_indices() {
        let d = toy();
        assert_eq!(d.indices_of_class(0).unwrap(), vec![0, 2]);
        assert_eq!(d.indices_of_class(2).unwrap(), vec![4, 5]);
        assert!(d.indices_of_class(3).is_err());
    }

    #[test]
    fn class_batch_sampling() {
        let d = toy();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let b = d.sample_class_batch(0, 10, &mut rng).unwrap();
        assert_eq!(b.dim(0), 2); // only 2 available
        let b1 = d.sample_class_batch(1, 1, &mut rng).unwrap();
        assert_eq!(b1.dim(0), 1);
    }

    #[test]
    fn subset_selects() {
        let d = toy();
        let s = d.subset(&[4, 0]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels(), &[2, 0]);
        assert_eq!(s.images().data()[0], 16.0);
        assert!(d.subset(&[9]).is_err());
    }
}
