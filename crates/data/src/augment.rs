//! Light data augmentation used during fine-tuning: horizontal flips and
//! small crops/shifts, the standard CIFAR recipe.

use cap_tensor::Tensor;
use rand::Rng;

/// Returns a copy of the batch where each sample is horizontally flipped
/// with probability `p`.
///
/// Inputs that are not `[N, C, H, W]` are returned unchanged (augmentation
/// is best-effort by design; shape errors surface later in the pipeline).
pub fn random_horizontal_flip(images: &Tensor, p: f64, rng: &mut impl Rng) -> Tensor {
    if images.ndim() != 4 {
        return images.clone();
    }
    let (n, c, h, w) = (images.dim(0), images.dim(1), images.dim(2), images.dim(3));
    let mut out = images.clone();
    for s in 0..n {
        if rng.gen_bool(p.clamp(0.0, 1.0)) {
            for ch in 0..c {
                for row in 0..h {
                    for col in 0..w / 2 {
                        let a = out.offset4(s, ch, row, col);
                        let b = out.offset4(s, ch, row, w - 1 - col);
                        out.data_mut().swap(a, b);
                    }
                }
            }
        }
    }
    out
}

/// Returns a copy of the batch where each sample is shifted by a uniform
/// offset in `[-max_shift, +max_shift]` per axis, zero-filling the border
/// (equivalent to the usual pad-and-crop augmentation).
///
/// Non-4-D inputs are returned unchanged.
pub fn random_crop_shift(images: &Tensor, max_shift: usize, rng: &mut impl Rng) -> Tensor {
    if images.ndim() != 4 || max_shift == 0 {
        return images.clone();
    }
    let (n, c, h, w) = (images.dim(0), images.dim(1), images.dim(2), images.dim(3));
    let ms = max_shift as i64;
    let mut out = Tensor::zeros(images.shape());
    for s in 0..n {
        let dy = rng.gen_range(-ms..=ms);
        let dx = rng.gen_range(-ms..=ms);
        for ch in 0..c {
            for row in 0..h {
                let src_row = row as i64 - dy;
                if src_row < 0 || src_row >= h as i64 {
                    continue;
                }
                for col in 0..w {
                    let src_col = col as i64 - dx;
                    if src_col < 0 || src_col >= w as i64 {
                        continue;
                    }
                    let v = images.at4(s, ch, src_row as usize, src_col as usize);
                    out.set4(s, ch, row, col, v);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn flip_with_p1_reverses_columns() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let x = Tensor::from_fn(&[1, 1, 1, 4], |i| i as f32);
        let y = random_horizontal_flip(&x, 1.0, &mut rng);
        assert_eq!(y.data(), &[3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn flip_with_p0_is_identity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let x = Tensor::from_fn(&[2, 1, 2, 2], |i| i as f32);
        assert_eq!(random_horizontal_flip(&x, 0.0, &mut rng), x);
    }

    #[test]
    fn double_flip_is_identity() {
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(1);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(2);
        let x = Tensor::from_fn(&[1, 2, 3, 3], |i| (i as f32).sin());
        let y = random_horizontal_flip(&x, 1.0, &mut rng1);
        let z = random_horizontal_flip(&y, 1.0, &mut rng2);
        assert_eq!(z, x);
    }

    #[test]
    fn shift_preserves_mass_upper_bound() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let x = Tensor::ones(&[4, 1, 5, 5]);
        let y = random_crop_shift(&x, 2, &mut rng);
        // Shifting can only remove mass (zero fill), never add.
        assert!(cap_tensor::sum_all(&y) <= cap_tensor::sum_all(&x) + 1e-9);
        assert_eq!(y.shape(), x.shape());
    }

    #[test]
    fn zero_shift_is_identity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let x = Tensor::from_fn(&[1, 1, 3, 3], |i| i as f32);
        assert_eq!(random_crop_shift(&x, 0, &mut rng), x);
    }
}
