use std::error::Error;
use std::fmt;

/// Errors produced by dataset construction and sampling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A specification field is out of range.
    InvalidSpec {
        /// Human-readable description.
        reason: String,
    },
    /// Construction data is inconsistent (image/label counts differ, a
    /// label is out of range, ...).
    Inconsistent {
        /// Human-readable description.
        reason: String,
    },
    /// A request referenced a class that does not exist.
    NoSuchClass {
        /// The requested class.
        class: usize,
        /// Number of classes in the dataset.
        classes: usize,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidSpec { reason } => write!(f, "invalid dataset spec: {reason}"),
            DataError::Inconsistent { reason } => write!(f, "inconsistent dataset: {reason}"),
            DataError::NoSuchClass { class, classes } => {
                write!(f, "class {class} out of range for {classes} classes")
            }
        }
    }
}

impl Error for DataError {}
